//! Offline stand-in for the `crossbeam` crate.
//!
//! The runtime's simulated MPI transport only needs unbounded MPSC channels with
//! `recv_timeout`, which `std::sync::mpsc` provides with identical semantics for this
//! usage (every endpoint owns exactly one receiver). The stand-in re-exports the std
//! types under crossbeam's names so the real crate can be dropped back in later with
//! no source changes.

/// Multi-producer channels (the `crossbeam-channel` subset the runtime uses).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, RecvTimeoutError, SendError, Sender};

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(41).unwrap();
        assert_eq!(rx.recv().unwrap(), 41);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn senders_clone_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7).unwrap())
            .join()
            .unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }
}
