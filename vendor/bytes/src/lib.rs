//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors the
//! small API subset the runtime's wire format actually uses: [`Bytes`] (a cheaply
//! cloneable, sliceable byte buffer), [`BytesMut`] (an append-only builder), and the
//! [`Buf`]/[`BufMut`] traits with big-endian integer accessors. Semantics match the
//! real crate for this subset, so swapping the real dependency back in is a
//! manifest-only change.
//!
//! Two properties matter to the runtime's pooled wire path and are guaranteed here
//! as in the real crate:
//! - [`BytesMut::freeze`] does not copy or reallocate — the builder's storage
//!   becomes the [`Bytes`] storage.
//! - [`Bytes::try_into_mut`] recovers the storage for reuse when the buffer is the
//!   sole owner (refcount 1), so a send/receive loop can recycle one allocation
//!   indefinitely.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, contiguous slice of memory.
///
/// Clones share the underlying allocation; [`Bytes::split_to`] and the [`Buf`]
/// accessors advance a cursor without copying.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice (copied; the real crate borrows, but nothing in this
    /// workspace depends on the zero-copy property).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Number of bytes remaining.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits off and returns the first `at` bytes, advancing `self` past them.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len(),
            "split_to out of range ({at} > {})",
            self.len()
        );
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Recovers the underlying storage as a [`BytesMut`] when this handle is the
    /// sole owner of the allocation (no live clones or splits). The recovered
    /// builder is cleared but keeps its capacity — this is the reclaim half of the
    /// allocation-recycling loop. Returns `Err(self)` unchanged when shared.
    pub fn try_into_mut(mut self) -> Result<BytesMut, Bytes> {
        if Arc::get_mut(&mut self.data).is_some() {
            let mut data = self.data;
            Arc::get_mut(&mut data)
                .expect("sole owner checked above")
                .clear();
            Ok(BytesMut { data })
        } else {
            Err(self)
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow ({n} > {})", self.len());
        let s = &self.data[self.start..self.start + n];
        self.start += n;
        s
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt_escaped(self, f)
    }
}

fn fmt_escaped(bytes: &[u8], f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes {
        if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
            write!(f, "{}", b as char)?;
        } else {
            write!(f, "\\x{b:02x}")?;
        }
    }
    write!(f, "\"")
}

/// A growable byte buffer; freeze it into [`Bytes`] once built.
///
/// Storage lives behind a uniquely-held `Arc` so [`BytesMut::freeze`] hands the
/// allocation to the resulting [`Bytes`] without copying.
pub struct BytesMut {
    data: Arc<Vec<u8>>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Arc::new(Vec::with_capacity(cap)),
        }
    }

    fn vec(&mut self) -> &mut Vec<u8> {
        Arc::get_mut(&mut self.data).expect("BytesMut storage is uniquely owned")
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Discards the contents, keeping the capacity.
    pub fn clear(&mut self) {
        self.vec().clear();
    }

    /// Reserved capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`] without copying:
    /// the builder's storage becomes the buffer's storage.
    pub fn freeze(self) -> Bytes {
        let end = self.data.len();
        Bytes {
            data: self.data,
            start: 0,
            end,
        }
    }
}

impl Default for BytesMut {
    fn default() -> Self {
        BytesMut {
            data: Arc::new(Vec::new()),
        }
    }
}

impl Clone for BytesMut {
    fn clone(&self) -> BytesMut {
        // Deep copy: builders never share storage (uniqueness backs `vec()`).
        BytesMut {
            data: Arc::new(self.data.as_ref().clone()),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt_escaped(self, f)
    }
}

/// Read access to a byte cursor, big-endian (network order) like the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consumes the next `n` bytes and returns them as a borrowed slice —
    /// no allocation.
    fn take_slice(&mut self, n: usize) -> &[u8];

    /// Consumes and returns the next `n` bytes as an owned vector.
    fn copy_bytes(&mut self, n: usize) -> Vec<u8> {
        self.take_slice(n).to_vec()
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_slice(1)[0]
    }
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_slice(4).try_into().unwrap())
    }
    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_slice(8).try_into().unwrap())
    }
    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.take_slice(8).try_into().unwrap())
    }
    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take_slice(8).try_into().unwrap())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn take_slice(&mut self, n: usize) -> &[u8] {
        self.take(n)
    }
}

/// Write access to a growing byte buffer, big-endian like the real crate.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec().extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_integers_big_endian() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32(0xdead_beef);
        b.put_u64(u64::MAX - 1);
        b.put_i64(-42);
        b.put_f64(1.5);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), u64::MAX - 1);
        assert_eq!(r.get_i64(), -42);
        assert_eq!(r.get_f64(), 1.5);
        assert!(r.is_empty());
    }

    #[test]
    fn split_to_shares_storage_and_advances() {
        let mut b = Bytes::from(b"hello world".to_vec());
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
        assert_eq!(b.len(), 6);
    }

    #[test]
    #[should_panic(expected = "split_to out of range")]
    fn split_past_end_panics() {
        let mut b = Bytes::from_static(b"ab");
        let _ = b.split_to(3);
    }

    #[test]
    fn debug_escapes_non_printables() {
        let b = Bytes::from(vec![b'a', 0x00, b'"']);
        assert_eq!(format!("{b:?}"), "b\"a\\x00\\x22\"");
    }

    #[test]
    fn freeze_does_not_copy_and_reclaim_recovers_capacity() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u64(9);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 8);
        // Sole owner: reclaim succeeds, capacity survives, contents cleared.
        let recycled = frozen.try_into_mut().expect("sole owner reclaims");
        assert!(recycled.is_empty());
        assert!(recycled.capacity() >= 64);
    }

    #[test]
    fn shared_bytes_refuse_reclaim() {
        let frozen = Bytes::from(vec![1, 2, 3]);
        let alias = frozen.clone();
        let back = frozen
            .try_into_mut()
            .expect_err("shared buffer stays Bytes");
        assert_eq!(&back[..], &alias[..]);
    }
}
