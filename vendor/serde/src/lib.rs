//! Offline stand-in for the `serde` crate.
//!
//! The IR crate derives `Serialize`/`Deserialize` on its program representation so
//! that programs and bytecode can be persisted once a real serializer is available,
//! but nothing in the workspace performs serde-based (de)serialization yet — the wire
//! format is hand-rolled over `bytes`. Since the build environment cannot reach
//! crates.io, this stub keeps the derive attributes compiling: the traits are markers
//! satisfied for every type, and the derive macros expand to nothing. Restoring the
//! real dependency is a manifest-only change as long as derived impls are all the
//! workspace relies on.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that would be serializable with the real serde.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for types that would be deserializable with the real serde.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

#[cfg(test)]
mod tests {
    use crate::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Probe<T> {
        field: T,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    enum Shape {
        Unit,
        Tuple(u32, String),
        Struct { x: i64 },
    }

    fn assert_markers<T: super::Serialize + super::Deserialize>() {}

    #[test]
    fn derives_compile_on_generics_and_enums() {
        assert_markers::<Probe<Vec<Shape>>>();
        let shapes = [
            Shape::Unit,
            Shape::Tuple(1, "a".into()),
            Shape::Struct { x: 3 },
        ];
        let again = [
            Shape::Unit,
            Shape::Tuple(1, "a".into()),
            Shape::Struct { x: 3 },
        ];
        assert_eq!(shapes, again);
    }
}
