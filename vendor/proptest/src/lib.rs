//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset the workspace's property tests use: the [`Strategy`]
//! trait with `prop_map`, range and tuple strategies, a character-class subset of
//! regex string strategies, [`strategy::Just`], `prop_oneof!`, `any::<T>()`,
//! `collection::vec`, and the `proptest!` / `prop_assert!` macros. Sampling is
//! deterministic (seeded per test from the test's name) and there is **no
//! shrinking** — a failing case reports the panic from the raw inputs. Case count
//! defaults to 64 and honours `PROPTEST_CASES` like the real crate.

pub mod test_runner {
    /// Deterministic SplitMix64 generator used for all sampling.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from an explicit seed.
        pub fn deterministic(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of test values. Unlike the real crate there is no shrinking: a
    /// strategy is just a sampling function.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn sample(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Chooses uniformly among type-erased alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one strategy"
            );
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % width) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// String literals act as regex strategies (character-class subset).
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            super::string::sample_pattern(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Generates with [`super::arbitrary::Arbitrary`]; see [`super::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: super::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy for any `T: Arbitrary` (`any::<u64>()`, ...).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated programs/identifiers well-formed.
            (b' ' + rng.below(95) as u8) as char
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `vec(elem, 0..6)`: vectors of `elem` values with length in the range.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.below(self.len.end - self.len.start);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod string {
    use super::test_runner::TestRng;

    /// Samples a string from the supported regex subset: literal characters and
    /// `[...]` character classes (with `a-z` ranges), each optionally followed by
    /// `{n}` or `{m,n}` repetition.
    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"))
                    + i;
                let class = expand_class(&chars[i + 1..close]);
                i = close + 1;
                class
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"))
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((lo, hi)) => (parse_count(lo, pattern), parse_count(hi, pattern)),
                    None => {
                        let n = parse_count(&spec, pattern);
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = min + rng.below(max - min + 1);
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len())]);
            }
        }
        out
    }

    fn parse_count(s: &str, pattern: &str) -> usize {
        s.trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad repetition count {s:?} in pattern {pattern:?}"))
    }

    fn expand_class(items: &[char]) -> Vec<char> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < items.len() {
            if i + 2 < items.len() && items[i + 1] == '-' {
                for c in items[i]..=items[i + 2] {
                    out.push(c);
                }
                i += 3;
            } else {
                out.push(items[i]);
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty character class");
        out
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Chooses uniformly among the listed strategies (all must produce the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }` becomes a
/// `#[test]` that samples its arguments `PROPTEST_CASES` times (default 64) from a
/// deterministic per-test seed.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: u32 = ::std::env::var("PROPTEST_CASES")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(64);
                let mut seed: u64 = 0x5eed_0f_ca5e5;
                for byte in stringify!($name).bytes() {
                    seed = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(byte as u64);
                }
                let mut rng = $crate::test_runner::TestRng::deterministic(seed);
                for _case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..200 {
            let v = Strategy::sample(&(10i64..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn patterns_match_their_own_grammar() {
        let mut rng = TestRng::deterministic(2);
        for _ in 0..100 {
            let s = Strategy::sample(&"[A-Za-z][A-Za-z0-9]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
            let p = Strategy::sample(&"[ -~]{0,40}", &mut rng);
            assert!(p.len() <= 40);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_covers_all_alternatives() {
        let mut rng = TestRng::deterministic(3);
        let s = prop_oneof![Just(0u8), Just(1u8), (5u8..8).prop_map(|v| v)];
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[Strategy::sample(&s, &mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1] && seen[5] && seen[6] && seen[7]);
    }

    proptest! {
        /// The macro itself: tuples, vec, any, and assertions all wired up.
        #[test]
        fn macro_generates_cases(
            pair in (any::<u32>(), 1usize..4),
            items in prop::collection::vec(0i64..100, 0..5),
            flag in any::<bool>(),
        ) {
            let (_raw, small) = pair;
            prop_assert!((1..4).contains(&small));
            prop_assert!(items.len() < 5);
            let chosen = if flag { items.len() } else { small };
            prop_assert!(chosen < 5);
        }
    }
}
