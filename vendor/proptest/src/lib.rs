//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset the workspace's property tests use: the [`Strategy`]
//! trait with `prop_map`, range and tuple strategies, a character-class subset of
//! regex string strategies, [`strategy::Just`], `prop_oneof!`, `any::<T>()`,
//! `collection::vec`, and the `proptest!` / `prop_assert!` macros. Sampling is
//! deterministic (seeded per test from the test's name) and basic **shrinking** is
//! supported: integer strategies shrink toward the range start (or zero), `Vec`
//! strategies drop and shrink elements, and tuples shrink one component at a time —
//! a failing case is greedily minimized before being re-run uncaught, so the test
//! fails with the smallest found reproducer instead of the raw sampled inputs.
//! Mapped (`prop_map`) strategies shrink **through the mapping**: the strategy
//! remembers the pre-image of the value it last produced, shrinks that through the
//! inner strategy, and maps the candidates — the minimizer reports accepted
//! candidates back via [`strategy::Strategy::accept_shrink`] so the stored
//! pre-image tracks the current failing value. Union (`prop_oneof!`) strategies
//! shrink **within the chosen alternative**: sampling records which alternative
//! produced the value, shrinking delegates to it, and `accept_shrink` is forwarded
//! so stateful alternatives (nested `prop_map`) advance their pre-image too. Case
//! count defaults to 64 and honours `PROPTEST_CASES` like the real crate.

pub mod test_runner {
    /// Deterministic SplitMix64 generator used for all sampling.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from an explicit seed.
        pub fn deterministic(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of test values with optional shrinking. Values are `Clone` so a
    /// failing case can be re-run while it is minimized.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Clone;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Proposes strictly "smaller" candidates for a failing value, most
        /// aggressive first. The default is no shrinking (e.g. union strategies,
        /// which do not record which alternative produced a value).
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        /// Informs the strategy that the minimizer accepted candidate `index`
        /// from the most recent `shrink(prev)` call. Stateless strategies ignore
        /// this (the default). Stateful ones — [`Map`], which tracks the
        /// pre-image of the current failing value — use it to advance their
        /// internal state; composite strategies (tuples) route the call to the
        /// component that owns the index.
        fn accept_shrink(&self, _prev: &Self::Value, _index: usize) {}

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized + Strategy,
        {
            Map {
                inner: self,
                f,
                state: std::cell::RefCell::new(MapState {
                    current: None,
                    candidates: Vec::new(),
                }),
            }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V: Clone> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
        fn shrink(&self, value: &V) -> Vec<V> {
            (**self).shrink(value)
        }
        fn accept_shrink(&self, prev: &V, index: usize) {
            (**self).accept_shrink(prev, index)
        }
    }

    /// Always produces a clone of the given value.
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn sample(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    ///
    /// Shrinks **through the mapping**: the mapping itself cannot be inverted, so
    /// the strategy remembers the pre-image of the value it last sampled (or last
    /// had accepted via [`Strategy::accept_shrink`]), asks the inner strategy to
    /// shrink that, and maps the candidates. The candidate pre-images are kept so
    /// an accepted index can be resolved back to its pre-image.
    ///
    /// Limitation: the state is per-strategy, not per-value, so a `Map` used as a
    /// `collection::vec` *element* shrinks only the most recently sampled element
    /// correctly; other elements' candidate lists may come from a stale pre-image.
    /// Every candidate is re-validated against the property before acceptance, so
    /// this degrades shrink quality, never correctness of the final reproducer's
    /// failure.
    pub struct Map<S: Strategy, F> {
        inner: S,
        f: F,
        state: std::cell::RefCell<MapState<S::Value>>,
    }

    pub(crate) struct MapState<V> {
        pub(crate) current: Option<V>,
        pub(crate) candidates: Vec<V>,
    }

    impl<S: Strategy, O: Clone, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            let pre = self.inner.sample(rng);
            let mut st = self.state.borrow_mut();
            st.current = Some(pre.clone());
            st.candidates.clear();
            drop(st);
            (self.f)(pre)
        }
        fn shrink(&self, _value: &O) -> Vec<O> {
            let pre = match self.state.borrow().current.clone() {
                Some(pre) => pre,
                None => return Vec::new(),
            };
            let pre_candidates = self.inner.shrink(&pre);
            let out = pre_candidates.iter().cloned().map(&self.f).collect();
            self.state.borrow_mut().candidates = pre_candidates;
            out
        }
        fn accept_shrink(&self, _prev: &O, index: usize) {
            let mut st = self.state.borrow_mut();
            if let Some(accepted) = st.candidates.get(index).cloned() {
                // Let a stateful inner strategy (e.g. a nested Map) advance too;
                // our candidate list is index-aligned with the inner shrink list.
                if let Some(prev_pre) = st.current.take() {
                    drop(st);
                    self.inner.accept_shrink(&prev_pre, index);
                    st = self.state.borrow_mut();
                }
                st.current = Some(accepted);
                st.candidates.clear();
            }
        }
    }

    /// Chooses uniformly among type-erased alternatives (`prop_oneof!`).
    ///
    /// Shrinks **within the chosen alternative**: sampling records which
    /// alternative produced the value, `shrink` delegates to that alternative, and
    /// [`Strategy::accept_shrink`] is forwarded to it so stateful alternatives
    /// (e.g. a `prop_map`) advance their own pre-image state. The *choice* itself
    /// never shrinks — a candidate from a different alternative would not be a
    /// smaller version of the failing value, just a different one. Same
    /// per-strategy (not per-value) state caveat as [`Map`].
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
        /// Index of the alternative that produced the most recent sample.
        chosen: std::cell::Cell<Option<usize>>,
    }

    impl<V> Union<V> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one strategy"
            );
            Union {
                options,
                chosen: std::cell::Cell::new(None),
            }
        }
    }

    impl<V: Clone> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len());
            self.chosen.set(Some(i));
            self.options[i].sample(rng)
        }
        fn shrink(&self, value: &V) -> Vec<V> {
            match self.chosen.get() {
                Some(i) => self.options[i].shrink(value),
                None => Vec::new(),
            }
        }
        fn accept_shrink(&self, prev: &V, index: usize) {
            if let Some(i) = self.chosen.get() {
                self.options[i].accept_shrink(prev, index);
            }
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % width) as i128;
                    (self.start as i128 + offset) as $t
                }
                /// Shrinks toward the range start: the start itself, the midpoint,
                /// and the predecessor — the usual bisection ladder.
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let (s, v) = (self.start as i128, *value as i128);
                    let mut out = Vec::new();
                    for cand in [s, s + (v - s) / 2, v - 1] {
                        if cand >= s && cand < v && !out.contains(&(cand as $t)) {
                            out.push(cand as $t);
                        }
                    }
                    out
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
        fn shrink(&self, value: &f64) -> Vec<f64> {
            let mut out = Vec::new();
            if *value != self.start {
                out.push(self.start);
                let mid = self.start + (value - self.start) / 2.0;
                if mid != *value && mid != self.start {
                    out.push(mid);
                }
            }
            out
        }
    }

    /// String literals act as regex strategies (character-class subset).
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            super::string::sample_pattern(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
                /// Shrinks one component at a time, the others held fixed.
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$i.shrink(&value.$i) {
                            let mut next = value.clone();
                            next.$i = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
                /// Routes the accepted index to the component that produced it by
                /// recomputing the per-component candidate counts (shrink is
                /// deterministic, so the recomputed lists line up with the ones
                /// the minimizer iterated).
                fn accept_shrink(&self, prev: &Self::Value, index: usize) {
                    let mut idx = index;
                    $(
                        let count = self.$i.shrink(&prev.$i).len();
                        if idx < count {
                            self.$i.accept_shrink(&prev.$i, idx);
                            return;
                        }
                        idx -= count;
                    )+
                    let _ = idx;
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    }

    /// The empty strategy tuple, so `proptest!` accepts argument-less properties
    /// (the macro builds one composite strategy over all declared arguments).
    impl Strategy for () {
        type Value = ();
        fn sample(&self, _rng: &mut TestRng) {}
    }

    /// Generates with [`super::arbitrary::Arbitrary`]; see [`super::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: super::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            value.shrink()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Clone {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;

        /// Proposes smaller candidates for a failing value (see
        /// [`super::strategy::Strategy::shrink`]); defaults to none.
        fn shrink(&self) -> Vec<Self>
        where
            Self: Sized,
        {
            Vec::new()
        }
    }

    /// The strategy for any `T: Arbitrary` (`any::<u64>()`, ...).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
                /// Shrinks toward zero: zero itself, the half, the predecessor (in
                /// magnitude).
                fn shrink(&self) -> Vec<$t> {
                    let v = *self;
                    let mut out = Vec::new();
                    if v != 0 {
                        for cand in [0, v / 2, v - v.signum()] {
                            if cand != v && !out.contains(&cand) {
                                out.push(cand);
                            }
                        }
                    }
                    out
                }
            }
        )*};
    }

    int_arbitrary!(i8, i16, i32, i64, isize);

    macro_rules! uint_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
                /// Shrinks toward zero: zero itself, the half, the predecessor.
                fn shrink(&self) -> Vec<$t> {
                    let v = *self;
                    let mut out = Vec::new();
                    if v != 0 {
                        for cand in [0, v / 2, v - 1] {
                            if cand != v && !out.contains(&cand) {
                                out.push(cand);
                            }
                        }
                    }
                    out
                }
            }
        )*};
    }

    uint_arbitrary!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
        fn shrink(&self) -> Vec<bool> {
            if *self {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated programs/identifiers well-formed.
            (b' ' + rng.below(95) as u8) as char
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `vec(elem, 0..6)`: vectors of `elem` values with length in the range.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.below(self.len.end - self.len.start);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
        /// Shrinks the length first (halving, then single removals), then the
        /// elements in place — never below the strategy's minimum length.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            // Bounds the O(n²) single-removal / per-element candidate lists.
            const MAX_POSITIONS: usize = 24;
            let min = self.len.start;
            let n = value.len();
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            if n > min {
                let keep = (n / 2).max(min);
                if keep < n {
                    out.push(value[..keep].to_vec());
                    out.push(value[n - keep..].to_vec());
                }
                if n <= MAX_POSITIONS {
                    for i in 0..n {
                        let mut next = value.clone();
                        next.remove(i);
                        out.push(next);
                    }
                }
            }
            for i in 0..n.min(MAX_POSITIONS) {
                for cand in self.elem.shrink(&value[i]) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

pub mod string {
    use super::test_runner::TestRng;

    /// Samples a string from the supported regex subset: literal characters and
    /// `[...]` character classes (with `a-z` ranges), each optionally followed by
    /// `{n}` or `{m,n}` repetition.
    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"))
                    + i;
                let class = expand_class(&chars[i + 1..close]);
                i = close + 1;
                class
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"))
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((lo, hi)) => (parse_count(lo, pattern), parse_count(hi, pattern)),
                    None => {
                        let n = parse_count(&spec, pattern);
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = min + rng.below(max - min + 1);
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len())]);
            }
        }
        out
    }

    fn parse_count(s: &str, pattern: &str) -> usize {
        s.trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad repetition count {s:?} in pattern {pattern:?}"))
    }

    fn expand_class(items: &[char]) -> Vec<char> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < items.len() {
            if i + 2 < items.len() && items[i + 1] == '-' {
                for c in items[i]..=items[i + 2] {
                    out.push(c);
                }
                i += 3;
            } else {
                out.push(items[i]);
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty character class");
        out
    }
}

pub mod shrink {
    //! The failing-case minimizer behind the `proptest!` macro.

    use super::strategy::Strategy;
    use std::cell::Cell;
    use std::panic::{self, AssertUnwindSafe};
    use std::sync::Once;

    thread_local! {
        /// Set while a shrink probe runs so its (expected) panics do not spam the
        /// default hook's backtrace output.
        static SILENT: Cell<bool> = const { Cell::new(false) };
    }

    static HOOK: Once = Once::new();

    fn install_hook() {
        HOOK.call_once(|| {
            let previous = panic::take_hook();
            panic::set_hook(Box::new(move |info| {
                if !SILENT.with(|s| s.get()) {
                    previous(info);
                }
            }));
        });
    }

    /// Runs `f` and reports whether it panicked, without printing the panic (the
    /// minimizer re-runs failing bodies many times; only the final minimized run is
    /// allowed to unwind loudly). Thread-local, so concurrently failing tests on
    /// other threads still report normally.
    pub fn fails(f: impl FnOnce()) -> bool {
        install_hook();
        let was = SILENT.with(|s| s.replace(true));
        let failed = panic::catch_unwind(AssertUnwindSafe(f)).is_err();
        SILENT.with(|s| s.set(was));
        failed
    }

    /// The case loop behind the `proptest!` macro: sample `cases` values, probe each
    /// one, and on the first failure minimize it and re-run it uncaught so the test
    /// fails with the smallest found reproducer's own panic message.
    pub fn run_cases<S: Strategy>(
        strategy: &S,
        rng: &mut super::test_runner::TestRng,
        cases: u32,
        name: &str,
        run: impl Fn(S::Value),
    ) {
        for case in 0..cases {
            let values = strategy.sample(rng);
            if fails(|| run(values.clone())) {
                let check = |v: &S::Value| fails(|| run(v.clone()));
                let (minimized, steps) = minimize(strategy, values, &check);
                eprintln!(
                    "proptest: {name} failed on case {case}; re-running the case \
                     minimized by {steps} shrink step(s)"
                );
                run(minimized);
                unreachable!(
                    "proptest: the minimized case for {name} no longer fails \
                     (flaky property)"
                );
            }
        }
    }

    /// Greedy minimization: repeatedly replace the failing value with its first
    /// still-failing shrink candidate until no candidate fails (or the re-run budget
    /// is exhausted). Returns the minimized value and the number of accepted shrink
    /// steps.
    pub fn minimize<S: Strategy>(
        strategy: &S,
        mut current: S::Value,
        check: &impl Fn(&S::Value) -> bool,
    ) -> (S::Value, usize) {
        let mut steps = 0usize;
        let mut budget = 512usize;
        'outer: while budget > 0 {
            for (idx, candidate) in strategy.shrink(&current).into_iter().enumerate() {
                if budget == 0 {
                    break 'outer;
                }
                budget -= 1;
                if check(&candidate) {
                    // Stateful strategies (prop_map) advance their pre-image to
                    // the accepted candidate's; must happen before `current`
                    // changes so `prev` still names the value that was shrunk.
                    strategy.accept_shrink(&current, idx);
                    current = candidate;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }
        (current, steps)
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Chooses uniformly among the listed strategies (all must produce the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }` becomes a
/// `#[test]` that samples its arguments `PROPTEST_CASES` times (default 64) from a
/// deterministic per-test seed. A failing case is greedily **minimized** through the
/// strategies' [`crate::strategy::Strategy::shrink`] candidates, then re-run uncaught
/// so the test fails with the smallest found reproducer's own panic message.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: u32 = ::std::env::var("PROPTEST_CASES")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(64);
                let mut seed: u64 = 0x5eed_0f_ca5e5;
                for byte in stringify!($name).bytes() {
                    seed = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(byte as u64);
                }
                let mut rng = $crate::test_runner::TestRng::deterministic(seed);
                // One composite strategy over all arguments (component samples draw
                // in declaration order, so the RNG stream matches per-arg sampling).
                let strategy = ($($strategy,)*);
                $crate::shrink::run_cases(
                    &strategy,
                    &mut rng,
                    cases,
                    stringify!($name),
                    |values| {
                        let ($($arg,)*) = values;
                        $body
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..200 {
            let v = Strategy::sample(&(10i64..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn patterns_match_their_own_grammar() {
        let mut rng = TestRng::deterministic(2);
        for _ in 0..100 {
            let s = Strategy::sample(&"[A-Za-z][A-Za-z0-9]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
            let p = Strategy::sample(&"[ -~]{0,40}", &mut rng);
            assert!(p.len() <= 40);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_covers_all_alternatives() {
        let mut rng = TestRng::deterministic(3);
        let s = prop_oneof![Just(0u8), Just(1u8), (5u8..8).prop_map(|v| v)];
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[Strategy::sample(&s, &mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1] && seen[5] && seen[6] && seen[7]);
    }

    proptest! {
        /// The macro itself: tuples, vec, any, and assertions all wired up.
        #[test]
        fn macro_generates_cases(
            pair in (any::<u32>(), 1usize..4),
            items in prop::collection::vec(0i64..100, 0..5),
            flag in any::<bool>(),
        ) {
            let (_raw, small) = pair;
            prop_assert!((1..4).contains(&small));
            prop_assert!(items.len() < 5);
            let chosen = if flag { items.len() } else { small };
            prop_assert!(chosen < 5);
        }
    }

    #[test]
    fn integer_ranges_minimize_to_the_smallest_failing_value() {
        // Property "v < 70" fails for v in [70, 1000): the minimizer must walk all
        // the way down to the boundary case 70.
        let strategy = 0i64..1000;
        let check = |v: &i64| *v >= 70;
        let (min, steps) = crate::shrink::minimize(&strategy, 912, &check);
        assert_eq!(min, 70, "greedy shrink reaches the boundary");
        assert!(steps > 0);
    }

    #[test]
    fn arbitrary_integers_minimize_toward_zero() {
        let strategy = any::<i64>();
        let check = |v: &i64| *v != 0; // everything nonzero fails
        let (min, _) = crate::shrink::minimize(&strategy, -987_654, &check);
        assert_eq!(min, -1, "shrinks in magnitude toward zero");
        let (min_pos, _) = crate::shrink::minimize(&strategy, 40_000, &check);
        assert_eq!(min_pos, 1);
    }

    #[test]
    fn vectors_minimize_length_and_elements() {
        // Property "no element is >= 50" — a single offending element suffices to
        // fail, so the minimized case is the one-element vector [50].
        let strategy = prop::collection::vec(0i64..1000, 0..12);
        let check = |v: &Vec<i64>| v.iter().any(|&x| x >= 50);
        let failing = vec![3, 912, 77, 4, 500, 61];
        let (min, _) = crate::shrink::minimize(&strategy, failing, &check);
        assert_eq!(min, vec![50], "one element, shrunk to the boundary");
    }

    #[test]
    fn vector_shrinking_respects_the_minimum_length() {
        let strategy = prop::collection::vec(0i64..10, 2..6);
        let check = |_: &Vec<i64>| true; // everything "fails"
        let (min, _) = crate::shrink::minimize(&strategy, vec![9, 9, 9, 9, 9], &check);
        assert_eq!(min, vec![0, 0], "length floor 2, elements at range start");
    }

    #[test]
    fn tuples_shrink_componentwise() {
        let strategy = (0i64..100, 0i64..100);
        // Fails whenever the first component is at least 10; the second is noise.
        let check = |v: &(i64, i64)| v.0 >= 10;
        let (min, _) = crate::shrink::minimize(&strategy, (73, 42), &check);
        assert_eq!(min, (10, 0), "both components minimized independently");
    }

    /// Samples until `check` flags a failing value, mirroring how `run_cases`
    /// hands `minimize` a value the strategy just produced (so `prop_map` state
    /// holds that value's pre-image).
    fn sample_failing<S: Strategy>(
        strategy: &S,
        rng: &mut TestRng,
        check: impl Fn(&S::Value) -> bool,
    ) -> S::Value {
        loop {
            let v = Strategy::sample(strategy, rng);
            if check(&v) {
                return v;
            }
        }
    }

    #[test]
    fn mapped_strategies_shrink_through_the_mapping() {
        // Doubling maps [0, 1000) onto the even numbers; "fails at >= 140" must
        // minimize to the boundary 140 — reachable only by shrinking the
        // pre-image (70), since no integer shrink of the raw output stays even.
        let strategy = (0i64..1000).prop_map(|v| v * 2);
        let check = |v: &i64| *v >= 140;
        let mut rng = TestRng::deterministic(7);
        let failing = sample_failing(&strategy, &mut rng, check);
        let (min, steps) = crate::shrink::minimize(&strategy, failing, &check);
        assert_eq!(min, 140, "shrunk through the mapping to the boundary");
        assert!(steps > 0);
    }

    #[test]
    fn nested_maps_shrink_through_both_mappings() {
        let strategy = (0i64..100).prop_map(|v| v + 1).prop_map(|v| v * 2);
        // Outputs are 2*(v+1) for v in [0, 100); fails at >= 12, so the smallest
        // failing output is 12 (pre-image chain v = 5).
        let check = |v: &i64| *v >= 12;
        let mut rng = TestRng::deterministic(8);
        let failing = sample_failing(&strategy, &mut rng, check);
        let (min, _) = crate::shrink::minimize(&strategy, failing, &check);
        assert_eq!(min, 12, "both pre-images advanced in lock step");
    }

    #[test]
    fn tuples_route_accepted_shrinks_to_the_mapped_component() {
        let strategy = ((0i64..100).prop_map(|v| v * 2), 0i64..100);
        // Fails whenever the mapped component is at least 10; smallest even
        // failing value is 10, and the second component is noise shrunk to 0.
        let check = |v: &(i64, i64)| v.0 >= 10;
        let mut rng = TestRng::deterministic(9);
        let failing = sample_failing(&strategy, &mut rng, check);
        let (min, _) = crate::shrink::minimize(&strategy, failing, &check);
        assert_eq!(min, (10, 0));
    }

    /// End-to-end through the macro's driver: the reported reproducer for a
    /// mapped strategy is minimized, not raw — and stays in the map's image.
    #[test]
    fn run_cases_minimizes_mapped_strategies() {
        let strategy = ((0i64..1000).prop_map(|v| v * 3),);
        let mut rng = TestRng::deterministic(43);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::shrink::run_cases(&strategy, &mut rng, 64, "demo_map", |(v,)| {
                assert!(v < 30, "boom at {v}");
            });
        }));
        let payload = result.expect_err("the property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("assert! message");
        assert!(
            msg.contains("boom at 30"),
            "expected the minimized multiple-of-3 boundary case 30, got: {msg}"
        );
    }

    #[test]
    fn oneof_minimizes_within_the_chosen_alternative() {
        // Only the second alternative can produce a failing value (>= 150), so the
        // minimizer must shrink within that alternative's range down to the
        // boundary — and never jump to the other alternative's (passing) values.
        let strategy = prop_oneof![0i64..10, 100i64..1000];
        let check = |v: &i64| *v >= 150;
        let mut rng = TestRng::deterministic(11);
        let failing = sample_failing(&strategy, &mut rng, check);
        let (min, steps) = crate::shrink::minimize(&strategy, failing, &check);
        assert_eq!(min, 150, "shrunk within the chosen alternative");
        assert!(steps > 0);
    }

    #[test]
    fn oneof_forwards_accepted_shrinks_to_mapped_alternatives() {
        // The failing values (>= 140) are even, so they come from the mapped
        // alternative; reaching the boundary 140 requires the Union to forward
        // accept_shrink so the Map's pre-image walks down to 70.
        let strategy = prop_oneof![Just(1i64), (0i64..1000).prop_map(|v| v * 2)];
        let check = |v: &i64| *v >= 140;
        let mut rng = TestRng::deterministic(12);
        let failing = sample_failing(&strategy, &mut rng, check);
        let (min, _) = crate::shrink::minimize(&strategy, failing, &check);
        assert_eq!(min, 140, "shrunk through the alternative's mapping");
    }

    /// End-to-end through the macro's driver: a failing `prop_oneof!` case is
    /// reported minimized to its alternative's boundary.
    #[test]
    fn run_cases_minimizes_oneof_strategies() {
        let strategy = (prop_oneof![0i64..50, 500i64..1000],);
        let mut rng = TestRng::deterministic(44);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::shrink::run_cases(&strategy, &mut rng, 64, "demo_oneof", |(v,)| {
                assert!(v < 500, "boom at {v}");
            });
        }));
        let payload = result.expect_err("the property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("assert! message");
        assert!(
            msg.contains("boom at 500"),
            "expected the minimized second-alternative boundary 500, got: {msg}"
        );
    }

    #[test]
    fn shrink_probes_do_not_unwind_into_the_caller() {
        assert!(crate::shrink::fails(|| panic!("expected")));
        assert!(!crate::shrink::fails(|| {}));
    }

    /// End-to-end through the macro's driver: a failing property panics with the
    /// *minimized* case's own message, not the raw sampled one. (The one panic this
    /// test prints is the deliberate final re-run.)
    #[test]
    fn run_cases_panics_with_the_minimized_case() {
        let strategy = (0i64..1000,);
        let mut rng = TestRng::deterministic(42);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::shrink::run_cases(&strategy, &mut rng, 64, "demo", |(v,)| {
                assert!(v < 70, "boom at {v}");
            });
        }));
        let payload = result.expect_err("the property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("assert! message");
        assert!(
            msg.contains("boom at 70"),
            "expected the minimized boundary case 70, got: {msg}"
        );
    }
}
