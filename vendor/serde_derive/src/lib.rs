//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` stub implements its marker traits for all types via blanket
//! impls, so the derive macros here only need to make `#[derive(Serialize,
//! Deserialize)]` attributes parse — they expand to nothing. When the real serde is
//! restored, these derives are replaced by the real code generators with no source
//! changes in the workspace.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]`; the blanket impl in the `serde` stub provides the trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]`; the blanket impl in the `serde` stub provides the trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
