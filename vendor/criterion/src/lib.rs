//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`) with a plain wall-clock measurement
//! loop: a short warm-up, then timed batches until a time budget is spent, reporting
//! the mean iteration time. No statistics, plots, or saved baselines — but bench
//! binaries compile and produce comparable numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque to the optimizer; forwards to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level harness handle passed to every benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks `f` outside of any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_one(&id.into(), 10, f);
    }
}

/// A named benchmark group; mirrors criterion's builder-style configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `self.name/id`.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_one(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
    }

    /// Benchmarks `f` with a borrowed input under `self.name/id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(&format!("{}/{id}", self.name), self.sample_size, |b| {
            f(b, input)
        });
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Drives the measured closure.
pub struct Bencher {
    samples: usize,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`: warms up briefly, then runs timed batches and records the mean.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up and per-iteration cost estimate.
        let warmup = Instant::now();
        black_box(f());
        let estimate = warmup.elapsed().max(Duration::from_nanos(1));
        // Pick a batch size so one sample costs roughly 10 ms, then take the
        // configured number of samples within a global budget.
        let batch = ((10_000_000 / estimate.as_nanos().max(1)) as u64).clamp(1, 100_000);
        let budget = Duration::from_millis(300);
        let started = Instant::now();
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += t.elapsed();
            iters += batch;
            if started.elapsed() > budget {
                break;
            }
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
        self.iters = iters;
    }
}

fn run_one(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    let (value, unit) = if b.mean_ns >= 1e9 {
        (b.mean_ns / 1e9, "s")
    } else if b.mean_ns >= 1e6 {
        (b.mean_ns / 1e6, "ms")
    } else if b.mean_ns >= 1e3 {
        (b.mean_ns / 1e3, "µs")
    } else {
        (b.mean_ns, "ns")
    };
    println!(
        "{name:<50} time: {value:>10.3} {unit}   ({} iters)",
        b.iters
    );
}

/// Declares a function that runs the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards flags like `--bench`; this harness has no options.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_and_macros_drive_benchmarks() {
        benches();
    }

    #[test]
    fn benchmark_id_formats_as_path() {
        assert_eq!(BenchmarkId::new("crg", "bank").to_string(), "crg/bank");
    }
}
