//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API: `lock()` returns
//! the guard directly, recovering the data from a poisoned std lock (parking_lot has
//! no poisoning at all, so this matches its observable behaviour).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_recovers_after_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
