//! Partition-count sweep: walk the node count from 2 to 256, comparing the multilevel
//! partitioner against the naive baselines the paper actually used, and *execute* the
//! resulting distribution at every scale on the simulated cluster.
//!
//! Sweeping to hundreds of virtual nodes is practical because the cooperative cluster
//! scheduler multiplexes every virtual node onto one OS thread (the pre-pool runtime
//! spawned one 32 MB-stack thread per node, capping sweeps at a handful of nodes).
//!
//! Run with: `cargo run --release --example partition_sweep`

use autodist::{Distributor, DistributorConfig, PipelineError};
use autodist_partition::{partition, Method, PartitionConfig};
use autodist_runtime::cluster::ClusterConfig;
use autodist_runtime::NetworkConfig;

fn main() -> Result<(), PipelineError> {
    // Part 1: partition quality across methods (the original ablation) on every
    // Table 1 workload.
    println!(
        "{:<12} {:>6} {:>18} {:>18} {:>18}",
        "benchmark", "k", "multilevel cut", "round-robin cut", "random cut"
    );
    for w in autodist_workloads::table1_workloads(1) {
        let distributor = Distributor::new(DistributorConfig::default());
        let analysis = distributor.analyze(&w.program);
        let graph = distributor.odg_graph(&analysis.odg);
        for k in [2usize, 4, 16, 64, 256] {
            let ml = partition(&graph, &PartitionConfig::kway(k));
            let rr = partition(&graph, &PartitionConfig::naive(k));
            let rnd = partition(
                &graph,
                &PartitionConfig {
                    nparts: k,
                    method: Method::Random,
                    ..Default::default()
                },
            );
            println!(
                "{:<12} {:>6} {:>18} {:>18} {:>18}",
                w.name, k, ml.edgecut, rr.edgecut, rnd.edgecut
            );
        }
    }

    // Part 2: end-to-end distributed execution of the Bank example at every scale.
    println!();
    println!(
        "{:<8} {:>14} {:>12} {:>12} {:>12} {:>10}",
        "nodes", "virtual us", "wall ms", "messages", "bytes", "correct"
    );
    let baseline = {
        let w = autodist_workloads::bank(60);
        Distributor::new(DistributorConfig::default()).try_run_baseline(&w.program)?
    };
    for k in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        let w = autodist_workloads::bank(60);
        let distributor = Distributor::new(DistributorConfig::multilevel(k));
        let plan = distributor.try_distribute(&w.program)?;
        let cluster = ClusterConfig {
            network: NetworkConfig::uniform(k),
            ..Default::default()
        };
        let report = plan.try_execute(&cluster)?;
        let correct = report.final_statics.get("Main::checksum")
            == baseline.final_statics.get("Main::checksum");
        println!(
            "{:<8} {:>14.0} {:>12.2} {:>12} {:>12} {:>10}",
            k,
            report.virtual_time_us,
            report.wall_time_ms,
            report.total_messages(),
            report.total_bytes(),
            correct
        );
    }
    Ok(())
}
