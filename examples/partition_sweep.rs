//! Ablation: compare the multilevel partitioner against the naive baselines the paper
//! actually used, across partition counts, on every Table 1 workload.
//!
//! Run with: `cargo run --example partition_sweep`

use autodist::{Distributor, DistributorConfig};
use autodist_partition::{partition, Method, PartitionConfig};

fn main() {
    println!(
        "{:<12} {:>6} {:>18} {:>18} {:>18}",
        "benchmark", "k", "multilevel cut", "round-robin cut", "random cut"
    );
    for w in autodist_workloads::table1_workloads(1) {
        let distributor = Distributor::new(DistributorConfig::default());
        let analysis = distributor.analyze(&w.program);
        let graph = distributor.odg_graph(&analysis.odg);
        for k in [2usize, 4] {
            let ml = partition(&graph, &PartitionConfig::kway(k));
            let rr = partition(&graph, &PartitionConfig::naive(k));
            let rnd = partition(
                &graph,
                &PartitionConfig {
                    nparts: k,
                    method: Method::Random,
                    ..Default::default()
                },
            );
            println!(
                "{:<12} {:>6} {:>18} {:>18} {:>18}",
                w.name, k, ml.edgecut, rr.edgecut, rnd.edgecut
            );
        }
    }
}
