//! Serving mode: the distributed cluster as a throughput-oriented server.
//!
//! Distributes three Table 1 programs once, then drives them as a closed-loop
//! request stream: up to `CONCURRENCY` root computations are in flight at a time,
//! each with its own request-scoped virtual clocks and message channels, all
//! interleaving on one shared ready queue. The same load runs under the inline
//! scheduler (one thread, pure interleaving) and a worker pool (threads overlap
//! request ingress with interpretation — and, on multi-core machines, the
//! interpretation itself). Every request's checksum and virtual clock must match
//! the program's solo run exactly.
//!
//! Run with: `cargo run --release --example serve_demo`

use autodist::{Distributor, DistributorConfig, PipelineError, ServeOptions};
use autodist_runtime::cluster::{ClusterConfig, Schedule};
use autodist_runtime::serve::run_serving;
use std::time::Duration;

const REQUESTS: usize = 48;
const CONCURRENCY: usize = 16;

fn main() -> Result<(), PipelineError> {
    // 1. Prepare the apps once: distribute each program and intern its per-node
    //    layouts. Admission later only instantiates interpreter state.
    let distributor = Distributor::new(DistributorConfig::default());
    let cluster = ClusterConfig::paper_testbed();
    let mut apps = Vec::new();
    let mut solo_virtual = Vec::new();
    for w in [
        autodist_workloads::bank(40),
        autodist_workloads::method_bench(200),
        autodist_workloads::crypt(400),
    ] {
        let plan = distributor.try_distribute(&w.program)?;
        let solo = plan.try_execute(&cluster)?;
        println!(
            "prepared {:<8} ({} nodes, solo virtual time {:.0} us)",
            w.name,
            plan.programs().len(),
            solo.virtual_time_us
        );
        solo_virtual.push(solo.virtual_time_us);
        apps.push(plan.prepare_server(&cluster));
    }

    // 2. The closed-loop request stream: round-robin over the mix, each admission
    //    paying the testbed's one-way wire latency as real (wall-clock) ingress.
    let sequence: Vec<usize> = (0..REQUESTS).map(|i| i % apps.len()).collect();
    println!("\nserving {REQUESTS} requests at concurrency {CONCURRENCY}:\n");
    for (label, schedule) in [
        ("inline", Schedule::Inline),
        ("pool-4", Schedule::Pool { threads: 4 }),
    ] {
        let report = run_serving(
            &apps,
            &sequence,
            &ServeOptions {
                concurrency: CONCURRENCY,
                schedule,
                ingress_wait: Duration::from_micros(cluster.network.latency_us as u64),
                ..ServeOptions::default()
            },
        );
        assert!(report.is_ok(), "every request completes");
        // 3. Isolation check: concurrency must not perturb any request's virtual
        //    execution — byte-identical clocks per request, whatever the schedule.
        for req in &report.requests {
            assert!(
                (req.report.virtual_time_us - solo_virtual[req.app]).abs() < 1e-9,
                "request {} drifted from its solo virtual clock",
                req.index
            );
        }
        println!(
            "{label:<8} {:>8.1} req/s   p50 {:>8.1} us   p99 {:>8.1} us   wall {:>7.1} ms",
            report.requests_per_sec(),
            report.latency_percentile_us(0.50),
            report.latency_percentile_us(0.99),
            report.wall_time_ms
        );
    }
    println!("\nall requests byte-identical to their solo runs: yes");
    Ok(())
}
