//! A tour of the retargetable back-end (Section 4.1): lower a method to quads, build
//! the AST forest and emit both x86 and StrongARM code through the BURS rule tables.
//!
//! Run with: `cargo run --example codegen_tour`

use autodist::PipelineError;
use autodist_codegen::{ast, generate_method, Target};
use autodist_ir::lower::lower_program;
use autodist_ir::printer::print_quads;

fn main() -> Result<(), PipelineError> {
    let workload = autodist_workloads::crypt(64);
    let program = &workload.program;
    let quad_methods = lower_program(program)?;

    for qm in &quad_methods {
        let m = program.method(qm.method);
        let class = &program.class(m.class).name;
        if m.name == "<init>" {
            continue;
        }
        println!(
            "==================== {class}.{} ====================",
            m.name
        );
        println!("--- quads (Figure 5 style) ---");
        println!("{}", print_quads(program, qm));
        println!(
            "--- AST roots: {} trees ---",
            ast::build_method_forest(program, qm)
                .iter()
                .map(|(_, t)| t.len())
                .sum::<usize>()
        );
        println!("--- x86 ---");
        for line in generate_method(program, qm, Target::X86) {
            println!("    {line}");
        }
        println!("--- StrongARM ---");
        for line in generate_method(program, qm, Target::StrongArm) {
            println!("    {line}");
        }
        println!();
    }
    Ok(())
}
