//! Run a workload under each of the six profiler metrics (Section 6) and print the
//! collected data plus the overhead of each metric relative to the disabled baseline.
//!
//! Run with: `cargo run --example profile_run`

use autodist_profiler::overhead::measure_overheads;
use autodist_profiler::{Metric, Profiler};
use autodist_runtime::cluster::run_centralized_profiled;

fn main() {
    // Large enough that each run takes a few milliseconds: overhead percentages are
    // meaningless when the whole run is sub-millisecond noise.
    let workload = autodist_workloads::montecarlo(40000);

    for metric in Metric::all() {
        let (profiler, handle) = Profiler::new(Some(metric));
        let report = run_centralized_profiled(
            &workload.program,
            1.0,
            Some(Box::new(profiler)),
            Profiler::sample_interval(Some(metric)),
        );
        assert!(report.is_ok(), "{:?}", report.error);
        println!("==== {} ====", metric.name());
        let text = handle.lock().render(&workload.program);
        if text.is_empty() {
            println!("(no per-item data for this metric)");
        } else {
            print!("{text}");
        }
        println!();
    }

    println!("==== overhead comparison (Table 3 methodology) ====");
    let workloads = vec![
        (workload.name.clone(), workload.program.clone()),
        (
            "heapsort".to_string(),
            autodist_workloads::heapsort(4000).program,
        ),
    ];
    // measure_overheads repeats at least 5 rounds, interleaved, and reports medians.
    let table = measure_overheads(&workloads, &Metric::all(), 5);
    print!("{}", table.render());
    let base = table.baseline().total_ms;
    for row in &table.rows {
        assert!(
            row.overhead_pct(base) > -5.0,
            "overhead of {:?} is implausibly negative",
            row.metric
        );
    }
}
