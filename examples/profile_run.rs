//! Run a workload under each of the six profiler metrics (Section 6) and print the
//! collected data plus the overhead of each metric relative to the disabled baseline.
//!
//! Run with: `cargo run --example profile_run`

use autodist_profiler::overhead::measure_overheads;
use autodist_profiler::{Metric, Profiler};
use autodist_runtime::cluster::run_centralized_profiled;

fn main() {
    let workload = autodist_workloads::montecarlo(3000);

    for metric in Metric::all() {
        let (profiler, handle) = Profiler::new(Some(metric));
        let report = run_centralized_profiled(
            &workload.program,
            1.0,
            Some(Box::new(profiler)),
            Profiler::sample_interval(Some(metric)),
        );
        assert!(report.is_ok(), "{:?}", report.error);
        println!("==== {} ====", metric.name());
        let text = handle.lock().render(&workload.program);
        if text.is_empty() {
            println!("(no per-item data for this metric)");
        } else {
            print!("{text}");
        }
        println!();
    }

    println!("==== overhead comparison (Table 3 methodology) ====");
    let workloads = vec![(workload.name.clone(), workload.program.clone())];
    let table = measure_overheads(&workloads, &Metric::all(), 2);
    print!("{}", table.render());
}
