//! Run a workload under each of the six profiler metrics (Section 6) and print the
//! collected data plus the overhead of each metric relative to the disabled baseline,
//! then profile a **cooperative distributed run** and print each node's hot methods —
//! the call stack travels with every parked continuation, so sampling attribution is
//! exact even while a node interleaves its root computation with served callbacks.
//!
//! Run with: `cargo run --example profile_run`

use autodist::{Distributor, DistributorConfig, NodeProfiler};
use autodist_profiler::overhead::measure_overheads;
use autodist_profiler::{Metric, Profiler};
use autodist_runtime::cluster::{run_centralized_profiled, ClusterConfig, Schedule};

fn main() {
    // Large enough that each run takes a few milliseconds: overhead percentages are
    // meaningless when the whole run is sub-millisecond noise.
    let workload = autodist_workloads::montecarlo(40000);

    for metric in Metric::all() {
        let (profiler, handle) = Profiler::new(Some(metric));
        let report = run_centralized_profiled(
            &workload.program,
            1.0,
            Some(Box::new(profiler)),
            Profiler::sample_interval(Some(metric)),
        );
        assert!(report.is_ok(), "{:?}", report.error);
        println!("==== {} ====", metric.name());
        let text = handle.lock().render(&workload.program);
        if text.is_empty() {
            println!("(no per-item data for this metric)");
        } else {
            print!("{text}");
        }
        println!();
    }

    println!("==== per-node hot methods (cooperative distributed run) ====");
    let distributor = Distributor::new(DistributorConfig::default());
    let plan = distributor
        .try_distribute(&workload.program)
        .expect("distribution pipeline");
    let nodes = plan.node_programs.len();
    let mut profilers = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..nodes {
        let (profiler, handle) = Profiler::new(Some(Metric::HotMethods));
        profilers.push(Some(NodeProfiler::new(
            Box::new(profiler),
            Profiler::sample_interval(Some(Metric::HotMethods)),
        )));
        handles.push(handle);
    }
    let report = plan.execute_profiled(
        &ClusterConfig {
            schedule: Schedule::Inline,
            ..ClusterConfig::paper_testbed()
        },
        profilers,
    );
    assert!(report.is_ok(), "{:?}", report.error);
    for (rank, handle) in handles.iter().enumerate() {
        let data = handle.lock();
        println!(
            "node {rank}: {} samples over {} instructions",
            data.samples, report.per_node[rank].instructions
        );
        for (method, count) in data.hottest_methods(3) {
            let program = &plan.node_programs[rank].program;
            let m = program.method(method);
            println!(
                "  {:<40} {count}",
                format!("{}.{}", program.class(m.class).name, m.name)
            );
        }
    }
    println!();

    println!("==== overhead comparison (Table 3 methodology) ====");
    let workloads = vec![
        (workload.name.clone(), workload.program.clone()),
        (
            "heapsort".to_string(),
            autodist_workloads::heapsort(4000).program,
        ),
    ];
    // measure_overheads repeats at least 5 rounds, interleaved, and reports medians.
    let table = measure_overheads(&workloads, &Metric::all(), 5);
    print!("{}", table.render());
    let base = table.baseline().total_ms;
    for row in &table.rows {
        assert!(
            row.overhead_pct(base) > -5.0,
            "overhead of {:?} is implausibly negative",
            row.metric
        );
    }
}
