//! The paper's running example end to end, from source text: compile the Bank/Account
//! program (Figure 2), build the CRG (Figure 3) and the ODG (Figure 4), partition it
//! two ways, show the Figure 8/9 bytecode transformations and run both node copies.
//!
//! Run with: `cargo run --example bank_distribution`

use autodist::{viz, Distributor, DistributorConfig, PipelineError};
use autodist_ir::printer::print_bytecode;
use autodist_runtime::cluster::ClusterConfig;

fn main() -> Result<(), PipelineError> {
    let workload = autodist_workloads::bank(20);
    let program = &workload.program;

    let distributor = Distributor::new(DistributorConfig::default());
    let plan = distributor.try_distribute(program)?;

    println!("=== Figure 3: class relation graph (VCG) ===");
    println!("{}", viz::crg_to_vcg(program, &plan.analysis.crg));

    println!("=== Figure 4: object dependence graph with partition numbers (VCG) ===");
    println!(
        "{}",
        viz::odg_to_vcg(&plan.analysis.odg, Some(&plan.partitioning.assignment))
    );

    println!("=== class placement ===");
    for (&class, &node) in &plan.placement.home {
        println!("  {:<20} -> node {node}", program.class(class).name);
    }

    println!();
    println!("=== Figure 8/9 style: Main.main rewritten for node 0 ===");
    let node0 = &plan.node_programs[0];
    let entry = node0
        .program
        .entry
        .ok_or_else(|| PipelineError::Codegen("node 0 copy lost its entry point".to_string()))?;
    println!("{}", print_bytecode(&node0.program, entry));
    println!(
        "rewrites: {} allocations, {} invocations, {} field accesses",
        node0.stats.rewritten_allocations,
        node0.stats.rewritten_invocations,
        node0.stats.rewritten_field_accesses
    );

    let baseline = distributor.try_run_baseline(program)?;
    let report = plan.try_execute(&ClusterConfig::paper_testbed())?;
    println!();
    println!("centralized : {:>10.0} us", baseline.virtual_time_us);
    println!(
        "distributed : {:>10.0} us ({} messages)",
        report.virtual_time_us,
        report.total_messages()
    );
    println!(
        "correct     : {}",
        report.final_statics.get("Main::checksum") == baseline.final_statics.get("Main::checksum")
    );
    Ok(())
}
