//! Quickstart: distribute the Bank/Account example over two simulated nodes and compare
//! against the sequential baseline.
//!
//! Run with: `cargo run --example quickstart`

use autodist::{Distributor, DistributorConfig, PipelineError};
use autodist_runtime::cluster::ClusterConfig;

fn main() -> Result<(), PipelineError> {
    // 1. A monolithic program (the paper's Figure 2 example, written in the bundled
    //    MiniJava-like source language and compiled to bytecode).
    let workload = autodist_workloads::bank(100);

    // 2. The automatic distribution pipeline: analyse, partition, rewrite. Every phase
    //    reports failures through the shared `PipelineError` surface.
    let distributor = Distributor::new(DistributorConfig::default());
    let plan = distributor.try_distribute(&workload.program)?;
    println!(
        "class relation graph : {} nodes, {} edges",
        plan.analysis.crg.node_count(),
        plan.analysis.crg.edge_count()
    );
    println!(
        "object dependence graph: {} nodes, {} edges",
        plan.analysis.odg.node_count(),
        plan.analysis.odg.edge_count()
    );
    println!(
        "ODG edge cut          : {} (weight {})",
        plan.partitioning.cut_edges, plan.partitioning.edgecut
    );
    println!("rewritten sites       : {}", plan.total_rewritten_sites());
    println!("transformation time   : {:.2} ms", plan.timings.total_ms());

    // 3. Execute: sequential baseline on the slow node vs distributed over the paper's
    //    two-node testbed (800 MHz node + 1.7 GHz node, 100 Mb Ethernet).
    let baseline = distributor.try_run_baseline(&workload.program)?;
    let report = plan.try_execute(&ClusterConfig::paper_testbed())?;
    println!("baseline (virtual)    : {:.0} us", baseline.virtual_time_us);
    println!("distributed (virtual) : {:.0} us", report.virtual_time_us);
    println!(
        "messages exchanged    : {} ({} bytes)",
        report.total_messages(),
        report.total_bytes()
    );
    println!(
        "speedup               : {:.1} %",
        report.speedup_over(&baseline) * 100.0
    );
    assert_eq!(
        report.final_statics.get("Main::checksum"),
        baseline.final_statics.get("Main::checksum"),
        "distribution must not change program behaviour"
    );
    println!("checksums match       : yes");
    Ok(())
}
