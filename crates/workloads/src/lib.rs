//! # autodist-workloads
//!
//! The benchmark programs used in the paper's evaluation, re-expressed in this
//! repository's MiniJava-style source language and compiled to the IR on demand:
//!
//! * **Java Grande section 1–3 kernels** — Create, Method, Crypt, HeapSort, MolDyn,
//!   Search (Table 1/2 + Figure 11), plus FFT and MonteCarlo (Table 3).
//! * **SPEC JVM98-shaped programs** — `compress` (201_compress) and `db` (209_db).
//! * The **Bank/Account** running example of Figure 2.
//!
//! Each workload is built as a `Main` driver class plus one or more worker/data classes
//! so that the class-level placement used by the distribution rewriter has something
//! meaningful to split. Every program stores a final checksum into `Main.checksum`,
//! which the tests (and the distributed-vs-centralized comparisons) use to check that
//! transformations preserve behaviour.

use autodist_ir::frontend::compile_source;
use autodist_ir::Program;

mod gen;
pub use gen::{generated, phased, GenConfig, GeneratedWorkload, PhasedWorkload};

/// The array-element flavour of the Create benchmark (the paper's Table 3 rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CreateKind {
    /// `int[]` allocations.
    IntArray,
    /// `long[]` allocations (same as int in this IR, kept for table fidelity).
    LongArray,
    /// `float[]` allocations.
    FloatArray,
    /// `Object[]` allocations.
    ObjectArray,
    /// Arrays of a user-defined class.
    CustomArray,
}

impl CreateKind {
    /// Display name used in Table 3.
    pub fn name(&self) -> &'static str {
        match self {
            CreateKind::IntArray => "CreateBench (int[])",
            CreateKind::LongArray => "CreateBench (long[])",
            CreateKind::FloatArray => "CreateBench (float[])",
            CreateKind::ObjectArray => "CreateBench (Object[])",
            CreateKind::CustomArray => "CreateBench (Custom[])",
        }
    }
}

/// A named, ready-to-run benchmark program.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Short name (matches the paper's tables).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// The compiled program.
    pub program: Program,
}

fn build(name: &str, description: &str, src: &str) -> Workload {
    let program =
        compile_source(src).unwrap_or_else(|e| panic!("workload {name} failed to compile: {e}"));
    Workload {
        name: name.to_string(),
        description: description.to_string(),
        program,
    }
}

/// The Bank/Account example of Figure 2.
pub fn bank(customers: usize) -> Workload {
    let src = format!(
        r#"
        class Account {{
            int id;
            String name;
            int savings;
            int checking;
            Account(int id, String name, int savings, int checking) {{
                this.id = id;
                this.name = name;
                this.savings = savings;
                this.checking = checking;
            }}
            int getSavings() {{ return this.savings; }}
            int getId() {{ return this.id; }}
            int getBalance() {{ return this.savings; }}
            void setBalance(int b) {{ this.savings = b; }}
        }}
        class Bank {{
            int id;
            String name;
            int numCustomers;
            Account[] accounts;
            int count;
            Bank(String name, int numCustomers, int initialBalance) {{
                this.name = name;
                this.numCustomers = numCustomers;
                this.accounts = new Account[{cap}];
                this.count = 0;
                this.initializeAccounts(initialBalance);
            }}
            void initializeAccounts(int initialBalance) {{
                int i = 0;
                while (i < this.numCustomers) {{
                    Account a = new Account(i, "customer", initialBalance, 0);
                    this.openAccount(a);
                    i = i + 1;
                }}
            }}
            void openAccount(Account a) {{
                this.accounts[this.count] = a;
                this.count = this.count + 1;
            }}
            Account getCustomer(int customerID) {{ return this.accounts[customerID]; }}
            boolean withdraw(int customerID, int amount) {{
                if (amount > 0) {{
                    this.getCustomer(customerID).setBalance(
                        this.getCustomer(customerID).getBalance() - amount);
                    return true;
                }} else {{
                    return false;
                }}
            }}
            int totalSavings() {{
                int t = 0;
                int i = 0;
                while (i < this.count) {{
                    t = t + this.accounts[i].getSavings();
                    i = i + 1;
                }}
                return t;
            }}
        }}
        class Main {{
            static int checksum;
            static void main() {{
                Bank merchants = new Bank("Merchants", {n}, 10000);
                Account a4 = new Account(1001, "ABC Market", 1000000, 100000);
                Account a5 = new Account(1002, "CDE Outlet", 5000000, 300000);
                merchants.openAccount(a4);
                merchants.openAccount(a5);
                Account a = merchants.getCustomer(2);
                boolean ok = merchants.withdraw(a.getId(), 900);
                checksum = merchants.totalSavings();
            }}
        }}
        "#,
        n = customers,
        cap = customers + 8
    );
    build("bank", "the Bank/Account running example of Figure 2", &src)
}

/// JGFCreateBench: object and array creation throughput.
pub fn create_bench(kind: CreateKind, iterations: usize) -> Workload {
    let body = match kind {
        CreateKind::IntArray | CreateKind::LongArray => {
            "int[] a = new int[32]; a[0] = i; sink = sink + a[0];".to_string()
        }
        CreateKind::FloatArray => {
            "float[] a = new float[32]; a[0] = 1.5; sink = sink + 1;".to_string()
        }
        CreateKind::ObjectArray => {
            "Item[] a = new Item[16]; a[0] = new Item(); sink = sink + 1;".to_string()
        }
        CreateKind::CustomArray => {
            "Custom c = new Custom(i, i + 1); Custom[] a = new Custom[8]; a[0] = c; sink = sink + c.a;"
                .to_string()
        }
    };
    let src = format!(
        r#"
        class Item {{ int v; }}
        class Custom {{
            int a;
            int b;
            Custom(int a, int b) {{ this.a = a; this.b = b; }}
        }}
        class Factory {{
            int run(int n) {{
                int sink = 0;
                int i = 0;
                while (i < n) {{
                    {body}
                    i = i + 1;
                }}
                return sink;
            }}
        }}
        class Main {{
            static int checksum;
            static void main() {{
                Factory f = new Factory();
                checksum = f.run({n}) + 1;
            }}
        }}
        "#,
        body = body,
        n = iterations
    );
    build(kind.name(), "JGFCreateBench: allocation throughput", &src)
}

/// JGFMethodBench: method invocation throughput (instance + static + virtual).
pub fn method_bench(iterations: usize) -> Workload {
    let src = format!(
        r#"
        class Base {{
            int id() {{ return 1; }}
        }}
        class Derived extends Base {{
            int id() {{ return 2; }}
        }}
        class Callee {{
            int instanceAdd(int x) {{ return x + 1; }}
            static int staticAdd(int x) {{ return x + 2; }}
        }}
        class Harness {{
            Callee callee;
            Base plain;
            Base derived;
            Harness() {{
                this.callee = new Callee();
                this.plain = new Base();
                this.derived = new Derived();
            }}
            int run(int n) {{
                int acc = 0;
                int i = 0;
                while (i < n) {{
                    acc = this.callee.instanceAdd(acc);
                    acc = Callee.staticAdd(acc);
                    acc = acc + this.plain.id() + this.derived.id();
                    i = i + 1;
                }}
                return acc;
            }}
        }}
        class Main {{
            static int checksum;
            static void main() {{
                Harness h = new Harness();
                checksum = h.run({n});
            }}
        }}
        "#,
        n = iterations
    );
    build(
        "method",
        "JGFMethodBench: method invocation throughput",
        &src,
    )
}

/// JGFCryptBench: symmetric encrypt/decrypt over an integer buffer.
pub fn crypt(size: usize) -> Workload {
    let src = format!(
        r#"
        class Cipher {{
            int key1;
            int key2;
            int[] plain;
            Cipher(int n, int k1, int k2) {{
                this.key1 = k1;
                this.key2 = k2;
                this.plain = new int[n];
                int i = 0;
                while (i < n) {{ this.plain[i] = (i * 17 + 3) % 251; i = i + 1; }}
            }}
            int run() {{
                int[] out = new int[this.plain.length];
                int i = 0;
                while (i < this.plain.length) {{
                    int v = this.plain[i];
                    v = (v * this.key1 + this.key2) % 65536;
                    v = (v * 3 + 7) % 65536;
                    out[i] = v;
                    i = i + 1;
                }}
                int d = 0;
                i = 0;
                while (i < out.length) {{
                    d = (d * 31 + out[i]) % 1000000007;
                    i = i + 1;
                }}
                return d;
            }}
        }}
        class Main {{
            static int checksum;
            static void main() {{
                Cipher c = new Cipher({n}, 52845, 22719);
                checksum = c.run() + 1;
            }}
        }}
        "#,
        n = size
    );
    build("crypt", "JGFCryptBench: block cipher kernel", &src)
}

/// JGFHeapSortBench: heapsort over a pseudo-random integer array.
pub fn heapsort(size: usize) -> Workload {
    let src = format!(
        r#"
        class Sorter {{
            int[] data;
            Sorter(int n) {{
                this.data = new int[n];
                int seed = 13;
                int i = 0;
                while (i < n) {{
                    seed = (seed * 1103515245 + 12345) % 2147483647;
                    if (seed < 0) {{ seed = 0 - seed; }}
                    this.data[i] = seed % 10000;
                    i = i + 1;
                }}
            }}
            void siftDown(int[] a, int start, int end) {{
                int root = start;
                boolean done = false;
                while (root * 2 + 1 <= end && done == false) {{
                    int child = root * 2 + 1;
                    if (child + 1 <= end) {{
                        if (a[child] < a[child + 1]) {{ child = child + 1; }}
                    }}
                    if (a[root] < a[child]) {{
                        int t = a[root];
                        a[root] = a[child];
                        a[child] = t;
                        root = child;
                    }} else {{
                        done = true;
                    }}
                }}
            }}
            int run() {{
                int[] a = this.data;
                int n = a.length;
                int start = n / 2 - 1;
                while (start >= 0) {{
                    this.siftDown(a, start, n - 1);
                    start = start - 1;
                }}
                int end = n - 1;
                while (end > 0) {{
                    int t = a[end];
                    a[end] = a[0];
                    a[0] = t;
                    end = end - 1;
                    this.siftDown(a, 0, end);
                }}
                int i = 1;
                int ok = 1;
                while (i < a.length) {{
                    if (a[i - 1] > a[i]) {{ ok = 0; }}
                    i = i + 1;
                }}
                return ok * (a[a.length - 1] + 1);
            }}
        }}
        class Main {{
            static int checksum;
            static void main() {{
                Sorter s = new Sorter({n});
                checksum = s.run();
            }}
        }}
        "#,
        n = size
    );
    build("heapsort", "JGFHeapSortBench: heapsort kernel", &src)
}

/// JGFMolDynBench: an O(N^2) particle force computation.
pub fn moldyn(particles: usize, steps: usize) -> Workload {
    let src = format!(
        r#"
        class Particles {{
            float[] x;
            float[] y;
            float[] fx;
            float[] fy;
            int n;
            Particles(int n) {{
                this.n = n;
                this.x = new float[n];
                this.y = new float[n];
                this.fx = new float[n];
                this.fy = new float[n];
                int i = 0;
                while (i < n) {{
                    this.x[i] = 0.3 * i;
                    this.y[i] = 0.7 * i;
                    i = i + 1;
                }}
            }}
            void step() {{
                int i = 0;
                while (i < this.n) {{
                    int j = 0;
                    while (j < this.n) {{
                        if (i != j) {{
                            float dx = this.x[i] - this.x[j];
                            float dy = this.y[i] - this.y[j];
                            float r2 = dx * dx + dy * dy + 1.0;
                            this.fx[i] = this.fx[i] + dx / r2;
                            this.fy[i] = this.fy[i] + dy / r2;
                        }}
                        j = j + 1;
                    }}
                    i = i + 1;
                }}
                i = 0;
                while (i < this.n) {{
                    this.x[i] = this.x[i] + this.fx[i] * 0.001;
                    this.y[i] = this.y[i] + this.fy[i] * 0.001;
                    i = i + 1;
                }}
            }}
            float energy() {{
                float e = 0.0;
                int i = 0;
                while (i < this.n) {{
                    e = e + this.x[i] * this.x[i] + this.y[i] * this.y[i];
                    i = i + 1;
                }}
                return e;
            }}
        }}
        class Main {{
            static int checksum;
            static void main() {{
                Particles p = new Particles({n});
                int s = 0;
                while (s < {steps}) {{
                    p.step();
                    s = s + 1;
                }}
                float e = p.energy();
                if (e > 0.0) {{ checksum = 1000 + {n}; }} else {{ checksum = 1; }}
            }}
        }}
        "#,
        n = particles,
        steps = steps
    );
    build("moldyn", "JGFMolDynBench: N-body force kernel", &src)
}

/// JGFSearchBench: a recursive game-tree search (alpha-beta flavoured).
pub fn search(depth: usize) -> Workload {
    let depth = depth.min(14);
    let src = format!(
        r#"
        class Board {{
            int state;
            Board(int s) {{ this.state = s; }}
            int evaluate() {{ return (this.state * 37 + 11) % 101 - 50; }}
        }}
        class Searcher {{
            int nodes;
            int search(int state, int depth, int alpha, int beta) {{
                this.nodes = this.nodes + 1;
                if (depth == 0) {{
                    Board b = new Board(state);
                    return b.evaluate();
                }}
                int best = 0 - 100000;
                int move = 0;
                while (move < 3) {{
                    int child = state * 3 + move + 1;
                    int score = 0 - this.search(child, depth - 1, 0 - beta, 0 - alpha);
                    if (score > best) {{ best = score; }}
                    if (best > alpha) {{ alpha = best; }}
                    if (alpha >= beta) {{ move = 3; }} else {{ move = move + 1; }}
                }}
                return best;
            }}
        }}
        class Main {{
            static int checksum;
            static void main() {{
                Searcher s = new Searcher();
                int score = s.search(1, {d}, 0 - 100000, 100000);
                checksum = score * 1000 + s.nodes % 1000 + 7;
            }}
        }}
        "#,
        d = depth
    );
    build(
        "search",
        "JGFSearchBench: alpha-beta game-tree search",
        &src,
    )
}

/// SPEC JVM98 201_compress shaped workload: run-length compression + round trip check.
pub fn compress(size: usize) -> Workload {
    let src = format!(
        r#"
        class Compressor {{
            int[] data;
            Compressor(int n) {{
                this.data = new int[n];
                int i = 0;
                while (i < n) {{
                    this.data[i] = (i / 7) % 10;
                    i = i + 1;
                }}
            }}
            int[] pack(int[] input) {{
                int[] out = new int[input.length * 2 + 2];
                int oi = 0;
                int i = 0;
                while (i < input.length) {{
                    int v = input[i];
                    int run = 1;
                    while (i + run < input.length && input[i + run] == v && run < 255) {{
                        run = run + 1;
                    }}
                    out[oi] = run;
                    out[oi + 1] = v;
                    oi = oi + 2;
                    i = i + run;
                }}
                out[oi] = 0 - 1;
                return out;
            }}
            int[] unpack(int[] packed, int originalLength) {{
                int[] out = new int[originalLength];
                int oi = 0;
                int i = 0;
                while (packed[i] != 0 - 1) {{
                    int run = packed[i];
                    int v = packed[i + 1];
                    int k = 0;
                    while (k < run) {{
                        out[oi] = v;
                        oi = oi + 1;
                        k = k + 1;
                    }}
                    i = i + 2;
                }}
                return out;
            }}
            int run() {{
                int n = this.data.length;
                int[] packed = this.pack(this.data);
                int[] restored = this.unpack(packed, n);
                int ok = 1;
                int i = 0;
                while (i < n) {{
                    if (restored[i] != this.data[i]) {{ ok = 0; }}
                    i = i + 1;
                }}
                int digest = 0;
                i = 0;
                while (packed[i] != 0 - 1) {{ digest = (digest * 31 + packed[i]) % 1000003; i = i + 1; }}
                return ok * (digest + 1);
            }}
        }}
        class Main {{
            static int checksum;
            static void main() {{
                Compressor c = new Compressor({n});
                checksum = c.run();
            }}
        }}
        "#,
        n = size
    );
    build(
        "compress",
        "SPEC JVM98 201_compress shaped run-length compressor",
        &src,
    )
}

/// SPEC JVM98 209_db shaped workload: an in-memory record database.
pub fn db_bench(records: usize, operations: usize) -> Workload {
    let src = format!(
        r#"
        class Record {{
            int key;
            int value;
            Record(int key, int value) {{ this.key = key; this.value = value; }}
        }}
        class Database {{
            Record[] records;
            int count;
            Database(int capacity) {{
                this.records = new Record[capacity];
                this.count = 0;
            }}
            void fill(int n) {{
                int i = 0;
                while (i < n) {{
                    this.add(i, i * 3 + 1);
                    i = i + 1;
                }}
            }}
            void add(int key, int value) {{
                this.records[this.count] = new Record(key, value);
                this.count = this.count + 1;
            }}
            int find(int key) {{
                int i = 0;
                while (i < this.count) {{
                    if (this.records[i].key == key) {{ return this.records[i].value; }}
                    i = i + 1;
                }}
                return 0 - 1;
            }}
            void update(int key, int value) {{
                int i = 0;
                while (i < this.count) {{
                    if (this.records[i].key == key) {{ this.records[i].value = value; }}
                    i = i + 1;
                }}
            }}
            void remove(int key) {{
                int i = 0;
                while (i < this.count) {{
                    if (this.records[i].key == key) {{
                        this.records[i] = this.records[this.count - 1];
                        this.count = this.count - 1;
                    }}
                    i = i + 1;
                }}
            }}
            int total() {{
                int t = 0;
                int i = 0;
                while (i < this.count) {{
                    t = t + this.records[i].value;
                    i = i + 1;
                }}
                return t;
            }}
            int workload(int n, int ops) {{
                int acc = 0;
                int op = 0;
                while (op < ops) {{
                    int key = (op * 13) % n;
                    acc = acc + this.find(key);
                    if (op % 5 == 0) {{ this.update(key, op); }}
                    if (op % 17 == 0) {{ this.remove(key); }}
                    op = op + 1;
                }}
                return acc + this.total();
            }}
        }}
        class Main {{
            static int checksum;
            static void main() {{
                int n = {records};
                Database db = new Database(n + 8);
                db.fill(n);
                checksum = db.workload(n, {ops});
            }}
        }}
        "#,
        records = records,
        ops = operations
    );
    build("db", "SPEC JVM98 209_db shaped record database", &src)
}

/// An FFT-flavoured numeric kernel (Table 3's FFTA row): O(n log n) butterfly passes.
pub fn fft(size: usize) -> Workload {
    let src = format!(
        r#"
        class Transform {{
            void pass(float[] re, float[] im, int stride) {{
                int i = 0;
                while (i + stride < re.length) {{
                    float tr = re[i + stride] * 0.7 - im[i + stride] * 0.7;
                    float ti = re[i + stride] * 0.7 + im[i + stride] * 0.7;
                    re[i + stride] = re[i] - tr;
                    im[i + stride] = im[i] - ti;
                    re[i] = re[i] + tr;
                    im[i] = im[i] + ti;
                    i = i + stride * 2;
                }}
            }}
            float run(float[] re, float[] im) {{
                int stride = 1;
                while (stride < re.length) {{
                    this.pass(re, im, stride);
                    stride = stride * 2;
                }}
                float acc = 0.0;
                int i = 0;
                while (i < re.length) {{ acc = acc + re[i] * re[i] + im[i] * im[i]; i = i + 1; }}
                return acc;
            }}
        }}
        class Main {{
            static int checksum;
            static void main() {{
                int n = {n};
                float[] re = new float[n];
                float[] im = new float[n];
                int i = 0;
                while (i < n) {{ re[i] = 0.01 * i; im[i] = 0.0; i = i + 1; }}
                Transform t = new Transform();
                float a = t.run(re, im);
                if (a > 0.0) {{ checksum = n; }} else {{ checksum = 1; }}
            }}
        }}
        "#,
        n = size
    );
    build("fft", "FFT-shaped butterfly kernel", &src)
}

/// A Monte-Carlo π-estimation kernel (Table 3's MonteCarlo row).
pub fn montecarlo(samples: usize) -> Workload {
    let src = format!(
        r#"
        class Rng {{
            int state;
            Rng(int seed) {{ this.state = seed; }}
            int next() {{
                this.state = (this.state * 1103515245 + 12345) % 2147483647;
                if (this.state < 0) {{ this.state = 0 - this.state; }}
                return this.state;
            }}
        }}
        class Simulation {{
            int run(int samples) {{
                Rng rng = new Rng(42);
                int inside = 0;
                int i = 0;
                while (i < samples) {{
                    int x = rng.next() % 1000;
                    int y = rng.next() % 1000;
                    if (x * x + y * y < 1000000) {{ inside = inside + 1; }}
                    i = i + 1;
                }}
                return inside * 4000 / samples;
            }}
        }}
        class Main {{
            static int checksum;
            static void main() {{
                Simulation s = new Simulation();
                checksum = s.run({n});
            }}
        }}
        "#,
        n = samples
    );
    build("montecarlo", "Monte-Carlo π estimation kernel", &src)
}

/// The eight benchmarks of Table 1 / Table 2 / Figure 11, at small default sizes
/// suitable for tests; the bench harness re-creates them with `scale` > 1.
pub fn table1_workloads(scale: usize) -> Vec<Workload> {
    let s = scale.max(1);
    vec![
        create_bench(CreateKind::CustomArray, 400 * s),
        method_bench(600 * s),
        crypt(1200 * s),
        heapsort(800 * s),
        moldyn(10 * s, 4),
        search(7 + s.min(5)),
        compress(1500 * s),
        db_bench(80 * s, 300 * s),
    ]
}

/// The ten workloads of the profiler evaluation (Table 3).
pub fn table3_workloads(scale: usize) -> Vec<Workload> {
    let s = scale.max(1);
    vec![
        create_bench(CreateKind::IntArray, 300 * s),
        create_bench(CreateKind::LongArray, 300 * s),
        create_bench(CreateKind::FloatArray, 300 * s),
        create_bench(CreateKind::ObjectArray, 200 * s),
        create_bench(CreateKind::CustomArray, 200 * s),
        method_bench(400 * s),
        fft(256 * s),
        heapsort(300 * s),
        moldyn(8 * s, 3),
        montecarlo(500 * s),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use autodist_ir::verify::verify_program;
    use autodist_runtime::cluster::run_centralized;
    use autodist_runtime::Value;

    fn checksum_of(w: &Workload) -> i64 {
        let report = run_centralized(&w.program, 1.0);
        assert!(report.is_ok(), "{}: {:?}", w.name, report.error);
        match report.final_statics.get("Main::checksum") {
            Some(Value::Int(v)) => *v,
            other => panic!("{}: missing checksum ({other:?})", w.name),
        }
    }

    #[test]
    fn all_table1_workloads_compile_verify_and_run() {
        for w in table1_workloads(1) {
            verify_program(&w.program).unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
            let c = checksum_of(&w);
            assert_ne!(c, 0, "{} produced a non-trivial checksum", w.name);
        }
    }

    #[test]
    fn all_table3_workloads_compile_and_run() {
        for w in table3_workloads(1) {
            verify_program(&w.program).unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
            let report = run_centralized(&w.program, 1.0);
            assert!(report.is_ok(), "{}: {:?}", w.name, report.error);
        }
    }

    #[test]
    fn bank_checksum_matches_hand_computation() {
        let w = bank(100);
        // 100 customers * 10000 + a4 (1,000,000) + a5 (5,000,000) - 900 withdrawn.
        assert_eq!(checksum_of(&w), 100 * 10000 + 1_000_000 + 5_000_000 - 900);
    }

    #[test]
    fn heapsort_verifies_sortedness() {
        let w = heapsort(500);
        // verify() returns ok * (max + 1); ok must be 1, so checksum > 0.
        assert!(checksum_of(&w) > 0);
    }

    #[test]
    fn compress_round_trips() {
        let w = compress(800);
        assert!(checksum_of(&w) > 0, "ok flag must be 1 and digest non-zero");
    }

    #[test]
    fn montecarlo_estimates_pi_roughly() {
        let w = montecarlo(4000);
        let pi_times_1000 = checksum_of(&w);
        assert!((2800..3500).contains(&pi_times_1000), "got {pi_times_1000}");
    }

    #[test]
    fn workloads_scale_with_their_parameter() {
        let small = crypt(200);
        let large = crypt(2000);
        let rs = run_centralized(&small.program, 1.0);
        let rl = run_centralized(&large.program, 1.0);
        assert!(
            rl.per_node[0].instructions > rs.per_node[0].instructions * 5,
            "bigger input, more work"
        );
    }

    #[test]
    fn create_kinds_have_distinct_names() {
        let names: Vec<&str> = [
            CreateKind::IntArray,
            CreateKind::LongArray,
            CreateKind::FloatArray,
            CreateKind::ObjectArray,
            CreateKind::CustomArray,
        ]
        .iter()
        .map(|k| k.name())
        .collect();
        let unique: std::collections::BTreeSet<&&str> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn db_operations_modify_state() {
        let w = db_bench(50, 120);
        assert!(checksum_of(&w) != 0);
    }

    #[test]
    fn search_explores_a_tree() {
        let w = search(8);
        let _ = checksum_of(&w);
        let report = run_centralized(&w.program, 1.0);
        assert!(
            report.per_node[0].method_invocations > 100,
            "visits many nodes"
        );
    }

    #[test]
    fn moldyn_and_fft_produce_expected_flags() {
        assert_eq!(checksum_of(&moldyn(6, 2)), 1006);
        assert_eq!(checksum_of(&fft(128)), 128);
    }
}
