//! Parameterized workload generator: seeded synthetic call trees for the chaos suite.
//!
//! The Table 1/3 programs are faithful to the paper but fixed in shape; fault
//! injection wants *families* of programs whose call-graph depth, fan-out, object
//! affinity and message sizes can be swept independently. [`generated`] builds a
//! MiniJava program from a [`GenConfig`]: `depth` levels of `width` classes each,
//! every non-leaf calling `fan_out` children in the next level, children chosen by
//! a seeded PRNG whose `affinity_skew` concentrates edges onto low-index classes
//! (skew 0 spreads calls uniformly; large skew funnels every call through class 0
//! — a hot object). Every call carries a `String` tag whose length is set by
//! `payload`, so the wire cost of a remote hop (`5 + len` bytes per tag) is a knob
//! too: `Main` alternates between a full-size and a half-size tag, giving a
//! bimodal message-size distribution. The whole tree stores a bounded checksum
//! into `Main.checksum`, so distributed runs can be checked against centralized
//! ones under any placement of the generated levels.
//!
//! Generation is deterministic: the same [`GenConfig`] (seed included) produces
//! byte-identical source, so a chaos-test failure reproduces from its config alone.

use crate::{build, Workload};

/// Shape parameters for one generated workload. All counts are clamped to at
/// least 1 during generation.
#[derive(Clone, Debug, PartialEq)]
pub struct GenConfig {
    /// PRNG seed; fixes the parent→child wiring (and nothing else).
    pub seed: u64,
    /// Levels of generated classes below `Main` (call-graph depth).
    pub depth: usize,
    /// Classes per level.
    pub width: usize,
    /// Children each non-leaf class calls in the next level.
    pub fan_out: usize,
    /// Child-choice skew: 0.0 picks uniformly among the next level's classes,
    /// larger values concentrate edges on low-index classes (object affinity).
    pub affinity_skew: f64,
    /// Length of the `String` tag passed down every call (wire bytes per remote
    /// hop = 5 + length; `Main` alternates full- and half-size tags).
    pub payload: usize,
    /// Root calls `Main` drives through each level-0 class.
    pub iterations: usize,
    /// Phased traffic for [`phased`]: `(requests, affinity_skew_target)` pairs.
    /// Each phase serves `requests` requests of a variant of this config whose
    /// `affinity_skew` is the phase's target — so generated serving traffic
    /// shifts its hot-object affinity mid-run, deterministically per seed. Empty
    /// (the default) means unphased; [`generated`] ignores this field.
    pub phase: Vec<(usize, f64)>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0x5EED,
            depth: 3,
            width: 2,
            fan_out: 2,
            affinity_skew: 0.0,
            payload: 8,
            iterations: 4,
            phase: Vec::new(),
        }
    }
}

/// A generated workload plus the structural facts the chaos suite places by.
#[derive(Clone, Debug)]
pub struct GeneratedWorkload {
    /// The compiled program (named after its config).
    pub workload: Workload,
    /// `(class name, level)` for every generated class, `Main` excluded.
    pub levels: Vec<(String, usize)>,
    /// Chosen call edges `((level, idx), (level + 1, child idx))`.
    pub edges: Vec<((usize, usize), (usize, usize))>,
}

/// SplitMix64 — the same tiny deterministic generator the test stubs use.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Index in `0..width`, skew-weighted toward 0.
    fn pick(&mut self, width: usize, skew: f64) -> usize {
        let u = self.next_f64().powf(1.0 + skew.max(0.0));
        ((width as f64 * u) as usize).min(width - 1)
    }
}

fn class_name(level: usize, idx: usize) -> String {
    format!("G{level}_{idx}")
}

/// Builds the workload described by `cfg`. See the module docs for the shape.
pub fn generated(cfg: &GenConfig) -> GeneratedWorkload {
    let depth = cfg.depth.max(1);
    let width = cfg.width.max(1);
    let fan_out = cfg.fan_out.max(1);
    let iterations = cfg.iterations.max(1);
    let payload = cfg.payload.max(2);
    let mut rng = Rng(cfg.seed);

    // Wiring first: children[level][idx] lists the next-level classes this class
    // calls, in call order. Leaves (the last level) have none.
    let mut children: Vec<Vec<Vec<usize>>> = Vec::with_capacity(depth);
    let mut edges = Vec::new();
    for level in 0..depth {
        let mut row = Vec::with_capacity(width);
        for idx in 0..width {
            let mut picks = Vec::new();
            if level + 1 < depth {
                for _ in 0..fan_out {
                    let child = rng.pick(width, cfg.affinity_skew);
                    edges.push(((level, idx), (level + 1, child)));
                    picks.push(child);
                }
            }
            row.push(picks);
        }
        children.push(row);
    }

    let mut src = String::new();
    let mut levels = Vec::new();
    for (level, row) in children.iter().enumerate() {
        for (idx, picks) in row.iter().enumerate() {
            let name = class_name(level, idx);
            let salt = level * 1000 + idx * 7 + 1;
            if picks.is_empty() {
                // Leaf: bounded local compute, no further calls.
                src.push_str(&format!(
                    "class {name} {{\n\
                     \x20   int salt;\n\
                     \x20   {name}(int salt) {{ this.salt = salt; }}\n\
                     \x20   int work(int n, String tag) {{\n\
                     \x20       int acc = n + this.salt;\n\
                     \x20       int i = 0;\n\
                     \x20       while (i < 8) {{\n\
                     \x20           acc = (acc * 31 + i) % 1000003;\n\
                     \x20           i = i + 1;\n\
                     \x20       }}\n\
                     \x20       return acc;\n\
                     \x20   }}\n\
                     }}\n"
                ));
            } else {
                let fields: String = picks
                    .iter()
                    .enumerate()
                    .map(|(k, &c)| format!("    {} c{k};\n", class_name(level + 1, c)))
                    .collect();
                let params: String = picks
                    .iter()
                    .enumerate()
                    .map(|(k, &c)| format!("{} c{k}", class_name(level + 1, c)))
                    .collect::<Vec<_>>()
                    .join(", ");
                let assigns: String = (0..picks.len())
                    .map(|k| format!("this.c{k} = c{k}; "))
                    .collect();
                let calls: String = (0..picks.len())
                    .map(|k| {
                        format!(
                            "        acc = (acc + this.c{k}.work(acc % 65521, tag)) % 1000003;\n"
                        )
                    })
                    .collect();
                src.push_str(&format!(
                    "class {name} {{\n\
                     {fields}\
                     \x20   {name}({params}) {{ {assigns}}}\n\
                     \x20   int work(int n, String tag) {{\n\
                     \x20       int acc = (n * 31 + {salt}) % 1000003;\n\
                     {calls}\
                     \x20       return acc;\n\
                     \x20   }}\n\
                     }}\n"
                ));
            }
            levels.push((name, level));
        }
    }

    // Main: build the tree bottom-up (one instance per class), then drive every
    // level-0 class `iterations` times, alternating full- and half-size tags.
    let mut main =
        String::from("class Main {\n    static int checksum;\n    static void main() {\n");
    for (level, row) in children.iter().enumerate().rev() {
        for (idx, picks) in row.iter().enumerate() {
            let name = class_name(level, idx);
            let var = name.to_lowercase();
            let args = if picks.is_empty() {
                format!("{}", level * 1000 + idx * 7 + 1)
            } else {
                picks
                    .iter()
                    .map(|&c| class_name(level + 1, c).to_lowercase())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            main.push_str(&format!("        {name} {var} = new {name}({args});\n"));
        }
    }
    main.push_str(&format!(
        "        String tagA = \"{}\";\n        String tagB = \"{}\";\n",
        "x".repeat(payload),
        "x".repeat((payload / 2).max(1)),
    ));
    main.push_str("        int acc = 0;\n        int it = 0;\n");
    main.push_str(&format!("        while (it < {iterations}) {{\n"));
    for idx in 0..width {
        let var = class_name(0, idx).to_lowercase();
        main.push_str(&format!(
            "            if (it % 2 == 0) {{\n\
             \x20               acc = (acc + {var}.work(it + 1, tagA)) % 1000003;\n\
             \x20           }} else {{\n\
             \x20               acc = (acc + {var}.work(it + 1, tagB)) % 1000003;\n\
             \x20           }}\n"
        ));
    }
    main.push_str("            it = it + 1;\n        }\n        checksum = acc + 1;\n    }\n}\n");
    src.push_str(&main);

    let name = format!(
        "gen(seed={:#x},d={depth},w={width},f={fan_out},skew={},pay={payload})",
        cfg.seed, cfg.affinity_skew
    );
    let workload = build(
        &name,
        "seeded synthetic call tree for the chaos suite",
        &src,
    );
    GeneratedWorkload {
        workload,
        levels,
        edges,
    }
}

/// A phased serving workload: one generated app per distinct affinity target
/// plus the request sequence that shifts traffic between them mid-run.
#[derive(Clone, Debug)]
pub struct PhasedWorkload {
    /// One generated variant per *distinct* skew target, in first-use order.
    pub apps: Vec<GeneratedWorkload>,
    /// `sequence[i]` indexes into `apps`: the app request `i` instantiates.
    /// Phase boundaries are exactly where the ISSUE's "traffic shifts its
    /// hot-object affinity" happens.
    pub sequence: Vec<usize>,
}

/// Expands `cfg.phase` into serving traffic: per phase, a variant of `cfg` with
/// `affinity_skew` set to the phase's target (phases with equal targets share
/// one app), contributing that phase's request count to the sequence. With an
/// empty `phase` the whole thing degenerates to one app and zero requests.
/// Deterministic: same config (seed included), same apps and sequence.
pub fn phased(cfg: &GenConfig) -> PhasedWorkload {
    let mut apps = Vec::new();
    let mut targets: Vec<f64> = Vec::new();
    let mut sequence = Vec::new();
    let phases: &[(usize, f64)] = if cfg.phase.is_empty() {
        &[(0, cfg.affinity_skew)]
    } else {
        &cfg.phase
    };
    for &(requests, target) in phases {
        let app = match targets.iter().position(|&t| t == target) {
            Some(i) => i,
            None => {
                apps.push(generated(&GenConfig {
                    affinity_skew: target,
                    phase: Vec::new(),
                    ..cfg.clone()
                }));
                targets.push(target);
                apps.len() - 1
            }
        };
        sequence.extend(std::iter::repeat_n(app, requests));
    }
    PhasedWorkload { apps, sequence }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autodist_ir::verify::verify_program;
    use autodist_runtime::cluster::run_centralized;
    use autodist_runtime::Value;

    fn checksum(w: &Workload) -> i64 {
        let report = run_centralized(&w.program, 1.0);
        assert!(report.is_ok(), "{}: {:?}", w.name, report.error);
        match report.final_statics.get("Main::checksum") {
            Some(Value::Int(v)) => *v,
            other => panic!("{}: missing checksum ({other:?})", w.name),
        }
    }

    #[test]
    fn generated_workloads_compile_verify_and_run() {
        for seed in [1u64, 42, 0xDEAD_BEEF] {
            let g = generated(&GenConfig {
                seed,
                ..GenConfig::default()
            });
            verify_program(&g.workload.program).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            assert_ne!(checksum(&g.workload), 0);
            assert_eq!(g.levels.len(), 3 * 2, "depth * width classes");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenConfig {
            seed: 7,
            affinity_skew: 0.5,
            ..GenConfig::default()
        };
        let a = generated(&cfg);
        let b = generated(&cfg);
        assert_eq!(a.edges, b.edges);
        assert_eq!(checksum(&a.workload), checksum(&b.workload));
        // A different seed rewires the tree (with width > 1 this is overwhelmingly
        // likely; seed 8 is a fixed witness, not a probabilistic claim).
        let c = generated(&GenConfig { seed: 8, ..cfg });
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn depth_and_width_scale_the_work() {
        let small = generated(&GenConfig::default());
        let big = generated(&GenConfig {
            depth: 5,
            width: 3,
            ..GenConfig::default()
        });
        let rs = run_centralized(&small.workload.program, 1.0);
        let rb = run_centralized(&big.workload.program, 1.0);
        assert!(rb.per_node[0].instructions > rs.per_node[0].instructions);
        assert_eq!(big.levels.len(), 5 * 3);
    }

    #[test]
    fn affinity_skew_concentrates_edges_on_low_indices() {
        let wide = GenConfig {
            width: 6,
            depth: 4,
            fan_out: 4,
            ..GenConfig::default()
        };
        let uniform = generated(&GenConfig {
            affinity_skew: 0.0,
            ..wide.clone()
        });
        let skewed = generated(&GenConfig {
            affinity_skew: 1e6,
            ..wide
        });
        let distinct = |g: &GeneratedWorkload| {
            g.edges
                .iter()
                .map(|&(_, (_, c))| c)
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        };
        assert!(distinct(&uniform) > 1, "uniform choice spreads out");
        assert_eq!(distinct(&skewed), 1, "heavy skew funnels into class 0");
        assert_eq!(
            skewed.edges.iter().filter(|&&(_, (_, c))| c == 0).count(),
            skewed.edges.len()
        );
    }

    #[test]
    fn phased_shares_apps_across_equal_targets_and_orders_the_sequence() {
        let cfg = GenConfig {
            width: 4,
            fan_out: 3,
            phase: vec![(3, 0.0), (5, 8.0), (2, 0.0)],
            ..GenConfig::default()
        };
        let p = phased(&cfg);
        assert_eq!(p.apps.len(), 2, "two distinct skew targets, two apps");
        let mut expected = vec![0; 3];
        expected.extend([1; 5]);
        expected.extend([0; 2]);
        assert_eq!(p.sequence, expected);
        // Phase apps really differ in wiring (skew 8 funnels to low indices).
        assert_ne!(p.apps[0].edges, p.apps[1].edges);
        // Determinism: the same config reproduces the same traffic.
        let q = phased(&cfg);
        assert_eq!(p.sequence, q.sequence);
        assert_eq!(p.apps[1].edges, q.apps[1].edges);
    }

    #[test]
    fn phased_without_phases_degenerates_to_one_idle_app() {
        let p = phased(&GenConfig::default());
        assert_eq!(p.apps.len(), 1);
        assert!(p.sequence.is_empty());
    }

    #[test]
    fn payload_sets_the_tag_length_without_changing_the_checksum() {
        let thin = generated(&GenConfig {
            payload: 2,
            ..GenConfig::default()
        });
        let fat = generated(&GenConfig {
            payload: 64,
            ..GenConfig::default()
        });
        // The tag is dead weight for the computation: same wiring, same checksum.
        assert_eq!(thin.edges, fat.edges);
        assert_eq!(checksum(&thin.workload), checksum(&fat.workload));
    }
}
