//! Bytecode → quad lowering.
//!
//! This is the "Bytecode to Quad" translation of Figure 1: the stack-machine bytecode is
//! converted into the register-based quad IR by abstract interpretation of the operand
//! stack. Local variable slot `i` maps to register `Ri`; operand-stack depth `d` maps to
//! register `R(locals + d)`, which makes control-flow merges with non-empty stacks
//! straightforward (values are flushed into the per-depth registers at block ends).
//!
//! Constants are kept symbolic as long as possible so that the resulting listing matches
//! the paper's Figure 5 (`IFCMP_I IConst: 4, IConst: 2, LE, BB4`).

use std::collections::HashMap;

use crate::bytecode::{Const, Insn, InvokeKind};
use crate::cfg::BytecodeCfg;
use crate::program::{Method, MethodId, Program, Type};
use crate::quad::{BlockId, Operand, Quad, QuadBlock, QuadMethod, Reg};

/// Errors produced by the lowering pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// The operand stack underflowed at the given pc.
    StackUnderflow { method: MethodId, pc: usize },
    /// Different control-flow paths reach a block with different stack heights.
    InconsistentStackHeight { method: MethodId, block_pc: usize },
    /// The method body is empty (abstract/native methods cannot be lowered).
    EmptyBody { method: MethodId },
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::StackUnderflow { method, pc } => {
                write!(f, "operand stack underflow in {method:?} at pc {pc}")
            }
            LowerError::InconsistentStackHeight { method, block_pc } => write!(
                f,
                "inconsistent stack height at join point pc {block_pc} in {method:?}"
            ),
            LowerError::EmptyBody { method } => write!(f, "cannot lower empty body {method:?}"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Lowers every method with a body in `program` to quad form.
pub fn lower_program(program: &Program) -> Result<Vec<QuadMethod>, LowerError> {
    program
        .methods
        .iter()
        .filter(|m| !m.body.is_empty())
        .map(|m| lower_method(program, m))
        .collect()
}

/// Lowers a single method to quad form.
pub fn lower_method(program: &Program, method: &Method) -> Result<QuadMethod, LowerError> {
    if method.body.is_empty() {
        return Err(LowerError::EmptyBody { method: method.id });
    }
    let cfg = BytecodeCfg::build(&method.body);
    let nlocals = method.locals.max(method.entry_locals()) as u32;

    // Entry stack height per bytecode block, by worklist propagation.
    let heights = compute_entry_heights(program, method, &cfg)?;

    // Quad block ids: 0 = ENTRY, 1 = EXIT, bytecode block i -> i + 2.
    let qid = |bc_block: usize| BlockId(bc_block as u32 + 2);

    let mut blocks: Vec<QuadBlock> = (0..cfg.block_count() + 2)
        .map(|i| QuadBlock {
            id: BlockId(i as u32),
            ..Default::default()
        })
        .collect();
    blocks[0].succs = vec![qid(0)];

    let mut max_reg = nlocals;

    for (bi, &(start, end)) in cfg.ranges.iter().enumerate() {
        let mut stack: Vec<Operand> = (0..heights[bi])
            .map(|d| Operand::Reg(Reg(nlocals + d as u32)))
            .collect();
        let mut quads: Vec<Quad> = Vec::new();
        let mut succs: Vec<BlockId> = Vec::new();
        let stack_reg = |d: usize| Reg(nlocals + d as u32);

        for pc in start..end {
            let insn = &method.body[pc];
            let underflow = |stack: &Vec<Operand>, need: usize| {
                if stack.len() < need {
                    Err(LowerError::StackUnderflow {
                        method: method.id,
                        pc,
                    })
                } else {
                    Ok(())
                }
            };
            match insn {
                Insn::Const(c) => {
                    let op = match c {
                        Const::Int(v) => Operand::IConst(*v),
                        Const::Float(v) => Operand::FConst(*v),
                        Const::Bool(v) => Operand::BConst(*v),
                        Const::Str(s) => Operand::SConst(s.clone()),
                        Const::Null => Operand::Null,
                    };
                    stack.push(op);
                }
                Insn::Load(n) => stack.push(Operand::Reg(Reg(*n as u32))),
                Insn::Store(n) => {
                    underflow(&stack, 1)?;
                    let val = stack.pop().unwrap();
                    // Spill any remaining stack entries that alias the overwritten local.
                    for (d, entry) in stack.iter_mut().enumerate() {
                        if *entry == Operand::Reg(Reg(*n as u32)) {
                            let spill = stack_reg(d);
                            quads.push(Quad::Move {
                                dst: spill,
                                src: entry.clone(),
                            });
                            *entry = Operand::Reg(spill);
                            max_reg = max_reg.max(spill.0 + 1);
                        }
                    }
                    quads.push(Quad::Move {
                        dst: Reg(*n as u32),
                        src: val,
                    });
                }
                Insn::Dup => {
                    underflow(&stack, 1)?;
                    let top = stack.last().unwrap().clone();
                    stack.push(top);
                }
                Insn::Pop => {
                    underflow(&stack, 1)?;
                    stack.pop();
                }
                Insn::Swap => {
                    underflow(&stack, 2)?;
                    let len = stack.len();
                    stack.swap(len - 1, len - 2);
                }
                Insn::Bin(op) => {
                    underflow(&stack, 2)?;
                    let rhs = stack.pop().unwrap();
                    let lhs = stack.pop().unwrap();
                    let dst = stack_reg(stack.len());
                    max_reg = max_reg.max(dst.0 + 1);
                    quads.push(Quad::Bin {
                        op: *op,
                        dst,
                        lhs,
                        rhs,
                    });
                    stack.push(Operand::Reg(dst));
                }
                Insn::Un(op) => {
                    underflow(&stack, 1)?;
                    let src = stack.pop().unwrap();
                    let dst = stack_reg(stack.len());
                    max_reg = max_reg.max(dst.0 + 1);
                    quads.push(Quad::Un { op: *op, dst, src });
                    stack.push(Operand::Reg(dst));
                }
                Insn::IfCmp(op, target) => {
                    underflow(&stack, 2)?;
                    let rhs = stack.pop().unwrap();
                    let lhs = stack.pop().unwrap();
                    flush_stack(&stack, &mut quads, nlocals, &mut max_reg);
                    let tb = qid(cfg.block_of_pc(*target));
                    quads.push(Quad::IfCmp {
                        op: *op,
                        lhs,
                        rhs,
                        target: tb,
                    });
                    succs.push(tb);
                }
                Insn::If(op, target) => {
                    underflow(&stack, 1)?;
                    let lhs = stack.pop().unwrap();
                    flush_stack(&stack, &mut quads, nlocals, &mut max_reg);
                    let tb = qid(cfg.block_of_pc(*target));
                    quads.push(Quad::IfCmp {
                        op: *op,
                        lhs,
                        rhs: Operand::IConst(0),
                        target: tb,
                    });
                    succs.push(tb);
                }
                Insn::Goto(target) => {
                    flush_stack(&stack, &mut quads, nlocals, &mut max_reg);
                    let tb = qid(cfg.block_of_pc(*target));
                    quads.push(Quad::Goto { target: tb });
                    succs.push(tb);
                }
                Insn::New(class) => {
                    let dst = stack_reg(stack.len());
                    max_reg = max_reg.max(dst.0 + 1);
                    quads.push(Quad::New { dst, class: *class });
                    stack.push(Operand::Reg(dst));
                }
                Insn::NewArray(elem) => {
                    underflow(&stack, 1)?;
                    let len = stack.pop().unwrap();
                    let dst = stack_reg(stack.len());
                    max_reg = max_reg.max(dst.0 + 1);
                    quads.push(Quad::NewArray {
                        dst,
                        elem: elem.clone(),
                        len,
                    });
                    stack.push(Operand::Reg(dst));
                }
                Insn::ArrayLoad => {
                    underflow(&stack, 2)?;
                    let idx = stack.pop().unwrap();
                    let arr = stack.pop().unwrap();
                    let dst = stack_reg(stack.len());
                    max_reg = max_reg.max(dst.0 + 1);
                    quads.push(Quad::ALoad { dst, arr, idx });
                    stack.push(Operand::Reg(dst));
                }
                Insn::ArrayStore => {
                    underflow(&stack, 3)?;
                    let val = stack.pop().unwrap();
                    let idx = stack.pop().unwrap();
                    let arr = stack.pop().unwrap();
                    quads.push(Quad::AStore { arr, idx, val });
                }
                Insn::ArrayLength => {
                    underflow(&stack, 1)?;
                    let arr = stack.pop().unwrap();
                    let dst = stack_reg(stack.len());
                    max_reg = max_reg.max(dst.0 + 1);
                    quads.push(Quad::ALen { dst, arr });
                    stack.push(Operand::Reg(dst));
                }
                Insn::GetField(fr) => {
                    underflow(&stack, 1)?;
                    let obj = stack.pop().unwrap();
                    let dst = stack_reg(stack.len());
                    max_reg = max_reg.max(dst.0 + 1);
                    quads.push(Quad::GetField {
                        dst,
                        obj,
                        field: *fr,
                    });
                    stack.push(Operand::Reg(dst));
                }
                Insn::PutField(fr) => {
                    underflow(&stack, 2)?;
                    let val = stack.pop().unwrap();
                    let obj = stack.pop().unwrap();
                    quads.push(Quad::PutField {
                        obj,
                        field: *fr,
                        val,
                    });
                }
                Insn::GetStatic(fr) => {
                    let dst = stack_reg(stack.len());
                    max_reg = max_reg.max(dst.0 + 1);
                    quads.push(Quad::GetStatic { dst, field: *fr });
                    stack.push(Operand::Reg(dst));
                }
                Insn::PutStatic(fr) => {
                    underflow(&stack, 1)?;
                    let val = stack.pop().unwrap();
                    quads.push(Quad::PutStatic { field: *fr, val });
                }
                Insn::Invoke(kind, mid) => {
                    let callee = program.method(*mid);
                    let nargs =
                        callee.params.len() + if *kind == InvokeKind::Static { 0 } else { 1 };
                    underflow(&stack, nargs)?;
                    let mut args: Vec<Operand> = stack.split_off(stack.len() - nargs);
                    // args currently receiver-first already (pushed left to right).
                    let dst = if callee.ret != Type::Void {
                        let d = stack_reg(stack.len());
                        max_reg = max_reg.max(d.0 + 1);
                        Some(d)
                    } else {
                        None
                    };
                    quads.push(Quad::Invoke {
                        kind: *kind,
                        dst,
                        method: *mid,
                        args: std::mem::take(&mut args),
                    });
                    if let Some(d) = dst {
                        stack.push(Operand::Reg(d));
                    }
                }
                Insn::Return => {
                    quads.push(Quad::Return { val: None });
                    succs.push(QuadMethod::EXIT);
                }
                Insn::ReturnValue => {
                    underflow(&stack, 1)?;
                    let v = stack.pop().unwrap();
                    quads.push(Quad::Return { val: Some(v) });
                    succs.push(QuadMethod::EXIT);
                }
            }
        }

        // Fallthrough edge.
        let last = &method.body[end - 1];
        if !last.is_terminator() && !matches!(last, Insn::ReturnValue | Insn::Return) {
            flush_stack(&stack, &mut quads, nlocals, &mut max_reg);
            if bi + 1 < cfg.block_count() {
                succs.push(qid(bi + 1));
            }
        }

        let qb = &mut blocks[qid(bi).0 as usize];
        qb.quads = quads;
        qb.succs = succs;
    }

    let mut qm = QuadMethod {
        method: method.id,
        blocks,
        reg_count: max_reg,
    };
    qm.recompute_preds();
    Ok(qm)
}

/// Flushes symbolic stack entries into their canonical per-depth registers so that
/// successor blocks can pick them up.
fn flush_stack(stack: &[Operand], quads: &mut Vec<Quad>, nlocals: u32, max_reg: &mut u32) {
    for (d, entry) in stack.iter().enumerate() {
        let canonical = Reg(nlocals + d as u32);
        if *entry != Operand::Reg(canonical) {
            quads.push(Quad::Move {
                dst: canonical,
                src: entry.clone(),
            });
            *max_reg = (*max_reg).max(canonical.0 + 1);
        }
    }
}

/// Computes the operand-stack height at entry of each bytecode basic block.
fn compute_entry_heights(
    program: &Program,
    method: &Method,
    cfg: &BytecodeCfg,
) -> Result<Vec<usize>, LowerError> {
    let mut heights: HashMap<usize, usize> = HashMap::new();
    heights.insert(0, 0);
    let mut work = vec![0usize];
    let mut out = vec![0usize; cfg.block_count()];
    while let Some(b) = work.pop() {
        let mut h = heights[&b] as isize;
        out[b] = h as usize;
        let (start, end) = cfg.ranges[b];
        for pc in start..end {
            let insn = &method.body[pc];
            h += insn.stack_delta(|m| {
                let callee = program.method(m);
                (callee.params.len(), callee.ret != Type::Void)
            });
            if h < 0 {
                return Err(LowerError::StackUnderflow {
                    method: method.id,
                    pc,
                });
            }
        }
        // For conditional branches the popped operands are already accounted; both
        // successors see the same height.
        for &s in &cfg.succs[b] {
            let hs = h as usize;
            match heights.get(&s) {
                Some(&prev) if prev != hs => {
                    return Err(LowerError::InconsistentStackHeight {
                        method: method.id,
                        block_pc: cfg.leaders[s],
                    })
                }
                Some(_) => {}
                None => {
                    heights.insert(s, hs);
                    work.push(s);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::bytecode::{BinOp, CmpOp};

    fn example_program() -> (Program, MethodId) {
        let mut pb = ProgramBuilder::new();
        let example = pb.class("Example");
        let mut m = pb.method(example, "ex", vec![Type::Int], Type::Int);
        m.iconst(4).store(1);
        let skip = m.label();
        m.load(1).iconst(2).if_cmp(CmpOp::Le, skip);
        m.load(1).iconst(1).add().store(1);
        m.place(skip);
        m.load(1).ret_val();
        let id = m.finish();
        (pb.build(), id)
    }

    #[test]
    fn lowers_figure5_example() {
        let (p, id) = example_program();
        let qm = lower_method(&p, p.method(id)).unwrap();
        // ENTRY, EXIT and at least three real blocks (cond, then, join).
        assert!(qm.blocks.len() >= 5);
        // A MOVE of constant 4 into the local register R1 must exist.
        let has_move = qm.iter_quads().any(|(_, q)| {
            matches!(q, Quad::Move { dst, src } if *dst == Reg(1) && *src == Operand::IConst(4))
        });
        assert!(has_move, "MOVE_I R1, IConst: 4 present");
        // An ADD with constant 1 must exist.
        let has_add = qm.iter_quads().any(|(_, q)| {
            matches!(q, Quad::Bin { op: BinOp::Add, rhs, .. } if *rhs == Operand::IConst(1))
        });
        assert!(has_add);
        // A RETURN with a value must exist and the exit block must have preds.
        let has_ret = qm
            .iter_quads()
            .any(|(_, q)| matches!(q, Quad::Return { val: Some(_) }));
        assert!(has_ret);
        assert!(!qm.block(QuadMethod::EXIT).preds.is_empty());
    }

    #[test]
    fn entry_block_points_at_first_real_block() {
        let (p, id) = example_program();
        let qm = lower_method(&p, p.method(id)).unwrap();
        assert_eq!(qm.block(QuadMethod::ENTRY).succs, vec![BlockId(2)]);
        assert!(qm.block(QuadMethod::ENTRY).quads.is_empty());
    }

    #[test]
    fn conditional_blocks_have_two_successors() {
        let (p, id) = example_program();
        let qm = lower_method(&p, p.method(id)).unwrap();
        let cond_block = qm
            .blocks
            .iter()
            .find(|b| b.quads.iter().any(|q| matches!(q, Quad::IfCmp { .. })))
            .expect("conditional block");
        assert_eq!(cond_block.succs.len(), 2);
    }

    #[test]
    fn invoke_lowering_passes_receiver_and_args() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        let callee = pb
            .method(c, "f", vec![Type::Int, Type::Int], Type::Int)
            .finish();
        let mut m = pb.static_method(c, "main", vec![], Type::Void);
        m.null(); // receiver placeholder
        m.iconst(1).iconst(2);
        m.invoke_virtual(callee);
        m.pop();
        m.ret();
        let main = m.finish();
        let p = pb.build();
        let qm = lower_method(&p, p.method(main)).unwrap();
        let inv = qm
            .iter_quads()
            .find_map(|(_, q)| match q {
                Quad::Invoke { args, dst, .. } => Some((args.clone(), *dst)),
                _ => None,
            })
            .expect("invoke quad");
        assert_eq!(inv.0.len(), 3); // receiver + 2 args
        assert!(inv.1.is_some()); // has a result register
    }

    #[test]
    fn empty_body_is_rejected() {
        let mut p = Program::new();
        let c = p.add_class("C", None);
        let m = p.add_method(c, "abstract_m", vec![], Type::Void, false);
        let err = lower_method(&p, p.method(m)).unwrap_err();
        assert!(matches!(err, LowerError::EmptyBody { .. }));
    }

    #[test]
    fn store_spills_aliased_stack_entries() {
        // load 0; load 0; iconst 1; add; store 0; store 1  — the second stack entry
        // aliases local 0 when it is overwritten and must be spilled first.
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        let mut m = pb.static_method(c, "f", vec![Type::Int], Type::Int);
        m.load(0).load(0).iconst(1).add().store(0);
        m.store(1);
        m.load(1).ret_val();
        let id = m.finish();
        let p = pb.build();
        let qm = lower_method(&p, p.method(id)).unwrap();
        // Find the Move into R0 (store 0). Before it, a spill Move from R0 must occur.
        let all: Vec<&Quad> = qm.iter_quads().map(|(_, q)| q).collect();
        let store0_idx = all
            .iter()
            .position(|q| matches!(q, Quad::Move { dst: Reg(0), .. }))
            .expect("store to local 0");
        let spill_before = all[..store0_idx]
            .iter()
            .any(|q| matches!(q, Quad::Move { src: Operand::Reg(Reg(0)), dst } if dst.0 != 0));
        assert!(spill_before, "aliased stack entry spilled before overwrite");
    }

    #[test]
    fn lower_program_skips_bodyless_methods() {
        let (mut p, _id) = example_program();
        let c = p.class_by_name("Example").unwrap();
        p.add_method(c, "native_m", vec![], Type::Void, false);
        let qms = lower_program(&p).unwrap();
        assert_eq!(qms.len(), 1);
    }
}
