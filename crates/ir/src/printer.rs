//! Human-readable listings of bytecode and quads.
//!
//! [`print_quads`] reproduces the layout of the paper's Figure 5:
//!
//! ```text
//! BB0 (ENTRY) (in: <none>, out: BB2)
//! BB2 (in: BB0 (ENTRY), out: BB3, BB4)
//! 1    MOVE_I R1 int, IConst: 4
//! 2    IFCMP_I IConst: 4, IConst: 2, LE, BB4
//! ...
//! ```
//!
//! [`print_bytecode`] produces a `javap`-style listing used by the Figure 8/9
//! transformation demonstrations.
//!
//! [`print_decoded`] renders what the interpreter actually executes: the decoded —
//! and, by default, fused — [`Op`] stream of a method, annotating every
//! superinstruction with the seed-instruction range it collapsed.

use std::fmt::Write as _;

use crate::bytecode::{Insn, InvokeKind};
use crate::layout::{Op, ProgramLayout, NO_SLOT};
use crate::program::{FieldRef, MethodId, Program};
use crate::quad::{BlockId, Quad, QuadMethod};

/// Formats a block id the way the paper does, tagging entry/exit.
fn block_name(id: BlockId) -> String {
    match id {
        QuadMethod::ENTRY => "BB0 (ENTRY)".to_string(),
        QuadMethod::EXIT => "BB1 (EXIT)".to_string(),
        b => format!("{b}"),
    }
}

fn block_list(ids: &[BlockId]) -> String {
    if ids.is_empty() {
        "<none>".to_string()
    } else {
        ids.iter()
            .map(|&b| block_name(b))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Renders a quad to a single line in the Figure 5 style.
pub fn format_quad(program: &Program, q: &Quad) -> String {
    match q {
        Quad::Move { dst, src } => format!("MOVE_I {dst} int, {src}"),
        Quad::Bin { op, dst, lhs, rhs } => {
            format!("{}_I {dst} int, {lhs}, {rhs}", op.mnemonic())
        }
        Quad::Un { op, dst, src } => format!("{}_I {dst} int, {src}", op.mnemonic()),
        Quad::IfCmp {
            op,
            lhs,
            rhs,
            target,
        } => format!(
            "IFCMP_I {lhs}, {rhs}, {}, {}",
            op.mnemonic(),
            block_name(*target)
        ),
        Quad::Goto { target } => format!("GOTO {}", block_name(*target)),
        Quad::New { dst, class } => format!("NEW {dst}, {}", program.class(*class).name),
        Quad::NewArray { dst, elem, len } => format!("NEWARRAY {dst}, {elem}, {len}"),
        Quad::ALoad { dst, arr, idx } => format!("ALOAD {dst}, {arr}[{idx}]"),
        Quad::AStore { arr, idx, val } => format!("ASTORE {arr}[{idx}], {val}"),
        Quad::ALen { dst, arr } => format!("ARRAYLENGTH {dst}, {arr}"),
        Quad::GetField { dst, obj, field } => {
            format!("GETFIELD {dst}, {obj}.{}", program.field(*field).name)
        }
        Quad::PutField { obj, field, val } => {
            format!("PUTFIELD {obj}.{}, {val}", program.field(*field).name)
        }
        Quad::GetStatic { dst, field } => format!(
            "GETSTATIC {dst}, {}.{}",
            program.class(field.class).name,
            program.field(*field).name
        ),
        Quad::PutStatic { field, val } => format!(
            "PUTSTATIC {}.{}, {val}",
            program.class(field.class).name,
            program.field(*field).name
        ),
        Quad::Invoke {
            kind,
            dst,
            method,
            args,
        } => {
            let m = program.method(*method);
            let cname = &program.class(m.class).name;
            let argstr = args
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let kindstr = match kind {
                InvokeKind::Virtual => "INVOKEVIRTUAL",
                InvokeKind::Static => "INVOKESTATIC",
                InvokeKind::Special => "INVOKESPECIAL",
            };
            match dst {
                Some(d) => format!("{kindstr} {d}, {cname}.{}({argstr})", m.name),
                None => format!("{kindstr} {cname}.{}({argstr})", m.name),
            }
        }
        Quad::Return { val: Some(v) } => format!("RETURN_I {v}"),
        Quad::Return { val: None } => "RETURN_V".to_string(),
    }
}

/// Renders a whole quad method in the Figure 5 listing format.
pub fn print_quads(program: &Program, qm: &QuadMethod) -> String {
    let mut out = String::new();
    let mut counter = 1usize;
    for block in &qm.blocks {
        // Skip unreachable empty helper blocks except entry/exit.
        if block.quads.is_empty()
            && block.preds.is_empty()
            && block.id != QuadMethod::ENTRY
            && block.id != QuadMethod::EXIT
        {
            continue;
        }
        let _ = writeln!(
            out,
            "{} (in: {}, out: {})",
            block_name(block.id),
            block_list(&block.preds),
            block_list(&block.succs)
        );
        for q in &block.quads {
            let _ = writeln!(out, "{counter:>4}    {}", format_quad(program, q));
            counter += 1;
        }
    }
    out
}

/// Renders a bytecode body as a numbered, `javap`-style listing (Figures 8 and 9).
pub fn print_bytecode(program: &Program, method: MethodId) -> String {
    let m = program.method(method);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// {}.{}({}) : {}",
        program.class(m.class).name,
        m.name,
        m.params
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        m.ret
    );
    for (pc, insn) in m.body.iter().enumerate() {
        let _ = writeln!(out, "{pc:>4}: {}", format_insn(program, insn));
    }
    out
}

/// Renders a single bytecode instruction.
pub fn format_insn(program: &Program, insn: &Insn) -> String {
    match insn {
        Insn::Const(c) => format!("ldc {c}"),
        Insn::Load(n) => format!("load {n}"),
        Insn::Store(n) => format!("store {n}"),
        Insn::Dup => "dup".to_string(),
        Insn::Pop => "pop".to_string(),
        Insn::Swap => "swap".to_string(),
        Insn::Bin(op) => op.mnemonic().to_lowercase(),
        Insn::Un(op) => op.mnemonic().to_lowercase(),
        Insn::IfCmp(op, t) => format!("if_cmp{} {t}", op.mnemonic().to_lowercase()),
        Insn::If(op, t) => format!("if{} {t}", op.mnemonic().to_lowercase()),
        Insn::Goto(t) => format!("goto {t}"),
        Insn::New(c) => format!("new {}", program.class(*c).name),
        Insn::NewArray(t) => format!("newarray {t}"),
        Insn::ArrayLoad => "aaload".to_string(),
        Insn::ArrayStore => "aastore".to_string(),
        Insn::ArrayLength => "arraylength".to_string(),
        Insn::GetField(f) => format!(
            "getfield {}.{}",
            program.class(f.class).name,
            program.field(*f).name
        ),
        Insn::PutField(f) => format!(
            "putfield {}.{}",
            program.class(f.class).name,
            program.field(*f).name
        ),
        Insn::GetStatic(f) => format!(
            "getstatic {}.{}",
            program.class(f.class).name,
            program.field(*f).name
        ),
        Insn::PutStatic(f) => format!(
            "putstatic {}.{}",
            program.class(f.class).name,
            program.field(*f).name
        ),
        Insn::Invoke(kind, m) => {
            let callee = program.method(*m);
            let cname = &program.class(callee.class).name;
            let k = match kind {
                InvokeKind::Virtual => "invokevirtual",
                InvokeKind::Static => "invokestatic",
                InvokeKind::Special => "invokespecial",
            };
            format!("{k} {cname}.{}:({})", callee.name, callee.params.len())
        }
        Insn::Return => "return".to_string(),
        Insn::ReturnValue => "vreturn".to_string(),
    }
}

/// Renders a method's decoded (and, with the default layout options, fused) op
/// stream, one op per line. Superinstructions are annotated with the seed pc range
/// they collapsed, read off [`crate::layout::MethodOps::src_pc`].
pub fn print_decoded(program: &Program, layout: &ProgramLayout, method: MethodId) -> String {
    let m = program.method(method);
    let mops = layout.ops(method);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// {}.{} decoded: {} ops for {} insns",
        program.class(m.class).name,
        m.name,
        mops.ops.len(),
        m.body.len()
    );
    for (pc, op) in mops.ops.iter().enumerate() {
        let width = op.fused_width();
        if width > 1 {
            let seed = mops.seed_pc(pc);
            let _ = writeln!(
                out,
                "{pc:>4}: {}  ; insns {}..={}",
                format_op(program, layout, op),
                seed,
                seed + width - 1
            );
        } else {
            let _ = writeln!(out, "{pc:>4}: {}", format_op(program, layout, op));
        }
    }
    out
}

/// Renders a single decoded op. Superinstruction mnemonics carry a suffix naming
/// their operand sources: `.l` = one local, `.ll` = two locals, `.lc` = local and
/// constant.
pub fn format_op(program: &Program, layout: &ProgramLayout, op: &Op) -> String {
    let field = |fr: &FieldRef| {
        format!(
            "{}.{}",
            program.class(fr.class).name,
            program.field(*fr).name
        )
    };
    let slot = |s: u32| {
        if s == NO_SLOT {
            "-".to_string()
        } else {
            s.to_string()
        }
    };
    match op {
        Op::ConstInt(v) => format!("const.i {v}"),
        Op::ConstFloat(v) => format!("const.f {v}"),
        Op::ConstBool(v) => format!("const.b {v}"),
        Op::ConstStr(i) => format!("const.s {:?}", &**layout.const_str(*i)),
        Op::ConstNull => "const.null".to_string(),
        Op::Load(n) => format!("load {n}"),
        Op::Store(n) => format!("store {n}"),
        Op::Dup => "dup".to_string(),
        Op::Pop => "pop".to_string(),
        Op::Swap => "swap".to_string(),
        Op::Bin(op) => op.mnemonic().to_lowercase(),
        Op::Un(op) => op.mnemonic().to_lowercase(),
        Op::IfCmp(c, t) => format!("if_cmp{} {t}", c.mnemonic().to_lowercase()),
        Op::If(c, t) => format!("if{} {t}", c.mnemonic().to_lowercase()),
        Op::Goto(t) => format!("goto {t}"),
        Op::New(c) => format!("new {}", program.class(*c).name),
        Op::NewArray(init) => format!("newarray {init:?}"),
        Op::ArrayLoad => "aaload".to_string(),
        Op::ArrayStore => "aastore".to_string(),
        Op::ArrayLength => "arraylength".to_string(),
        Op::GetField { slot: s, fr } => format!("getfield [{}] {}", slot(*s), field(fr)),
        Op::PutField { slot: s, fr } => format!("putfield [{}] {}", slot(*s), field(fr)),
        Op::GetStatic(s) => format!("getstatic [{}]", slot(*s)),
        Op::PutStatic(s) => format!("putstatic [{}]", slot(*s)),
        Op::Invoke {
            kind,
            target,
            nargs,
            push_ret,
            ..
        } => {
            let callee = program.method(*target);
            let cname = &program.class(callee.class).name;
            let k = match kind {
                InvokeKind::Virtual => "invokevirtual",
                InvokeKind::Static => "invokestatic",
                InvokeKind::Special => "invokespecial",
            };
            let ret = if *push_ret { " -> push" } else { "" };
            format!("{k} {cname}.{}:({nargs}){ret}", callee.name)
        }
        Op::Return => "return".to_string(),
        Op::ReturnValue => "vreturn".to_string(),
        Op::LoadLoadBin(a, b, op) => format!("{}.ll {a}, {b}", op.mnemonic().to_lowercase()),
        Op::LoadConstBin(n, k, op) => format!("{}.lc {n}, {k}", op.mnemonic().to_lowercase()),
        Op::BinStore(op, n) => format!("{}.store {n}", op.mnemonic().to_lowercase()),
        Op::LoadIfCmp(c, n, t) => format!("if_cmp{}.l {n}, {t}", c.mnemonic().to_lowercase()),
        Op::IfCmpFused(c, a, b, t) => {
            format!("if_cmp{}.ll {a}, {b}, {t}", c.mnemonic().to_lowercase())
        }
        Op::LoadConstIfCmp(c, n, k, t) => {
            format!("if_cmp{}.lc {n}, {k}, {t}", c.mnemonic().to_lowercase())
        }
        Op::IncLocal(n, k) => format!("inc {n}, {k}"),
        Op::LoadFieldGet { local, slot: s, fr } => {
            format!("getfield.l {local} [{}] {}", slot(*s), field(fr))
        }
        Op::PutFieldPop { slot: s, fr } => format!("putfield.pop [{}] {}", slot(*s), field(fr)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::bytecode::CmpOp;
    use crate::layout::LayoutOptions;
    use crate::lower::lower_method;
    use crate::program::Type;

    fn example() -> (Program, MethodId) {
        let mut pb = ProgramBuilder::new();
        let example = pb.class("Example");
        let mut m = pb.method(example, "ex", vec![Type::Int], Type::Int);
        m.iconst(4).store(1);
        let skip = m.label();
        m.load(1).iconst(2).if_cmp(CmpOp::Le, skip);
        m.load(1).iconst(1).add().store(1);
        m.place(skip);
        m.load(1).ret_val();
        let id = m.finish();
        (pb.build(), id)
    }

    #[test]
    fn quad_listing_mentions_entry_exit_and_opcodes() {
        let (p, id) = example();
        let qm = lower_method(&p, p.method(id)).unwrap();
        let listing = print_quads(&p, &qm);
        assert!(listing.contains("BB0 (ENTRY)"));
        assert!(listing.contains("BB1 (EXIT)"));
        assert!(listing.contains("MOVE_I"));
        assert!(listing.contains("IFCMP_I"));
        assert!(listing.contains("RETURN_I"));
        assert!(listing.contains("LE"));
    }

    #[test]
    fn bytecode_listing_is_numbered() {
        let (p, id) = example();
        let listing = print_bytecode(&p, id);
        assert!(listing.contains("0: ldc IConst: 4"));
        assert!(listing.contains("Example.ex"));
        assert!(listing.lines().count() > 5);
    }

    #[test]
    fn every_quad_formats_without_panic() {
        let (p, id) = example();
        let qm = lower_method(&p, p.method(id)).unwrap();
        for (_, q) in qm.iter_quads() {
            let s = format_quad(&p, q);
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn decoded_listing_shows_superinstructions_with_seed_ranges() {
        let (p, id) = example();
        let layout = ProgramLayout::build(&p);
        let listing = print_decoded(&p, &layout, id);
        // The example body fuses its compare-and-branch and its increment idiom.
        assert!(listing.contains("Example.ex decoded:"), "{listing}");
        assert!(listing.contains("if_cmple.lc 1, 2,"), "{listing}");
        assert!(listing.contains("inc 1, 1"), "{listing}");
        // Superinstructions are annotated with the seed insn range they collapsed.
        assert!(listing.contains("; insns 2..=4"), "{listing}");
        assert!(listing.contains("; insns 5..=8"), "{listing}");
    }

    #[test]
    fn unfused_decoded_listing_has_one_line_per_insn() {
        let (p, id) = example();
        let layout = ProgramLayout::build_with(&p, LayoutOptions { fuse: false });
        let listing = print_decoded(&p, &layout, id);
        let body_len = p.method(id).body.len();
        // Header line plus one line per decoded op, none annotated.
        assert_eq!(listing.lines().count(), body_len + 1, "{listing}");
        assert!(!listing.contains("; insns"), "{listing}");
        assert!(listing.contains("load 1"), "{listing}");
    }

    #[test]
    fn every_decoded_op_formats_without_panic() {
        let (p, id) = example();
        for opts in [LayoutOptions { fuse: true }, LayoutOptions { fuse: false }] {
            let layout = ProgramLayout::build_with(&p, opts);
            for op in &layout.ops(id).ops {
                let s = format_op(&p, &layout, op);
                assert!(!s.is_empty());
            }
        }
    }
}
