//! Assembler-style builders for constructing programs.
//!
//! [`ProgramBuilder`] plays the role of `javac` output in the paper's toolchain: the
//! workload crate uses it to express the Java Grande / SPEC-shaped benchmarks directly
//! in bytecode, and the MiniJava front-end lowers its AST through it as well.
//!
//! The [`MethodBuilder`] supports forward branches through [`Label`]s that are patched
//! when the method is finished.

use crate::bytecode::{BinOp, CmpOp, Const, Insn, InvokeKind, UnOp};
use crate::program::{ClassId, FieldRef, MethodId, Program, Type};

/// A forward-referencable jump target inside a [`MethodBuilder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builds a whole [`Program`].
#[derive(Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a class with no superclass.
    pub fn class(&mut self, name: &str) -> ClassId {
        self.program.add_class(name, None)
    }

    /// Declares a class extending `super_class`.
    pub fn class_extends(&mut self, name: &str, super_class: ClassId) -> ClassId {
        self.program.add_class(name, Some(super_class))
    }

    /// Declares an instance field.
    pub fn field(&mut self, class: ClassId, name: &str, ty: Type) -> FieldRef {
        self.program.add_field(class, name, ty, false)
    }

    /// Declares a static field.
    pub fn static_field(&mut self, class: ClassId, name: &str, ty: Type) -> FieldRef {
        self.program.add_field(class, name, ty, true)
    }

    /// Starts building an instance method.
    pub fn method(
        &mut self,
        class: ClassId,
        name: &str,
        params: Vec<Type>,
        ret: Type,
    ) -> MethodBuilder<'_> {
        let id = self.program.add_method(class, name, params, ret, false);
        MethodBuilder::new(&mut self.program, id)
    }

    /// Starts building a static method.
    pub fn static_method(
        &mut self,
        class: ClassId,
        name: &str,
        params: Vec<Type>,
        ret: Type,
    ) -> MethodBuilder<'_> {
        let id = self.program.add_method(class, name, params, ret, true);
        MethodBuilder::new(&mut self.program, id)
    }

    /// Starts building a constructor (`<init>`).
    pub fn constructor(&mut self, class: ClassId, params: Vec<Type>) -> MethodBuilder<'_> {
        let id = self
            .program
            .add_method(class, "<init>", params, Type::Void, false);
        MethodBuilder::new(&mut self.program, id)
    }

    /// Marks `main` (a previously built static method) as the program entry point.
    pub fn entry(&mut self, m: MethodId) {
        self.program.set_entry(m);
    }

    /// Read access to the program under construction (for id lookups).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Finishes and returns the program.
    pub fn build(self) -> Program {
        self.program
    }
}

/// Builds the body of a single method. Dropping the builder commits the body.
pub struct MethodBuilder<'p> {
    program: &'p mut Program,
    method: MethodId,
    insns: Vec<Insn>,
    labels: Vec<Option<usize>>,
    pending: Vec<(usize, Label)>,
    max_local: u16,
}

impl<'p> MethodBuilder<'p> {
    fn new(program: &'p mut Program, method: MethodId) -> Self {
        let max_local = program.method(method).entry_locals();
        Self {
            program,
            method,
            insns: Vec::new(),
            labels: Vec::new(),
            pending: Vec::new(),
            max_local,
        }
    }

    /// The id of the method being built.
    pub fn id(&self) -> MethodId {
        self.method
    }

    /// Current instruction index (useful for manual backward branches).
    pub fn pc(&self) -> usize {
        self.insns.len()
    }

    fn push(&mut self, i: Insn) -> &mut Self {
        self.insns.push(i);
        self
    }

    /// Creates a fresh, not-yet-placed label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Places `label` at the current pc.
    pub fn place(&mut self, label: Label) -> &mut Self {
        assert!(self.labels[label.0].is_none(), "label placed twice");
        self.labels[label.0] = Some(self.insns.len());
        self
    }

    // --- constants & locals -------------------------------------------------------

    /// Push an integer constant.
    pub fn iconst(&mut self, v: i64) -> &mut Self {
        self.push(Insn::Const(Const::Int(v)))
    }
    /// Push a float constant.
    pub fn fconst(&mut self, v: f64) -> &mut Self {
        self.push(Insn::Const(Const::Float(v)))
    }
    /// Push a boolean constant.
    pub fn bconst(&mut self, v: bool) -> &mut Self {
        self.push(Insn::Const(Const::Bool(v)))
    }
    /// Push a string constant.
    pub fn sconst(&mut self, v: &str) -> &mut Self {
        self.push(Insn::Const(Const::Str(v.to_string())))
    }
    /// Push the null reference.
    pub fn null(&mut self) -> &mut Self {
        self.push(Insn::Const(Const::Null))
    }
    /// Load local slot `n`.
    pub fn load(&mut self, n: u16) -> &mut Self {
        self.max_local = self.max_local.max(n + 1);
        self.push(Insn::Load(n))
    }
    /// Store into local slot `n`.
    pub fn store(&mut self, n: u16) -> &mut Self {
        self.max_local = self.max_local.max(n + 1);
        self.push(Insn::Store(n))
    }
    /// Duplicate top of stack.
    pub fn dup(&mut self) -> &mut Self {
        self.push(Insn::Dup)
    }
    /// Pop top of stack.
    pub fn pop(&mut self) -> &mut Self {
        self.push(Insn::Pop)
    }
    /// Swap the top two stack values.
    pub fn swap(&mut self) -> &mut Self {
        self.push(Insn::Swap)
    }

    // --- arithmetic ---------------------------------------------------------------

    /// Binary operation on the top two stack values.
    pub fn bin(&mut self, op: BinOp) -> &mut Self {
        self.push(Insn::Bin(op))
    }
    /// Addition.
    pub fn add(&mut self) -> &mut Self {
        self.bin(BinOp::Add)
    }
    /// Subtraction.
    pub fn sub(&mut self) -> &mut Self {
        self.bin(BinOp::Sub)
    }
    /// Multiplication.
    pub fn mul(&mut self) -> &mut Self {
        self.bin(BinOp::Mul)
    }
    /// Division.
    pub fn div(&mut self) -> &mut Self {
        self.bin(BinOp::Div)
    }
    /// Remainder.
    pub fn rem(&mut self) -> &mut Self {
        self.bin(BinOp::Rem)
    }
    /// Unary operation.
    pub fn un(&mut self, op: UnOp) -> &mut Self {
        self.push(Insn::Un(op))
    }

    // --- control flow -------------------------------------------------------------

    /// Unconditional jump to `label`.
    pub fn goto(&mut self, label: Label) -> &mut Self {
        self.pending.push((self.insns.len(), label));
        self.push(Insn::Goto(usize::MAX))
    }
    /// Pop two values and branch to `label` if `lhs op rhs`.
    pub fn if_cmp(&mut self, op: CmpOp, label: Label) -> &mut Self {
        self.pending.push((self.insns.len(), label));
        self.push(Insn::IfCmp(op, usize::MAX))
    }
    /// Pop one value and branch to `label` if `v op 0`.
    pub fn if_zero(&mut self, op: CmpOp, label: Label) -> &mut Self {
        self.pending.push((self.insns.len(), label));
        self.push(Insn::If(op, usize::MAX))
    }

    // --- objects, fields, arrays, calls --------------------------------------------

    /// Allocate an instance of `class` (uninitialised; follow with a `Special` invoke
    /// of the constructor, as javac does).
    pub fn new_object(&mut self, class: ClassId) -> &mut Self {
        self.push(Insn::New(class))
    }
    /// Allocate an array; the length is popped from the stack.
    pub fn new_array(&mut self, elem: Type) -> &mut Self {
        self.push(Insn::NewArray(elem))
    }
    /// Array element load.
    pub fn array_load(&mut self) -> &mut Self {
        self.push(Insn::ArrayLoad)
    }
    /// Array element store.
    pub fn array_store(&mut self) -> &mut Self {
        self.push(Insn::ArrayStore)
    }
    /// Array length.
    pub fn array_length(&mut self) -> &mut Self {
        self.push(Insn::ArrayLength)
    }
    /// Instance field read.
    pub fn get_field(&mut self, f: FieldRef) -> &mut Self {
        self.push(Insn::GetField(f))
    }
    /// Instance field write.
    pub fn put_field(&mut self, f: FieldRef) -> &mut Self {
        self.push(Insn::PutField(f))
    }
    /// Static field read.
    pub fn get_static(&mut self, f: FieldRef) -> &mut Self {
        self.push(Insn::GetStatic(f))
    }
    /// Static field write.
    pub fn put_static(&mut self, f: FieldRef) -> &mut Self {
        self.push(Insn::PutStatic(f))
    }
    /// Virtual method invocation.
    pub fn invoke_virtual(&mut self, m: MethodId) -> &mut Self {
        self.push(Insn::Invoke(InvokeKind::Virtual, m))
    }
    /// Static method invocation.
    pub fn invoke_static(&mut self, m: MethodId) -> &mut Self {
        self.push(Insn::Invoke(InvokeKind::Static, m))
    }
    /// Constructor / super invocation.
    pub fn invoke_special(&mut self, m: MethodId) -> &mut Self {
        self.push(Insn::Invoke(InvokeKind::Special, m))
    }
    /// Return with no value.
    pub fn ret(&mut self) -> &mut Self {
        self.push(Insn::Return)
    }
    /// Return the value on top of the stack.
    pub fn ret_val(&mut self) -> &mut Self {
        self.push(Insn::ReturnValue)
    }

    /// Convenience: allocate an object, push `args` via the closure, call the
    /// constructor and leave the initialised reference on the stack.
    pub fn new_with(
        &mut self,
        class: ClassId,
        ctor: MethodId,
        push_args: impl FnOnce(&mut Self),
    ) -> &mut Self {
        self.new_object(class);
        self.dup();
        push_args(self);
        self.invoke_special(ctor);
        self
    }

    /// Finishes the method: patches labels, records the local count and commits the
    /// body into the program.
    pub fn finish(mut self) -> MethodId {
        for (pc, label) in std::mem::take(&mut self.pending) {
            let target = self.labels[label.0].expect("branch to unplaced label");
            self.insns[pc].remap_targets(|_| target);
        }
        // Ensure the body terminates.
        let terminated = self
            .insns
            .last()
            .map(|i| i.is_terminator())
            .unwrap_or(false);
        if !terminated {
            let ret = self.program.method(self.method).ret.clone();
            if ret == Type::Void {
                self.insns.push(Insn::Return);
            }
        }
        let m = self.program.method_mut(self.method);
        m.locals = self.max_local;
        m.body = std::mem::take(&mut self.insns);
        self.method
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's Figure 5 `Example.ex(int b)` method.
    fn example_program() -> (Program, MethodId) {
        let mut pb = ProgramBuilder::new();
        let example = pb.class("Example");
        let mut m = pb.method(example, "ex", vec![Type::Int], Type::Int);
        // b = 4
        m.iconst(4).store(1);
        // if (b > 2) b++
        let skip = m.label();
        m.load(1).iconst(2).if_cmp(CmpOp::Le, skip);
        m.load(1).iconst(1).add().store(1);
        m.place(skip);
        m.load(1).ret_val();
        let id = m.finish();
        (pb.build(), id)
    }

    #[test]
    fn labels_are_patched() {
        let (p, id) = example_program();
        let body = &p.method(id).body;
        let target = body
            .iter()
            .find_map(|i| i.branch_target())
            .expect("has a branch");
        assert!(target < body.len());
        assert!(!body.iter().any(|i| i.branch_target() == Some(usize::MAX)));
    }

    #[test]
    fn locals_are_counted() {
        let (p, id) = example_program();
        assert_eq!(p.method(id).locals, 2); // this + b
    }

    #[test]
    fn void_methods_get_implicit_return() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        let m = pb.method(c, "nop", vec![], Type::Void).finish();
        let p = pb.build();
        assert_eq!(p.method(m).body.last(), Some(&Insn::Return));
    }

    #[test]
    fn new_with_emits_ctor_call() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        let ctor = pb.constructor(c, vec![Type::Int]).finish();
        let mut m = pb.static_method(c, "main", vec![], Type::Void);
        m.new_with(c, ctor, |m| {
            m.iconst(5);
        });
        m.pop();
        let main = m.finish();
        let p = pb.build();
        let body = &p.method(main).body;
        assert!(matches!(body[0], Insn::New(_)));
        assert!(matches!(body[1], Insn::Dup));
        assert!(matches!(body[3], Insn::Invoke(InvokeKind::Special, _)));
    }

    #[test]
    #[should_panic(expected = "branch to unplaced label")]
    fn unplaced_label_panics() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        let mut m = pb.method(c, "bad", vec![], Type::Void);
        let l = m.label();
        m.goto(l);
        m.finish();
    }
}
