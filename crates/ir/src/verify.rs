//! A structural verifier for bytecode bodies.
//!
//! The rewriting passes (communication generation in particular) transform method bodies
//! in place; the verifier gives the same guarantee the JVM verifier gives the paper's
//! system — a transformed body still "makes sense" before it is handed to the runtime:
//!
//! * all branch targets are in range,
//! * the operand stack never underflows and has consistent heights at join points,
//! * all referenced classes / methods / fields exist,
//! * the method ends on a terminator on every path.

use crate::bytecode::Insn;
use crate::cfg::BytecodeCfg;
use crate::program::{Method, MethodId, Program, Type};

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A branch points past the end of the body.
    BranchOutOfRange {
        method: MethodId,
        pc: usize,
        target: usize,
    },
    /// Operand stack underflow.
    StackUnderflow { method: MethodId, pc: usize },
    /// Two paths reach the same pc with different stack heights.
    InconsistentStack { method: MethodId, pc: usize },
    /// A referenced entity does not exist in the program.
    DanglingReference {
        method: MethodId,
        pc: usize,
        what: &'static str,
    },
    /// Execution can fall off the end of the body.
    MissingReturn { method: MethodId },
    /// The program has no entry point.
    NoEntryPoint,
    /// The entry point is not a static method.
    EntryNotStatic { method: MethodId },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::BranchOutOfRange { method, pc, target } => {
                write!(f, "{method:?}@{pc}: branch target {target} out of range")
            }
            VerifyError::StackUnderflow { method, pc } => {
                write!(f, "{method:?}@{pc}: stack underflow")
            }
            VerifyError::InconsistentStack { method, pc } => {
                write!(f, "{method:?}@{pc}: inconsistent stack heights at join")
            }
            VerifyError::DanglingReference { method, pc, what } => {
                write!(f, "{method:?}@{pc}: dangling {what} reference")
            }
            VerifyError::MissingReturn { method } => {
                write!(f, "{method:?}: execution can fall off the end of the body")
            }
            VerifyError::NoEntryPoint => write!(f, "program has no entry point"),
            VerifyError::EntryNotStatic { method } => {
                write!(f, "entry point {method:?} is not static")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a whole program: the entry point plus every method body.
pub fn verify_program(program: &Program) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    match program.entry {
        None => errors.push(VerifyError::NoEntryPoint),
        Some(e) => {
            if !program.method(e).is_static {
                errors.push(VerifyError::EntryNotStatic { method: e });
            }
        }
    }
    for m in &program.methods {
        if m.body.is_empty() {
            continue;
        }
        if let Err(mut es) = verify_method(program, m) {
            errors.append(&mut es);
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Verifies a single method body.
pub fn verify_method(program: &Program, method: &Method) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    let body = &method.body;
    let n = body.len();

    // 1. Branch targets and entity references.
    for (pc, insn) in body.iter().enumerate() {
        if let Some(t) = insn.branch_target() {
            if t >= n {
                errors.push(VerifyError::BranchOutOfRange {
                    method: method.id,
                    pc,
                    target: t,
                });
            }
        }
        let dangling = |what: &'static str| VerifyError::DanglingReference {
            method: method.id,
            pc,
            what,
        };
        match insn {
            Insn::New(c) if c.0 as usize >= program.classes.len() => {
                errors.push(dangling("class"));
            }
            Insn::GetField(f) | Insn::PutField(f) | Insn::GetStatic(f) | Insn::PutStatic(f)
                if (f.class.0 as usize >= program.classes.len()
                    || f.index as usize >= program.class(f.class).fields.len()) =>
            {
                errors.push(dangling("field"));
            }
            Insn::Invoke(_, m) if m.0 as usize >= program.methods.len() => {
                errors.push(dangling("method"));
            }
            _ => {}
        }
    }
    if !errors.is_empty() {
        return Err(errors);
    }

    // 2. Stack discipline via CFG simulation.
    let cfg = BytecodeCfg::build(body);
    let mut entry_height: Vec<Option<isize>> = vec![None; cfg.block_count()];
    if cfg.block_count() > 0 {
        entry_height[0] = Some(0);
        let mut work = vec![0usize];
        while let Some(b) = work.pop() {
            let mut h = entry_height[b].unwrap();
            let (start, end) = cfg.ranges[b];
            // `pc` is a real program counter (it appears in the diagnostics below),
            // so the index-based loop is the clearer spelling.
            #[allow(clippy::needless_range_loop)]
            for pc in start..end {
                h += body[pc].stack_delta(|m| {
                    let callee = program.method(m);
                    (callee.params.len(), callee.ret != Type::Void)
                });
                if h < 0 {
                    errors.push(VerifyError::StackUnderflow {
                        method: method.id,
                        pc,
                    });
                    return Err(errors);
                }
            }
            for &s in &cfg.succs[b] {
                match entry_height[s] {
                    Some(prev) if prev != h => {
                        errors.push(VerifyError::InconsistentStack {
                            method: method.id,
                            pc: cfg.leaders[s],
                        });
                        return Err(errors);
                    }
                    Some(_) => {}
                    None => {
                        entry_height[s] = Some(h);
                        work.push(s);
                    }
                }
            }
        }
    }

    // 3. Every reachable block either ends on a terminator or falls through to another
    //    block; the final instruction of the body must not fall off the end.
    let reach = cfg.reachable();
    for (b, &(start, end)) in cfg.ranges.iter().enumerate() {
        if !reach[b] || start == end {
            continue;
        }
        let last = &body[end - 1];
        if end == n && !last.is_terminator() {
            errors.push(VerifyError::MissingReturn { method: method.id });
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::bytecode::{CmpOp, Const};
    use crate::program::ClassId;

    #[test]
    fn valid_program_verifies() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        let mut m = pb.static_method(c, "main", vec![], Type::Void);
        m.iconst(1).iconst(2).add().pop().ret();
        let main = m.finish();
        pb.entry(main);
        let p = pb.build();
        assert!(verify_program(&p).is_ok());
    }

    #[test]
    fn missing_entry_is_reported() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        pb.static_method(c, "main", vec![], Type::Void).finish();
        let p = pb.build();
        let errs = verify_program(&p).unwrap_err();
        assert!(errs.contains(&VerifyError::NoEntryPoint));
    }

    #[test]
    fn non_static_entry_is_reported() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        let m = pb.method(c, "main", vec![], Type::Void).finish();
        pb.entry(m);
        let p = pb.build();
        let errs = verify_program(&p).unwrap_err();
        assert!(matches!(errs[0], VerifyError::EntryNotStatic { .. }));
    }

    #[test]
    fn branch_out_of_range_is_reported() {
        let mut p = Program::new();
        let c = p.add_class("C", None);
        let m = p.add_method(c, "bad", vec![], Type::Void, true);
        p.method_mut(m).body = vec![Insn::Goto(100), Insn::Return];
        let errs = verify_method(&p, p.method(m)).unwrap_err();
        assert!(matches!(
            errs[0],
            VerifyError::BranchOutOfRange { target: 100, .. }
        ));
    }

    #[test]
    fn stack_underflow_is_reported() {
        let mut p = Program::new();
        let c = p.add_class("C", None);
        let m = p.add_method(c, "bad", vec![], Type::Void, true);
        p.method_mut(m).body = vec![Insn::Pop, Insn::Return];
        let errs = verify_method(&p, p.method(m)).unwrap_err();
        assert!(matches!(errs[0], VerifyError::StackUnderflow { pc: 0, .. }));
    }

    #[test]
    fn dangling_class_reference_is_reported() {
        let mut p = Program::new();
        let c = p.add_class("C", None);
        let m = p.add_method(c, "bad", vec![], Type::Void, true);
        p.method_mut(m).body = vec![Insn::New(ClassId(99)), Insn::Pop, Insn::Return];
        let errs = verify_method(&p, p.method(m)).unwrap_err();
        assert!(matches!(
            errs[0],
            VerifyError::DanglingReference { what: "class", .. }
        ));
    }

    #[test]
    fn inconsistent_join_heights_are_reported() {
        // if (cond) push 1 else push nothing; join — heights differ.
        let mut p = Program::new();
        let c = p.add_class("C", None);
        let m = p.add_method(c, "bad", vec![], Type::Void, true);
        p.method_mut(m).body = vec![
            Insn::Const(Const::Bool(true)), // 0
            Insn::If(CmpOp::Ne, 3),         // 1: branch to 3
            Insn::Const(Const::Int(7)),     // 2: push (fallthrough path)
            Insn::Return,                   // 3: join with differing heights
        ];
        let errs = verify_method(&p, p.method(m)).unwrap_err();
        assert!(matches!(errs[0], VerifyError::InconsistentStack { .. }));
    }

    #[test]
    fn falling_off_the_end_is_reported() {
        let mut p = Program::new();
        let c = p.add_class("C", None);
        let m = p.add_method(c, "bad", vec![], Type::Void, true);
        p.method_mut(m).body = vec![Insn::Const(Const::Int(1)), Insn::Pop];
        let errs = verify_method(&p, p.method(m)).unwrap_err();
        assert!(errs.contains(&VerifyError::MissingReturn { method: m }));
    }
}
