//! The class-file-like program model.
//!
//! A [`Program`] is a collection of [`Class`]es; each class has [`Field`]s and
//! [`Method`]s. Methods carry a body expressed in the stack [`bytecode`](crate::bytecode)
//! instruction set. This mirrors what the paper's front-end obtains after decoding Java
//! class files with Joeq.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

use crate::bytecode::Insn;

/// Identifier of a class inside a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClassId(pub u32);

/// Identifier of a method inside a [`Program`] (global, not per-class).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MethodId(pub u32);

/// A reference to a field: the class that *declares* it plus the field's slot index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FieldRef {
    /// Declaring class.
    pub class: ClassId,
    /// Index into [`Class::fields`].
    pub index: u16,
}

impl fmt::Debug for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}
impl fmt::Debug for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}
impl fmt::Debug for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}.f{}", self.class, self.index)
    }
}

/// The value/reference types understood by the IR.
///
/// This is the JVM type system trimmed to what the analyses and the runtime need:
/// primitives, strings, object references and (possibly nested) arrays.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Type {
    /// 64-bit signed integer (stands in for Java's `int`/`long`).
    Int,
    /// 64-bit IEEE float (stands in for `float`/`double`).
    Float,
    /// Boolean.
    Bool,
    /// Immutable string (the analogue of `java.lang.String`).
    Str,
    /// No value; only valid as a method return type.
    Void,
    /// Reference to an instance of the given class.
    Ref(ClassId),
    /// Array with the given element type.
    Array(Box<Type>),
}

impl Type {
    /// Returns `true` for types that are object references (class instances).
    pub fn is_ref(&self) -> bool {
        matches!(self, Type::Ref(_))
    }

    /// Returns the class referred to, if this is a reference type.
    pub fn ref_class(&self) -> Option<ClassId> {
        match self {
            Type::Ref(c) => Some(*c),
            _ => None,
        }
    }

    /// A rough per-value size in bytes, used by the static resource model
    /// (memory weight of an object = sum of its field sizes).
    pub fn size_bytes(&self) -> u64 {
        match self {
            Type::Int | Type::Float => 8,
            Type::Bool => 1,
            Type::Str => 16,
            Type::Void => 0,
            Type::Ref(_) => 8,
            Type::Array(_) => 8,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Bool => write!(f, "boolean"),
            Type::Str => write!(f, "String"),
            Type::Void => write!(f, "void"),
            Type::Ref(c) => write!(f, "ref({})", c.0),
            Type::Array(t) => write!(f, "{}[]", t),
        }
    }
}

/// A field declaration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Field {
    /// Field name, unique within its declaring class.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// `true` for class (static) fields, `false` for instance fields.
    pub is_static: bool,
}

/// A method declaration together with its bytecode body.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Method {
    /// Global identifier of this method.
    pub id: MethodId,
    /// Declaring class.
    pub class: ClassId,
    /// Method name. Constructors use the conventional name `<init>`.
    pub name: String,
    /// Parameter types, *excluding* the implicit `this` for instance methods.
    pub params: Vec<Type>,
    /// Return type ([`Type::Void`] if none).
    pub ret: Type,
    /// `true` for static methods (no implicit receiver).
    pub is_static: bool,
    /// Number of local variable slots (including parameters and `this`).
    pub locals: u16,
    /// The bytecode body. Empty for abstract/native methods.
    pub body: Vec<Insn>,
}

impl Method {
    /// Number of implicit + explicit parameters (i.e. locals occupied on entry).
    pub fn entry_locals(&self) -> u16 {
        self.params.len() as u16 + if self.is_static { 0 } else { 1 }
    }

    /// Returns `true` if this method is a constructor.
    pub fn is_constructor(&self) -> bool {
        self.name == "<init>"
    }

    /// An approximate static size in bytes of the method (used for the "KB" column of
    /// Table 1): each instruction is counted as three bytes, mirroring average JVM
    /// instruction length.
    pub fn size_bytes(&self) -> u64 {
        self.body.len() as u64 * 3 + 16
    }
}

/// A class declaration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Class {
    /// Identifier of this class.
    pub id: ClassId,
    /// Fully qualified name.
    pub name: String,
    /// Superclass, if any. `None` means the class derives directly from the implicit
    /// root object class.
    pub super_class: Option<ClassId>,
    /// Declared fields (instance and static).
    pub fields: Vec<Field>,
    /// Methods declared by this class.
    pub methods: Vec<MethodId>,
    /// Marks runtime-support classes injected by the distribution rewriter (for example
    /// `rt/DependentObject`); these are ignored by the dependence analyses.
    pub is_synthetic: bool,
}

impl Class {
    /// Finds a field slot by name, searching only this class (not superclasses).
    pub fn field_index(&self, name: &str) -> Option<u16> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u16)
    }

    /// Sum of the instance field sizes, a rough per-instance memory footprint.
    pub fn instance_size_bytes(&self) -> u64 {
        16 + self
            .fields
            .iter()
            .filter(|f| !f.is_static)
            .map(|f| f.ty.size_bytes())
            .sum::<u64>()
    }
}

/// A whole program: the analogue of a set of loaded class files plus a designated
/// entry point.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Program {
    /// All classes, indexed by [`ClassId`].
    pub classes: Vec<Class>,
    /// All methods, indexed by [`MethodId`].
    pub methods: Vec<Method>,
    /// The entry point (a static method, conventionally `main`).
    pub entry: Option<MethodId>,
    name_to_class: HashMap<String, ClassId>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a class and returns its id. Panics if a class with the same name exists.
    pub fn add_class(&mut self, name: &str, super_class: Option<ClassId>) -> ClassId {
        assert!(
            !self.name_to_class.contains_key(name),
            "duplicate class {name}"
        );
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(Class {
            id,
            name: name.to_string(),
            super_class,
            fields: Vec::new(),
            methods: Vec::new(),
            is_synthetic: false,
        });
        self.name_to_class.insert(name.to_string(), id);
        id
    }

    /// Adds a field to `class` and returns a reference to it.
    pub fn add_field(&mut self, class: ClassId, name: &str, ty: Type, is_static: bool) -> FieldRef {
        let c = &mut self.classes[class.0 as usize];
        assert!(
            c.field_index(name).is_none(),
            "duplicate field {}.{}",
            c.name,
            name
        );
        c.fields.push(Field {
            name: name.to_string(),
            ty,
            is_static,
        });
        FieldRef {
            class,
            index: (c.fields.len() - 1) as u16,
        }
    }

    /// Adds a method (with an empty body) and returns its id.
    pub fn add_method(
        &mut self,
        class: ClassId,
        name: &str,
        params: Vec<Type>,
        ret: Type,
        is_static: bool,
    ) -> MethodId {
        let id = MethodId(self.methods.len() as u32);
        self.methods.push(Method {
            id,
            class,
            name: name.to_string(),
            params,
            ret,
            is_static,
            locals: 0,
            body: Vec::new(),
        });
        self.classes[class.0 as usize].methods.push(id);
        id
    }

    /// Looks up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.name_to_class.get(name).copied()
    }

    /// Accessor for a class.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.0 as usize]
    }

    /// Mutable accessor for a class.
    pub fn class_mut(&mut self, id: ClassId) -> &mut Class {
        &mut self.classes[id.0 as usize]
    }

    /// Accessor for a method.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.0 as usize]
    }

    /// Mutable accessor for a method.
    pub fn method_mut(&mut self, id: MethodId) -> &mut Method {
        &mut self.methods[id.0 as usize]
    }

    /// Accessor for a field via a [`FieldRef`].
    pub fn field(&self, fr: FieldRef) -> &Field {
        &self.classes[fr.class.0 as usize].fields[fr.index as usize]
    }

    /// Finds a field by name starting at `class` and walking up the superclass chain.
    pub fn resolve_field(&self, class: ClassId, name: &str) -> Option<FieldRef> {
        let mut cur = Some(class);
        while let Some(cid) = cur {
            let c = self.class(cid);
            if let Some(idx) = c.field_index(name) {
                return Some(FieldRef {
                    class: cid,
                    index: idx,
                });
            }
            cur = c.super_class;
        }
        None
    }

    /// Finds a method declared *directly* on `class` by name.
    pub fn find_method(&self, class: ClassId, name: &str) -> Option<MethodId> {
        self.class(class)
            .methods
            .iter()
            .copied()
            .find(|&m| self.method(m).name == name)
    }

    /// Resolves a method by name starting at `class` and walking up the superclass
    /// chain — this is the dynamic-dispatch lookup used by the interpreter and by RTA.
    pub fn resolve_method(&self, class: ClassId, name: &str) -> Option<MethodId> {
        let mut cur = Some(class);
        while let Some(cid) = cur {
            if let Some(m) = self.find_method(cid, name) {
                return Some(m);
            }
            cur = self.class(cid).super_class;
        }
        None
    }

    /// Returns `true` if `sub` equals `sup` or transitively derives from it.
    pub fn is_subclass_of(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(cid) = cur {
            if cid == sup {
                return true;
            }
            cur = self.class(cid).super_class;
        }
        false
    }

    /// All classes that are `cls` or a subclass of it.
    pub fn subclasses_of(&self, cls: ClassId) -> Vec<ClassId> {
        self.classes
            .iter()
            .filter(|c| self.is_subclass_of(c.id, cls))
            .map(|c| c.id)
            .collect()
    }

    /// Sets the program entry point.
    pub fn set_entry(&mut self, m: MethodId) {
        self.entry = Some(m);
    }

    /// Number of non-synthetic classes (the "#C" column of Table 1).
    pub fn class_count(&self) -> usize {
        self.classes.iter().filter(|c| !c.is_synthetic).count()
    }

    /// Number of methods declared by non-synthetic classes (the "#M" column of Table 1).
    pub fn method_count(&self) -> usize {
        self.methods
            .iter()
            .filter(|m| !self.class(m.class).is_synthetic)
            .count()
    }

    /// Approximate static footprint in kilobytes (the "KB" column of Table 1).
    pub fn size_kb(&self) -> u64 {
        let bytes: u64 = self
            .methods
            .iter()
            .filter(|m| !self.class(m.class).is_synthetic)
            .map(|m| m.size_bytes())
            .sum::<u64>()
            + self
                .classes
                .iter()
                .filter(|c| !c.is_synthetic)
                .map(|c| 64 + c.fields.len() as u64 * 24)
                .sum::<u64>();
        bytes.div_ceil(1024)
    }

    /// Rebuilds the name lookup table. Needed after deserialization.
    pub fn rebuild_index(&mut self) {
        self.name_to_class = self
            .classes
            .iter()
            .map(|c| (c.name.clone(), c.id))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup_class() {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        let b = p.add_class("B", Some(a));
        assert_eq!(p.class_by_name("A"), Some(a));
        assert_eq!(p.class_by_name("B"), Some(b));
        assert_eq!(p.class(b).super_class, Some(a));
        assert!(p.is_subclass_of(b, a));
        assert!(!p.is_subclass_of(a, b));
    }

    #[test]
    fn field_resolution_walks_superclasses() {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        let b = p.add_class("B", Some(a));
        let f = p.add_field(a, "x", Type::Int, false);
        assert_eq!(p.resolve_field(b, "x"), Some(f));
        assert_eq!(p.resolve_field(b, "y"), None);
    }

    #[test]
    fn method_resolution_walks_superclasses() {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        let b = p.add_class("B", Some(a));
        let m = p.add_method(a, "run", vec![], Type::Void, false);
        assert_eq!(p.resolve_method(b, "run"), Some(m));
        let m2 = p.add_method(b, "run", vec![], Type::Void, false);
        assert_eq!(p.resolve_method(b, "run"), Some(m2));
        assert_eq!(p.resolve_method(a, "run"), Some(m));
    }

    #[test]
    fn subclasses_of_includes_self() {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        let b = p.add_class("B", Some(a));
        let c = p.add_class("C", Some(b));
        let _d = p.add_class("D", None);
        let subs = p.subclasses_of(a);
        assert_eq!(subs, vec![a, b, c]);
    }

    #[test]
    fn size_accounting_ignores_synthetic_classes() {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        p.add_method(a, "m", vec![], Type::Void, true);
        let s = p.add_class("rt/DependentObject", None);
        p.class_mut(s).is_synthetic = true;
        p.add_method(s, "access", vec![], Type::Void, false);
        assert_eq!(p.class_count(), 1);
        assert_eq!(p.method_count(), 1);
    }

    #[test]
    fn duplicate_class_panics() {
        let mut p = Program::new();
        p.add_class("A", None);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.add_class("A", None);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn type_sizes_and_display() {
        assert_eq!(Type::Int.size_bytes(), 8);
        assert_eq!(Type::Bool.size_bytes(), 1);
        assert_eq!(Type::Array(Box::new(Type::Int)).to_string(), "int[]");
        assert!(Type::Ref(ClassId(0)).is_ref());
        assert_eq!(Type::Ref(ClassId(3)).ref_class(), Some(ClassId(3)));
    }
}
