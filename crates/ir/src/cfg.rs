//! Control-flow utilities over bytecode bodies.
//!
//! The dependence analyses need two things from control flow: basic-block boundaries
//! (shared with the bytecode→quad lowering) and a conservative "is this program point
//! inside a loop" predicate, which drives the paper's distinction between single-instance
//! allocation sites and `*`-prefixed summary sites ("created inside a control structure").

use std::collections::{BTreeMap, BTreeSet};

use crate::bytecode::Insn;

/// Basic-block structure of a bytecode method body.
#[derive(Clone, Debug)]
pub struct BytecodeCfg {
    /// Sorted start pcs of each block.
    pub leaders: Vec<usize>,
    /// For each block (indexed as in `leaders`), the pcs `[start, end)` it covers.
    pub ranges: Vec<(usize, usize)>,
    /// Successor block indices of each block.
    pub succs: Vec<Vec<usize>>,
    /// Predecessor block indices of each block.
    pub preds: Vec<Vec<usize>>,
}

impl BytecodeCfg {
    /// Builds the CFG of a bytecode body.
    pub fn build(body: &[Insn]) -> Self {
        let mut leader_set: BTreeSet<usize> = BTreeSet::new();
        if !body.is_empty() {
            leader_set.insert(0);
        }
        for (pc, insn) in body.iter().enumerate() {
            if let Some(t) = insn.branch_target() {
                leader_set.insert(t);
                if pc + 1 < body.len() {
                    leader_set.insert(pc + 1);
                }
            } else if insn.is_terminator() && pc + 1 < body.len() {
                leader_set.insert(pc + 1);
            }
        }
        let leaders: Vec<usize> = leader_set.into_iter().collect();
        let block_of: BTreeMap<usize, usize> =
            leaders.iter().enumerate().map(|(i, &pc)| (pc, i)).collect();
        let mut ranges = Vec::with_capacity(leaders.len());
        for (i, &start) in leaders.iter().enumerate() {
            let end = leaders.get(i + 1).copied().unwrap_or(body.len());
            ranges.push((start, end));
        }
        let mut succs = vec![Vec::new(); leaders.len()];
        for (i, &(start, end)) in ranges.iter().enumerate() {
            if start == end {
                continue;
            }
            let last = &body[end - 1];
            if let Some(t) = last.branch_target() {
                succs[i].push(block_of[&t]);
            }
            if !last.is_terminator() && end < body.len() {
                succs[i].push(block_of[&end]);
            }
            let _ = start;
        }
        let mut preds = vec![Vec::new(); leaders.len()];
        for (i, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(i);
            }
        }
        BytecodeCfg {
            leaders,
            ranges,
            succs,
            preds,
        }
    }

    /// Number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.leaders.len()
    }

    /// The block index containing `pc`.
    pub fn block_of_pc(&self, pc: usize) -> usize {
        match self.leaders.binary_search(&pc) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        }
    }

    /// Blocks reachable from the entry block (index 0).
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.block_count()];
        if self.block_count() == 0 {
            return seen;
        }
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.succs[b] {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Set of blocks that belong to at least one natural loop.
    ///
    /// Back edges are detected via a DFS from the entry block; for each back edge
    /// `n -> h` the natural loop body is collected by walking predecessors from `n`
    /// until `h` is reached.
    pub fn loop_blocks(&self) -> Vec<bool> {
        let n = self.block_count();
        let mut in_loop = vec![false; n];
        if n == 0 {
            return in_loop;
        }
        // DFS to find back edges (edge to an ancestor on the DFS stack).
        let mut color = vec![0u8; n]; // 0 = white, 1 = on stack, 2 = done
        let mut back_edges = Vec::new();
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        color[0] = 1;
        while let Some(&mut (b, ref mut idx)) = stack.last_mut() {
            if *idx < self.succs[b].len() {
                let s = self.succs[b][*idx];
                *idx += 1;
                match color[s] {
                    0 => {
                        color[s] = 1;
                        stack.push((s, 0));
                    }
                    1 => back_edges.push((b, s)),
                    _ => {}
                }
            } else {
                color[b] = 2;
                stack.pop();
            }
        }
        for (tail, head) in back_edges {
            // Natural loop of back edge tail -> head.
            let mut body = vec![false; n];
            body[head] = true;
            let mut work = vec![tail];
            while let Some(b) = work.pop() {
                if body[b] {
                    continue;
                }
                body[b] = true;
                for &p in &self.preds[b] {
                    if !body[p] {
                        work.push(p);
                    }
                }
            }
            for (i, &inb) in body.iter().enumerate() {
                if inb {
                    in_loop[i] = true;
                }
            }
        }
        in_loop
    }

    /// Returns `true` if the instruction at `pc` sits inside a loop.
    pub fn pc_in_loop(&self, pc: usize) -> bool {
        let loops = self.loop_blocks();
        loops.get(self.block_of_pc(pc)).copied().unwrap_or(false)
    }
}

/// Convenience: the set of pcs of a body that are inside loops (used to classify
/// allocation sites as summary `*` sites).
pub fn loop_pcs(body: &[Insn]) -> Vec<bool> {
    let cfg = BytecodeCfg::build(body);
    let loops = cfg.loop_blocks();
    let mut out = vec![false; body.len()];
    for (b, &(start, end)) in cfg.ranges.iter().enumerate() {
        if loops[b] {
            for slot in out.iter_mut().take(end).skip(start) {
                *slot = true;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{CmpOp, Const};

    /// while (i < 10) { i = i + 1 }  — a single natural loop.
    fn loop_body() -> Vec<Insn> {
        vec![
            Insn::Const(Const::Int(0)),             // 0
            Insn::Store(0),                         // 1
            Insn::Load(0),                          // 2  <- loop header
            Insn::Const(Const::Int(10)),            // 3
            Insn::IfCmp(CmpOp::Ge, 9),              // 4
            Insn::Load(0),                          // 5
            Insn::Const(Const::Int(1)),             // 6
            Insn::Bin(crate::bytecode::BinOp::Add), // 7
            Insn::Store(0),                         // 8 ... falls to 9? no: loop back
            Insn::Return,                           // 9
        ]
    }

    /// Same loop but with an explicit back edge.
    fn real_loop_body() -> Vec<Insn> {
        vec![
            Insn::Const(Const::Int(0)),             // 0
            Insn::Store(0),                         // 1
            Insn::Load(0),                          // 2  header
            Insn::Const(Const::Int(10)),            // 3
            Insn::IfCmp(CmpOp::Ge, 10),             // 4
            Insn::Load(0),                          // 5
            Insn::Const(Const::Int(1)),             // 6
            Insn::Bin(crate::bytecode::BinOp::Add), // 7
            Insn::Store(0),                         // 8
            Insn::Goto(2),                          // 9  back edge
            Insn::Return,                           // 10
        ]
    }

    #[test]
    fn straight_line_has_one_block() {
        let body = vec![Insn::Const(Const::Int(1)), Insn::Store(0), Insn::Return];
        let cfg = BytecodeCfg::build(&body);
        assert_eq!(cfg.block_count(), 1);
        assert!(cfg.succs[0].is_empty());
        assert!(!cfg.loop_blocks().iter().any(|&b| b));
    }

    #[test]
    fn branch_splits_blocks() {
        let cfg = BytecodeCfg::build(&loop_body());
        assert!(cfg.block_count() >= 3);
        let reach = cfg.reachable();
        assert!(reach.iter().all(|&r| r));
    }

    #[test]
    fn back_edge_forms_loop() {
        let body = real_loop_body();
        let cfg = BytecodeCfg::build(&body);
        let loops = cfg.loop_blocks();
        assert!(loops.iter().any(|&b| b), "loop detected");
        // the increment at pc 7 is inside the loop, the return at pc 10 is not.
        assert!(cfg.pc_in_loop(7));
        assert!(!cfg.pc_in_loop(10));
        let pcs = loop_pcs(&body);
        assert!(pcs[5] && pcs[9]);
        assert!(!pcs[10]);
    }

    #[test]
    fn block_of_pc_matches_ranges() {
        let body = real_loop_body();
        let cfg = BytecodeCfg::build(&body);
        for (b, &(s, e)) in cfg.ranges.iter().enumerate() {
            for pc in s..e {
                assert_eq!(cfg.block_of_pc(pc), b);
            }
        }
    }

    #[test]
    fn empty_body() {
        let cfg = BytecodeCfg::build(&[]);
        assert_eq!(cfg.block_count(), 0);
        assert!(cfg.reachable().is_empty());
    }
}
