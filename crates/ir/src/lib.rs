//! # autodist-ir
//!
//! The program representation substrate for the automatic-distribution pipeline.
//!
//! The paper (Diaconescu et al., IPPS 2005) consumes Java bytecode through the Joeq
//! front-end and works on two intermediate representations: a stack-machine *bytecode*
//! IR and a register-style *quad* IR. This crate provides the equivalent substrate,
//! built from scratch:
//!
//! * [`program`] — the class-file-like program model: classes, fields, methods, types.
//! * [`bytecode`] — a JVM-flavoured stack instruction set ([`bytecode::Insn`]).
//! * [`quad`] — the register-based quadruple IR organised into basic blocks.
//! * [`lower`] — translation from bytecode to quads by abstract interpretation of the
//!   operand stack (the paper's "Bytecode to Quad" box in Figure 1).
//! * [`builder`] — an assembler-style API for constructing programs (used by the
//!   workload crate, playing the role of `javac` output).
//! * [`frontend`] — a small MiniJava-like source language front-end so that programs
//!   such as the paper's Bank/Account example (Figure 2) can be written as source text.
//! * [`cfg`] — control-flow graph utilities over bytecode (leaders, back edges, loops).
//! * [`layout`] — the load-time interning pass: dense field slots, static slots,
//!   selector-indexed vtables, and the pre-decoded compact op format
//!   ([`layout::Op`]) the interpreter's dispatch loop executes.
//! * [`printer`] — human-readable listings of bytecode and quads (Figure 5 style).
//! * [`verify`] — a structural verifier for methods (stack discipline, branch targets).

pub mod builder;
pub mod bytecode;
pub mod cfg;
pub mod frontend;
pub mod layout;
pub mod lower;
pub mod printer;
pub mod program;
pub mod quad;
pub mod verify;

pub use builder::{MethodBuilder, ProgramBuilder};
pub use bytecode::{BinOp, CmpOp, Const, Insn, InvokeKind, UnOp};
pub use layout::{ArrayInit, ClassLayout, MethodOps, Op, ProgramLayout, NO_SLOT};
pub use program::{Class, ClassId, Field, FieldRef, Method, MethodId, Program, Type};
pub use quad::{BlockId, Operand, Quad, QuadMethod, Reg};
