//! Program-load-time interning: field slot layouts, static slots and dispatch tables.
//!
//! The interpreter originally resolved every field access by cloning the field name and
//! probing a per-object `BTreeMap<String, Value>`, and every virtual call by walking the
//! superclass chain comparing method-name strings. [`ProgramLayout`] is the resolution
//! pass that removes both costs: it is computed once per [`Program`] and maps
//!
//! * every instance [`FieldRef`] to a dense **slot index** into a flat per-object value
//!   vector (superclass fields occupy a shared prefix, so a field declared in class `D`
//!   has the same slot in every subclass of `D`),
//! * every static [`FieldRef`] to a global **static slot** (statics are replicated per
//!   node, so one dense vector per interpreter suffices),
//! * every method name to a **selector** and every class to a selector-indexed
//!   **vtable**, replacing the name-based superclass walk of dynamic dispatch.
//!
//! Name-keyed lookups remain available (`slot_of_name`, `static_slot_names`) for the
//! wire format, `statics_snapshot` and diagnostics — the boundaries where names are the
//! protocol — but the interpret loop itself only ever uses the dense indices.
//!
//! Field-name shadowing note: the previous map-based heap stored one entry per *name*,
//! so a subclass redeclaring a superclass field aliased it. The layout reproduces that
//! behaviour by assigning the shadowing declaration the same slot as the shadowed one.
//!
//! On top of the interning tables, `build` runs a **decode pass** over every method
//! body: each [`crate::bytecode::Insn`] becomes exactly one dense [`Op`] with its
//! name-carrying payloads resolved up front — instance/static field slots, invoke
//! argument counts and selectors, interned constant-pool indices for string literals,
//! and `u32` branch targets. The interpreter's dispatch loop runs over `Op`s and never
//! touches a string or a resolution table; the original [`FieldRef`]s survive inside
//! the ops only for the proxy/remote slow paths, where the *name* is the wire protocol.
//!
//! After decoding, a **fusion pass** (on by default, toggled by
//! [`LayoutOptions::fuse`]) rewrites each op stream, collapsing the dominant
//! pairs/triples the frontend emits — local/local and local/constant arithmetic,
//! compare-and-branch heads of loops and `if`s, the `i = i + K` increment idiom, and
//! implicit-`this` field reads — into superinstructions that read locals directly
//! instead of round-tripping the operand stack. A fusion window never spans a branch
//! target (a branch landing mid-pattern blocks fusion), branch targets are remapped
//! onto the shortened stream, and [`MethodOps::src_pc`] maps every fused pc back to
//! the seed pc so fault coordinates stay identical to the unfused stream. Each
//! superinstruction is *accounted* as its constituent seed ops: the interpreter
//! charges [`Op::fused_width`] virtual-clock ticks and instruction counts for it, so
//! virtual time is bit-identical with fusion on or off.

use std::collections::HashMap;
use std::sync::Arc;

use crate::bytecode::{BinOp, CmpOp, Const, Insn, InvokeKind, UnOp};
use crate::program::{ClassId, FieldRef, MethodId, Program, Type};

/// Sentinel for "no method bound to this selector" inside the vtables.
const NO_METHOD: u32 = u32::MAX;

/// Sentinel slot for field references that do not resolve (e.g. a `GetField` naming a
/// static). The interpreter treats it as "no such slot", reproducing the pre-decode
/// `Option` semantics (reads yield null, writes are dropped).
pub const NO_SLOT: u32 = u32::MAX;

/// Per-element-type default used by `NewArray` (Java-style zero initialisation),
/// pre-computed so the interpreter does not match on [`Type`] in the hot loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrayInit {
    /// Elements default to `0`.
    Int,
    /// Elements default to `0.0`.
    Float,
    /// Elements default to `false`.
    Bool,
    /// Elements default to `null` (references, strings, nested arrays).
    Null,
}

impl ArrayInit {
    /// The default-value class of an array element type.
    pub fn of(ty: &Type) -> ArrayInit {
        match ty {
            Type::Int => ArrayInit::Int,
            Type::Float => ArrayInit::Float,
            Type::Bool => ArrayInit::Bool,
            _ => ArrayInit::Null,
        }
    }
}

/// One pre-decoded instruction of the compact op format the interpreter executes.
///
/// The decode pass produces ops in 1:1 correspondence with the [`Insn`]s of the
/// method body (so branch targets carry over unchanged, as `u32`), but every
/// name-carrying payload is already resolved: field accesses carry their dense slot,
/// invokes carry the argument count, the callee selector and whether the call site
/// expects a pushed result, and string constants are indices into the shared constant
/// pool ([`ProgramLayout::const_strs`]).
///
/// The fusion pass then optionally collapses hot sequences into the superinstruction
/// variants grouped at the end of the enum ([`Op::IncLocal`] and friends); after
/// fusion, one op stands for [`Op::fused_width`] seed instructions and branch targets
/// index the shortened stream.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Push an integer constant.
    ConstInt(i64),
    /// Push a float constant.
    ConstFloat(f64),
    /// Push a boolean constant.
    ConstBool(bool),
    /// Push an interned string constant (index into the program's constant pool).
    ConstStr(u32),
    /// Push null.
    ConstNull,
    /// Push local slot `n`.
    Load(u16),
    /// Pop into local slot `n`.
    Store(u16),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the two topmost stack values.
    Swap,
    /// Pop two values, push `lhs op rhs`.
    Bin(BinOp),
    /// Pop one value, push `op value`.
    Un(UnOp),
    /// Pop `rhs`, `lhs`; branch to `target` if `lhs op rhs`.
    IfCmp(CmpOp, u32),
    /// Pop `v`; branch to `target` if `v op 0` (for refs: `Eq` = is-null).
    If(CmpOp, u32),
    /// Unconditional branch.
    Goto(u32),
    /// Allocate an uninitialised instance and push the reference.
    New(ClassId),
    /// Pop a length, allocate an array zero-filled per `ArrayInit`, push the reference.
    NewArray(ArrayInit),
    /// Pop index and array reference, push the element.
    ArrayLoad,
    /// Pop value, index and array reference, store the element.
    ArrayStore,
    /// Pop an array reference, push its length.
    ArrayLength,
    /// Pop an object reference, push the field at `slot`. `fr` survives only for the
    /// proxy/remote slow path, where the field *name* travels on the wire.
    GetField {
        /// Pre-resolved dense instance slot ([`NO_SLOT`] if unresolvable).
        slot: u32,
        /// The original field reference (slow paths + diagnostics).
        fr: FieldRef,
    },
    /// Pop a value and an object reference, store into the field at `slot`.
    PutField {
        /// Pre-resolved dense instance slot ([`NO_SLOT`] if unresolvable).
        slot: u32,
        /// The original field reference (slow paths + diagnostics).
        fr: FieldRef,
    },
    /// Push the static at the pre-resolved global slot ([`NO_SLOT`] pushes null).
    GetStatic(u32),
    /// Pop into the static at the global slot ([`NO_SLOT`] drops the value).
    PutStatic(u32),
    /// Invoke a method. All signature-derived facts are pre-decoded: `nargs` counts
    /// the receiver for non-static kinds, `sel` is the callee's selector for vtable
    /// dispatch, and `push_ret` says whether the call site expects a pushed result
    /// (derived from the *static* target, exactly like the pre-decode interpreter).
    Invoke {
        /// Dispatch kind.
        kind: InvokeKind,
        /// Static target method.
        target: MethodId,
        /// Pre-resolved selector of the target (vtable column).
        sel: u32,
        /// Stack values consumed (receiver included for non-static kinds).
        nargs: u16,
        /// Whether the result is pushed (static target returns non-void).
        push_ret: bool,
    },
    /// Return with no value.
    Return,
    /// Pop a value and return it.
    ReturnValue,

    // --- Superinstructions (produced only by the fusion pass, never by decode) ---
    /// `Load a; Load b; Bin op` — push `locals[a] op locals[b]`, no stack traffic
    /// for the operands.
    LoadLoadBin(u16, u16, BinOp),
    /// `Load n; ConstInt k; Bin op` — push `locals[n] op k`.
    LoadConstBin(u16, i64, BinOp),
    /// `Bin op; Store n` — pop `rhs`, `lhs`; store `lhs op rhs` into local `n`.
    BinStore(BinOp, u16),
    /// `Load n; IfCmp op t` — pop `lhs`; branch to `t` if `lhs op locals[n]`.
    LoadIfCmp(CmpOp, u16, u32),
    /// `Load a; Load b; IfCmp op t` — branch to `t` if `locals[a] op locals[b]`,
    /// no stack traffic at all (the dominant loop/`if` head shape).
    IfCmpFused(CmpOp, u16, u16, u32),
    /// `Load n; ConstInt k; IfCmp op t` — branch to `t` if `locals[n] op k` (the
    /// `while (i < LITERAL)` head shape).
    LoadConstIfCmp(CmpOp, u16, i64, u32),
    /// `Load n; ConstInt k; Bin Add; Store n` — `locals[n] += k`, the frontend's
    /// lowering of `i = i + K`.
    IncLocal(u16, i64),
    /// `Load n; GetField` — push the field at `slot` of the object in local `n`
    /// (implicit-`this` field reads load local 0).
    LoadFieldGet {
        /// Local holding the object reference.
        local: u16,
        /// Pre-resolved dense instance slot ([`NO_SLOT`] if unresolvable).
        slot: u32,
        /// The original field reference (slow paths + diagnostics).
        fr: FieldRef,
    },
    /// `PutField; Pop` — pop value and object reference, store the field, then pop
    /// one more stack value.
    PutFieldPop {
        /// Pre-resolved dense instance slot ([`NO_SLOT`] if unresolvable).
        slot: u32,
        /// The original field reference (slow paths + diagnostics).
        fr: FieldRef,
    },
}

impl Op {
    /// How many seed instructions this op stands for: 1 for every decoded op,
    /// the collapsed sequence length for superinstructions. The interpreter charges
    /// exactly this many virtual-clock ticks and instruction counts per execution,
    /// which is what keeps virtual time bit-identical with fusion on or off.
    #[inline]
    pub fn fused_width(&self) -> u32 {
        match self {
            Op::IncLocal(..) => 4,
            Op::LoadLoadBin(..)
            | Op::LoadConstBin(..)
            | Op::IfCmpFused(..)
            | Op::LoadConstIfCmp(..) => 3,
            Op::BinStore(..)
            | Op::LoadIfCmp(..)
            | Op::LoadFieldGet { .. }
            | Op::PutFieldPop { .. } => 2,
            _ => 1,
        }
    }
}

/// The decoded body of one method (empty iff the bytecode body is empty, i.e. the
/// method is abstract/intrinsic) plus the frame facts the interpreter needs to set up
/// an activation without consulting the [`Program`].
#[derive(Clone, Debug, Default)]
pub struct MethodOps {
    /// The decoded (and, by default, fused) ops of the method body.
    pub ops: Vec<Op>,
    /// Fused pc → seed pc of the first collapsed instruction. Empty when the stream
    /// is 1:1 with the bytecode (fusion off, or nothing fused in this method), in
    /// which case the mapping is the identity. Faults report seed coordinates
    /// through this map, so diagnostics are stable under fusion.
    pub src_pc: Vec<u32>,
    /// Local variable slots (including parameters and `this`).
    pub locals: u16,
}

impl MethodOps {
    /// Seed-bytecode pc of the instruction at fused pc `pc` (identity when the
    /// stream was not shortened).
    #[inline]
    pub fn seed_pc(&self, pc: usize) -> u32 {
        match self.src_pc.get(pc) {
            Some(&s) => s,
            None => pc as u32,
        }
    }
}

/// Knobs for [`ProgramLayout::build_with`]. `Default` is what the runtime uses:
/// fusion on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayoutOptions {
    /// Run the superinstruction fusion pass over every decoded method body.
    /// Off yields the 1:1 decode (used by benches to A/B dispatch cost and by the
    /// parity test suite).
    pub fuse: bool,
}

impl Default for LayoutOptions {
    fn default() -> Self {
        LayoutOptions { fuse: true }
    }
}

/// The field layout and dispatch table of one class.
#[derive(Clone, Debug, Default)]
pub struct ClassLayout {
    /// Canonical field name per slot (inherited slots first).
    pub slot_names: Vec<String>,
    /// Declared type per slot (under shadowing the most-derived declaration's
    /// type wins, matching the old subclass-first default initialisation).
    pub slot_types: Vec<Type>,
    /// Slot index per entry of this class's own `Class::fields` (None for statics).
    field_slot: Vec<Option<u32>>,
    /// Global static slot per entry of this class's own `Class::fields` (None for
    /// instance fields).
    static_slot: Vec<Option<u32>>,
    /// Name → slot, for the wire boundary (remote field accesses travel by name).
    name_to_slot: HashMap<String, u32>,
    /// Selector-indexed dispatch table (`NO_METHOD` where unbound).
    vtable: Vec<u32>,
}

impl ClassLayout {
    /// Number of instance-field slots (including inherited ones).
    pub fn slot_count(&self) -> usize {
        self.slot_names.len()
    }
}

/// The interning tables for a whole program. Built once with [`ProgramLayout::build`];
/// the program must not be mutated afterwards (the interpreter builds it at load time,
/// after all rewriting has happened).
#[derive(Clone, Debug, Default)]
pub struct ProgramLayout {
    /// Per-class layouts, indexed by [`ClassId`].
    pub classes: Vec<ClassLayout>,
    /// Global static slot → `Class::field` key (the `statics_snapshot` wire names).
    pub static_names: Vec<String>,
    /// Global static slot → declared type (for Java-style default initialisation).
    pub static_types: Vec<Type>,
    /// Selector per [`MethodId`] (methods with the same name share a selector).
    selectors: Vec<u32>,
    /// Interned method names, indexed by [`MethodId`]. Cold error paths (unknown
    /// method) carry one of these `Arc`s instead of cloning the `String`.
    method_names: Vec<Arc<str>>,
    /// Total number of selectors (vtable width).
    pub selector_count: usize,
    /// Pre-decoded op bodies, indexed by [`MethodId`].
    pub method_ops: Vec<MethodOps>,
    /// Interned string constants referenced by [`Op::ConstStr`], deduplicated across
    /// the whole program (one allocation per distinct literal, cloned by refcount).
    pub const_strs: Vec<Arc<str>>,
    /// Stable structural hash of the *shape* tables — class names and superclass
    /// links, field names/types/staticness, method names/signatures and declaring
    /// classes — but **not** method bodies or local counts. Per-node program
    /// rewrites only touch bodies, so every node of a placement computes the same
    /// fingerprint; two layouts agreeing on it assign identical class ids, field
    /// slots and selectors, which is what licenses the slot-addressed wire frames.
    fingerprint: u64,
}

impl ProgramLayout {
    /// Runs the resolution pass over `program` with the default options (fusion on).
    pub fn build(program: &Program) -> ProgramLayout {
        Self::build_with(program, LayoutOptions::default())
    }

    /// Runs the resolution pass over `program`.
    pub fn build_with(program: &Program, opts: LayoutOptions) -> ProgramLayout {
        // Selectors: one per distinct method name.
        let mut selector_of_name: HashMap<&str, u32> = HashMap::new();
        let mut selectors = Vec::with_capacity(program.methods.len());
        for m in &program.methods {
            let next = selector_of_name.len() as u32;
            let sel = *selector_of_name.entry(m.name.as_str()).or_insert(next);
            selectors.push(sel);
        }
        let selector_count = selector_of_name.len();
        let method_names: Vec<Arc<str>> = program
            .methods
            .iter()
            .map(|m| Arc::from(m.name.as_str()))
            .collect();

        let mut classes: Vec<ClassLayout> = (0..program.classes.len())
            .map(|_| ClassLayout::default())
            .collect();
        let mut static_names = Vec::new();
        let mut static_types = Vec::new();
        let mut static_of_field: HashMap<(ClassId, u16), u32> = HashMap::new();

        // Static slots are assigned in (class, field) declaration order so the
        // snapshot keys come out deterministic.
        for class in &program.classes {
            for (idx, f) in class.fields.iter().enumerate() {
                if f.is_static {
                    let slot = static_names.len() as u32;
                    static_names.push(format!("{}::{}", class.name, f.name));
                    static_types.push(f.ty.clone());
                    static_of_field.insert((class.id, idx as u16), slot);
                }
            }
        }

        for class in &program.classes {
            // Root-first superclass chain: inherited fields occupy a shared prefix, so
            // a FieldRef resolves to the same slot in the declaring class and every
            // subclass.
            let mut chain = Vec::new();
            let mut cur = Some(class.id);
            while let Some(cid) = cur {
                chain.push(cid);
                cur = program.class(cid).super_class;
            }
            chain.reverse();

            let layout = &mut classes[class.id.0 as usize];
            for &cid in &chain {
                let c = program.class(cid);
                let record_own = cid == class.id;
                for (idx, f) in c.fields.iter().enumerate() {
                    if f.is_static {
                        if record_own {
                            layout.field_slot.push(None);
                            layout
                                .static_slot
                                .push(static_of_field.get(&(cid, idx as u16)).copied());
                        }
                        continue;
                    }
                    let slot = match layout.name_to_slot.get(f.name.as_str()) {
                        Some(&s) => {
                            // Shadowed: alias the inherited slot. The most-derived
                            // declaration's type wins (the map-based heap defaulted
                            // fields subclass-first), so overwrite the slot type.
                            layout.slot_types[s as usize] = f.ty.clone();
                            s
                        }
                        None => {
                            let s = layout.slot_names.len() as u32;
                            layout.slot_names.push(f.name.clone());
                            layout.slot_types.push(f.ty.clone());
                            layout.name_to_slot.insert(f.name.clone(), s);
                            s
                        }
                    };
                    if record_own {
                        layout.field_slot.push(Some(slot));
                        layout.static_slot.push(None);
                    }
                }
            }

            // Vtable: walk the chain root-first so subclass declarations overwrite
            // inherited bindings, reproducing `Program::resolve_method`.
            let mut vtable = vec![NO_METHOD; selector_count];
            for &cid in &chain {
                for &mid in &program.class(cid).methods {
                    vtable[selectors[mid.0 as usize] as usize] = mid.0;
                }
            }
            classes[class.id.0 as usize].vtable = vtable;
        }

        let mut layout = ProgramLayout {
            classes,
            static_names,
            static_types,
            selectors,
            method_names,
            selector_count,
            method_ops: Vec::new(),
            const_strs: Vec::new(),
            fingerprint: shape_fingerprint(program),
        };

        // Decode pass: every Insn body becomes a dense op body against the freshly
        // built resolution tables, interning string constants as it goes.
        let mut pool: HashMap<String, u32> = HashMap::new();
        let method_ops: Vec<MethodOps> = program
            .methods
            .iter()
            .map(|m| {
                let decoded: Vec<Op> = m
                    .body
                    .iter()
                    .map(|insn| layout.decode_insn(program, insn, &mut pool))
                    .collect();
                let (ops, src_pc) = if opts.fuse {
                    fuse_ops(decoded)
                } else {
                    (decoded, Vec::new())
                };
                MethodOps {
                    ops,
                    src_pc,
                    locals: m.locals,
                }
            })
            .collect();
        layout.method_ops = method_ops;
        layout
    }

    /// Decodes one instruction against the built tables. Infallible by construction:
    /// every [`Insn`] maps to exactly one [`Op`], with unresolvable field references
    /// carrying [`NO_SLOT`] (reproducing the pre-decode `Option` semantics).
    fn decode_insn(
        &mut self,
        program: &Program,
        insn: &Insn,
        pool: &mut HashMap<String, u32>,
    ) -> Op {
        match insn {
            Insn::Const(Const::Int(v)) => Op::ConstInt(*v),
            Insn::Const(Const::Float(v)) => Op::ConstFloat(*v),
            Insn::Const(Const::Bool(v)) => Op::ConstBool(*v),
            Insn::Const(Const::Null) => Op::ConstNull,
            Insn::Const(Const::Str(s)) => {
                let idx = match pool.get(s) {
                    Some(&i) => i,
                    None => {
                        let i = self.const_strs.len() as u32;
                        self.const_strs.push(Arc::from(s.as_str()));
                        pool.insert(s.clone(), i);
                        i
                    }
                };
                Op::ConstStr(idx)
            }
            Insn::Load(n) => Op::Load(*n),
            Insn::Store(n) => Op::Store(*n),
            Insn::Dup => Op::Dup,
            Insn::Pop => Op::Pop,
            Insn::Swap => Op::Swap,
            Insn::Bin(op) => Op::Bin(*op),
            Insn::Un(op) => Op::Un(*op),
            Insn::IfCmp(op, t) => Op::IfCmp(*op, *t as u32),
            Insn::If(op, t) => Op::If(*op, *t as u32),
            Insn::Goto(t) => Op::Goto(*t as u32),
            Insn::New(c) => Op::New(*c),
            Insn::NewArray(ty) => Op::NewArray(ArrayInit::of(ty)),
            Insn::ArrayLoad => Op::ArrayLoad,
            Insn::ArrayStore => Op::ArrayStore,
            Insn::ArrayLength => Op::ArrayLength,
            Insn::GetField(fr) => Op::GetField {
                slot: self.field_slot(*fr).unwrap_or(NO_SLOT),
                fr: *fr,
            },
            Insn::PutField(fr) => Op::PutField {
                slot: self.field_slot(*fr).unwrap_or(NO_SLOT),
                fr: *fr,
            },
            Insn::GetStatic(fr) => Op::GetStatic(self.static_slot(*fr).unwrap_or(NO_SLOT)),
            Insn::PutStatic(fr) => Op::PutStatic(self.static_slot(*fr).unwrap_or(NO_SLOT)),
            Insn::Invoke(kind, target) => {
                let callee = program.method(*target);
                let receiver = usize::from(*kind != InvokeKind::Static);
                Op::Invoke {
                    kind: *kind,
                    target: *target,
                    sel: self.selectors[target.0 as usize],
                    nargs: (callee.params.len() + receiver) as u16,
                    push_ret: callee.ret != Type::Void,
                }
            }
            Insn::Return => Op::Return,
            Insn::ReturnValue => Op::ReturnValue,
        }
    }

    /// Dense slot of an instance field reference, valid for objects of the declaring
    /// class and all its subclasses. `None` if `fr` names a static field.
    #[inline]
    pub fn field_slot(&self, fr: FieldRef) -> Option<u32> {
        self.classes[fr.class.0 as usize]
            .field_slot
            .get(fr.index as usize)
            .copied()
            .flatten()
    }

    /// Global static slot of a static field reference.
    #[inline]
    pub fn static_slot(&self, fr: FieldRef) -> Option<u32> {
        self.classes[fr.class.0 as usize]
            .static_slot
            .get(fr.index as usize)
            .copied()
            .flatten()
    }

    /// Resolves a field *name* against the layout of `class` (the wire boundary path:
    /// remote `DEPENDENCE` messages carry names).
    pub fn slot_of_name(&self, class: ClassId, name: &str) -> Option<u32> {
        self.classes[class.0 as usize]
            .name_to_slot
            .get(name)
            .copied()
    }

    /// The canonical name of `slot` in `class` (diagnostics).
    pub fn slot_name(&self, class: ClassId, slot: u32) -> Option<&str> {
        self.classes[class.0 as usize]
            .slot_names
            .get(slot as usize)
            .map(|s| s.as_str())
    }

    /// Selector assigned to `method`'s name.
    #[inline]
    pub fn selector(&self, method: MethodId) -> u32 {
        self.selectors[method.0 as usize]
    }

    /// The interned name of `method`: cloning the returned `Arc` is a refcount bump,
    /// not a string copy.
    #[inline]
    pub fn method_name(&self, method: MethodId) -> &Arc<str> {
        &self.method_names[method.0 as usize]
    }

    /// Virtual dispatch: the method bound in `class`'s vtable for `target`'s selector.
    /// This is the interned equivalent of `Program::resolve_method(class, name)`.
    #[inline]
    pub fn resolve_virtual(&self, class: ClassId, target: MethodId) -> Option<MethodId> {
        let sel = self.selectors[target.0 as usize] as usize;
        match self.classes[class.0 as usize].vtable.get(sel) {
            Some(&m) if m != NO_METHOD => Some(MethodId(m)),
            _ => None,
        }
    }

    /// Virtual dispatch by pre-decoded selector: the method bound in `class`'s vtable
    /// column `sel`. This is what [`Op::Invoke`] uses — one array index, no probe of
    /// the per-method selector table.
    #[inline]
    pub fn resolve_selector(&self, class: ClassId, sel: u32) -> Option<MethodId> {
        match self.classes[class.0 as usize].vtable.get(sel as usize) {
            Some(&m) if m != NO_METHOD => Some(MethodId(m)),
            _ => None,
        }
    }

    /// The pre-decoded body of `method` (`ops` empty iff the bytecode body is empty).
    #[inline]
    pub fn ops(&self, method: MethodId) -> &MethodOps {
        &self.method_ops[method.0 as usize]
    }

    /// An interned string constant by pool index.
    #[inline]
    pub fn const_str(&self, idx: u32) -> &Arc<str> {
        &self.const_strs[idx as usize]
    }

    /// Number of instance-field slots of `class`.
    #[inline]
    pub fn slot_count(&self, class: ClassId) -> usize {
        self.classes[class.0 as usize].slot_count()
    }

    /// The structural shape fingerprint (see the field doc). Two layouts with equal
    /// fingerprints resolve every class id, field slot and selector identically, so
    /// a peer presenting the same fingerprint may address us by dense ids.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// FNV-1a over the program's shape tables. Hand-rolled (not `DefaultHasher`) so the
/// value is stable across Rust versions and processes — it travels on the wire.
struct ShapeHasher(u64);

impl ShapeHasher {
    fn new() -> ShapeHasher {
        ShapeHasher(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= u64::from(x);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u8(&mut self, v: u8) {
        self.bytes(&[v]);
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_be_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
    fn ty(&mut self, t: &Type) {
        match t {
            Type::Int => self.u8(1),
            Type::Float => self.u8(2),
            Type::Bool => self.u8(3),
            Type::Str => self.u8(4),
            Type::Void => self.u8(5),
            Type::Ref(c) => {
                self.u8(6);
                self.u64(u64::from(c.0));
            }
            Type::Array(elem) => {
                self.u8(7);
                self.ty(elem);
            }
        }
    }
}

/// Hashes everything that determines id assignment (class ids, field slots,
/// selectors, static slots) and deliberately nothing else: method bodies and local
/// counts are per-node rewrite targets and must not perturb the fingerprint.
fn shape_fingerprint(program: &Program) -> u64 {
    let mut h = ShapeHasher::new();
    h.u64(program.classes.len() as u64);
    for class in &program.classes {
        h.str(&class.name);
        match class.super_class {
            Some(sup) => h.u64(u64::from(sup.0) + 1),
            None => h.u64(0),
        }
        h.u64(class.fields.len() as u64);
        for f in &class.fields {
            h.str(&f.name);
            h.u8(u8::from(f.is_static));
            h.ty(&f.ty);
        }
    }
    h.u64(program.methods.len() as u64);
    for m in &program.methods {
        h.str(&m.name);
        h.u64(u64::from(m.class.0));
        h.u8(u8::from(m.is_static));
        h.u64(m.params.len() as u64);
        for p in &m.params {
            h.ty(p);
        }
        h.ty(&m.ret);
    }
    h.0
}

/// The superinstruction fusion pass over one decoded method body.
///
/// Walks the stream front to back, greedily collapsing the longest matching window
/// at each pc. A window is only fusible when no branch target lands *strictly
/// inside* it — a mid-pattern target must keep its instruction addressable, so the
/// window stays unfused. Branch targets (including targets equal to the body
/// length, i.e. "fall off the end") are then remapped onto the shortened stream.
///
/// Returns the fused ops plus the fused-pc → seed-pc map ([`MethodOps::src_pc`]);
/// the map comes back empty when nothing fused, signalling identity.
fn fuse_ops(ops: Vec<Op>) -> (Vec<Op>, Vec<u32>) {
    let n = ops.len();
    // Seed-coordinate branch-target set. `n + 1` entries: a target may legally be
    // one past the last instruction.
    let mut is_target = vec![false; n + 1];
    for op in &ops {
        match op {
            Op::IfCmp(_, t) | Op::If(_, t) | Op::Goto(t) => is_target[*t as usize] = true,
            _ => {}
        }
    }

    let mut fused: Vec<Op> = Vec::with_capacity(n);
    let mut src_pc: Vec<u32> = Vec::with_capacity(n);
    let mut old_to_new = vec![0u32; n + 1];
    let mut pc = 0usize;
    while pc < n {
        // No target may land inside the window; the window start itself is fine.
        let free = |k: usize| (pc + 1..pc + k).all(|j| !is_target[j]);
        let (op, width) = match &ops[pc..] {
            [Op::Load(a), Op::ConstInt(k), Op::Bin(BinOp::Add), Op::Store(d), ..]
                if a == d && free(4) =>
            {
                (Op::IncLocal(*d, *k), 4)
            }
            [Op::Load(a), Op::Load(b), Op::Bin(op), ..] if free(3) => {
                (Op::LoadLoadBin(*a, *b, *op), 3)
            }
            [Op::Load(a), Op::Load(b), Op::IfCmp(c, t), ..] if free(3) => {
                (Op::IfCmpFused(*c, *a, *b, *t), 3)
            }
            [Op::Load(a), Op::ConstInt(k), Op::Bin(op), ..] if free(3) => {
                (Op::LoadConstBin(*a, *k, *op), 3)
            }
            [Op::Load(a), Op::ConstInt(k), Op::IfCmp(c, t), ..] if free(3) => {
                (Op::LoadConstIfCmp(*c, *a, *k, *t), 3)
            }
            [Op::Load(a), Op::IfCmp(c, t), ..] if free(2) => (Op::LoadIfCmp(*c, *a, *t), 2),
            [Op::Load(a), Op::GetField { slot, fr }, ..] if free(2) => (
                Op::LoadFieldGet {
                    local: *a,
                    slot: *slot,
                    fr: *fr,
                },
                2,
            ),
            [Op::Bin(op), Op::Store(d), ..] if free(2) => (Op::BinStore(*op, *d), 2),
            [Op::PutField { slot, fr }, Op::Pop, ..] if free(2) => (
                Op::PutFieldPop {
                    slot: *slot,
                    fr: *fr,
                },
                2,
            ),
            [op, ..] => (op.clone(), 1),
            [] => unreachable!("loop condition guarantees pc < n"),
        };
        // Interior pcs are never branch targets (checked above), so only the window
        // start needs a mapping; fill the whole window anyway to keep the map total.
        for entry in &mut old_to_new[pc..pc + width] {
            *entry = fused.len() as u32;
        }
        src_pc.push(pc as u32);
        fused.push(op);
        pc += width;
    }
    old_to_new[n] = fused.len() as u32;

    if fused.len() == n {
        // Nothing fused: the stream is 1:1, targets are unchanged, the map is
        // the identity.
        return (fused, Vec::new());
    }
    for op in &mut fused {
        match op {
            Op::IfCmp(_, t)
            | Op::If(_, t)
            | Op::Goto(t)
            | Op::LoadIfCmp(_, _, t)
            | Op::IfCmpFused(_, _, _, t)
            | Op::LoadConstIfCmp(_, _, _, t) => *t = old_to_new[*t as usize],
            _ => {}
        }
    }
    (fused, src_pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    fn sample() -> Program {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        p.add_field(a, "x", Type::Int, false);
        p.add_field(a, "s", Type::Int, true);
        p.add_field(a, "y", Type::Float, false);
        let b = p.add_class("B", Some(a));
        p.add_field(b, "z", Type::Bool, false);
        p.add_method(a, "m", vec![], Type::Void, false);
        p.add_method(a, "n", vec![], Type::Void, false);
        p.add_method(b, "m", vec![], Type::Void, false);
        p
    }

    #[test]
    fn inherited_fields_share_the_slot_prefix() {
        let p = sample();
        let layout = ProgramLayout::build(&p);
        let a = p.class_by_name("A").unwrap();
        let b = p.class_by_name("B").unwrap();
        let fx = p.resolve_field(a, "x").unwrap();
        let fy = p.resolve_field(a, "y").unwrap();
        let fz = p.resolve_field(b, "z").unwrap();
        assert_eq!(layout.field_slot(fx), Some(0));
        assert_eq!(layout.field_slot(fy), Some(1));
        assert_eq!(layout.field_slot(fz), Some(2));
        // The same FieldRef resolves identically through the subclass layout.
        assert_eq!(layout.slot_of_name(b, "x"), Some(0));
        assert_eq!(layout.slot_of_name(b, "y"), Some(1));
        assert_eq!(layout.slot_count(a), 2);
        assert_eq!(layout.slot_count(b), 3);
    }

    #[test]
    fn statics_get_global_slots_with_snapshot_keys() {
        let p = sample();
        let layout = ProgramLayout::build(&p);
        let a = p.class_by_name("A").unwrap();
        let fs = p.resolve_field(a, "s").unwrap();
        let slot = layout.static_slot(fs).unwrap();
        assert_eq!(layout.static_names[slot as usize], "A::s");
        assert_eq!(layout.static_types[slot as usize], Type::Int);
        assert_eq!(layout.field_slot(fs), None);
    }

    #[test]
    fn vtables_reproduce_name_based_resolution() {
        let p = sample();
        let layout = ProgramLayout::build(&p);
        let a = p.class_by_name("A").unwrap();
        let b = p.class_by_name("B").unwrap();
        let am = p.find_method(a, "m").unwrap();
        let an = p.find_method(a, "n").unwrap();
        let bm = p.find_method(b, "m").unwrap();
        assert_eq!(layout.resolve_virtual(a, am), Some(am));
        assert_eq!(layout.resolve_virtual(b, am), Some(bm), "override wins");
        assert_eq!(layout.resolve_virtual(b, an), Some(an), "inherited binding");
        assert_eq!(
            layout.selector(am),
            layout.selector(bm),
            "same name, same selector"
        );
        assert_ne!(layout.selector(am), layout.selector(an));
    }

    #[test]
    fn shadowing_aliases_the_inherited_slot() {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        p.add_field(a, "v", Type::Int, false);
        let b = p.add_class("B", Some(a));
        let shadow = p.add_field(b, "v", Type::Int, false);
        let layout = ProgramLayout::build(&p);
        assert_eq!(layout.field_slot(shadow), Some(0));
        assert_eq!(layout.slot_count(b), 1);
    }

    #[test]
    fn shadowing_with_a_different_type_defaults_to_the_derived_declaration() {
        // The map-based heap defaulted fields subclass-first, so the most-derived
        // declaration's type determined a fresh instance's default value.
        let mut p = Program::new();
        let a = p.add_class("A", None);
        p.add_field(a, "v", Type::Bool, false);
        let b = p.add_class("B", Some(a));
        p.add_field(b, "v", Type::Int, false);
        let layout = ProgramLayout::build(&p);
        assert_eq!(layout.classes[a.0 as usize].slot_types[0], Type::Bool);
        assert_eq!(
            layout.classes[b.0 as usize].slot_types[0],
            Type::Int,
            "B instances default v to Int(0), not Bool(false)"
        );
    }

    #[test]
    fn decode_interns_string_constants_once() {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        let m = p.add_method(a, "m", vec![], Type::Void, true);
        p.method_mut(m).body = vec![
            Insn::Const(Const::Str("dup".into())),
            Insn::Pop,
            Insn::Const(Const::Str("dup".into())),
            Insn::Pop,
            Insn::Const(Const::Str("other".into())),
            Insn::Pop,
            Insn::Return,
        ];
        let layout = ProgramLayout::build(&p);
        assert_eq!(layout.const_strs.len(), 2, "literals are deduplicated");
        let ops = &layout.ops(m).ops;
        assert_eq!(ops[0], ops[2], "same literal, same pool index");
        assert_ne!(ops[0], ops[4]);
        match ops[0] {
            Op::ConstStr(i) => assert_eq!(&*layout.const_str(i).clone(), "dup"),
            ref other => panic!("expected ConstStr, got {other:?}"),
        }
    }

    #[test]
    fn decode_resolves_slots_selectors_and_invoke_shapes() {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        let fx = p.add_field(a, "x", Type::Int, false);
        let fs = p.add_field(a, "s", Type::Int, true);
        let m = p.add_method(a, "m", vec![Type::Int, Type::Int], Type::Int, false);
        let caller = p.add_method(a, "caller", vec![], Type::Void, true);
        p.method_mut(caller).body = vec![
            Insn::GetField(fx),
            Insn::GetStatic(fs),
            Insn::PutStatic(fs),
            Insn::PutField(fx),
            Insn::Invoke(InvokeKind::Virtual, m),
            Insn::Goto(0),
        ];
        let layout = ProgramLayout::build(&p);
        let ops = &layout.ops(caller).ops;
        assert_eq!(
            ops[0],
            Op::GetField {
                slot: layout.field_slot(fx).unwrap(),
                fr: fx
            }
        );
        assert_eq!(ops[1], Op::GetStatic(layout.static_slot(fs).unwrap()));
        assert_eq!(ops[2], Op::PutStatic(layout.static_slot(fs).unwrap()));
        match ops[4] {
            Op::Invoke {
                kind,
                target,
                sel,
                nargs,
                push_ret,
            } => {
                assert_eq!(kind, InvokeKind::Virtual);
                assert_eq!(target, m);
                assert_eq!(sel, layout.selector(m));
                assert_eq!(nargs, 3, "two params + receiver");
                assert!(push_ret);
                assert_eq!(layout.resolve_selector(a, sel), Some(m));
            }
            ref other => panic!("expected Invoke, got {other:?}"),
        }
        assert_eq!(ops[5], Op::Goto(0));
        assert_eq!(layout.ops(m).locals, p.method(m).locals);
        assert!(layout.ops(m).ops.is_empty(), "abstract body decodes empty");
    }

    /// `i = 0; while (i < 10) { i = i + 1; }` — the loop head fuses to
    /// `LoadConstIfCmp`, the increment to `IncLocal`, and both branch targets are
    /// remapped onto the shortened stream.
    #[test]
    fn fusion_collapses_the_increment_loop_idiom() {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        let m = p.add_method(a, "m", vec![], Type::Void, true);
        p.method_mut(m).body = vec![
            Insn::Const(Const::Int(0)),
            Insn::Store(0),
            Insn::Load(0), // loop head, target of the Goto
            Insn::Const(Const::Int(10)),
            Insn::IfCmp(CmpOp::Ge, 10),
            Insn::Load(0),
            Insn::Const(Const::Int(1)),
            Insn::Bin(BinOp::Add),
            Insn::Store(0),
            Insn::Goto(2),
            Insn::Return,
        ];
        let layout = ProgramLayout::build(&p);
        let mops = layout.ops(m);
        assert_eq!(
            mops.ops,
            vec![
                Op::ConstInt(0),
                Op::Store(0),
                Op::LoadConstIfCmp(CmpOp::Ge, 0, 10, 5),
                Op::IncLocal(0, 1),
                Op::Goto(2),
                Op::Return,
            ]
        );
        assert_eq!(mops.src_pc, vec![0, 1, 2, 5, 9, 10]);
        assert_eq!(mops.seed_pc(3), 5);
        let width_sum: u32 = mops.ops.iter().map(Op::fused_width).sum();
        assert_eq!(width_sum as usize, p.method(m).body.len());
    }

    #[test]
    fn branch_target_landing_mid_pattern_blocks_fusion() {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        let m = p.add_method(a, "m", vec![Type::Int], Type::Int, true);
        // The Goto lands on the ConstInt *inside* the Load/Const/Bin window, so the
        // window must stay unfused and the whole stream 1:1.
        p.method_mut(m).body = vec![
            Insn::Goto(2),
            Insn::Load(0),
            Insn::Const(Const::Int(1)),
            Insn::Bin(BinOp::Add),
            Insn::ReturnValue,
        ];
        let layout = ProgramLayout::build(&p);
        let mops = layout.ops(m);
        assert_eq!(
            mops.ops,
            vec![
                Op::Goto(2),
                Op::Load(0),
                Op::ConstInt(1),
                Op::Bin(BinOp::Add),
                Op::ReturnValue,
            ]
        );
        assert!(mops.src_pc.is_empty(), "identity map when nothing fused");
        assert_eq!(mops.seed_pc(3), 3);
    }

    #[test]
    fn branch_target_on_a_window_start_does_not_block_fusion() {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        let m = p.add_method(a, "m", vec![Type::Int], Type::Int, true);
        p.method_mut(m).body = vec![
            Insn::Goto(1),
            Insn::Load(0),
            Insn::Const(Const::Int(1)),
            Insn::Bin(BinOp::Add),
            Insn::ReturnValue,
        ];
        let layout = ProgramLayout::build(&p);
        let mops = layout.ops(m);
        assert_eq!(
            mops.ops,
            vec![
                Op::Goto(1),
                Op::LoadConstBin(0, 1, BinOp::Add),
                Op::ReturnValue,
            ]
        );
        assert_eq!(mops.src_pc, vec![0, 1, 4]);
    }

    #[test]
    fn fusion_remaps_targets_one_past_the_end() {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        let m = p.add_method(a, "m", vec![Type::Int, Type::Int], Type::Int, true);
        p.method_mut(m).body = vec![
            Insn::Load(0),
            Insn::Load(1),
            Insn::IfCmp(CmpOp::Eq, 5), // branches one past the last instruction
            Insn::Load(0),
            Insn::ReturnValue,
        ];
        let layout = ProgramLayout::build(&p);
        let mops = layout.ops(m);
        assert_eq!(
            mops.ops,
            vec![
                Op::IfCmpFused(CmpOp::Eq, 0, 1, 3),
                Op::Load(0),
                Op::ReturnValue,
            ]
        );
        assert_eq!(mops.src_pc, vec![0, 3, 4]);
    }

    #[test]
    fn fuse_off_yields_the_one_to_one_decode() {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        let m = p.add_method(a, "m", vec![], Type::Int, true);
        p.method_mut(m).body = vec![
            Insn::Load(0),
            Insn::Const(Const::Int(1)),
            Insn::Bin(BinOp::Add),
            Insn::ReturnValue,
        ];
        let layout = ProgramLayout::build_with(&p, LayoutOptions { fuse: false });
        let mops = layout.ops(m);
        assert_eq!(mops.ops.len(), p.method(m).body.len());
        assert!(mops.src_pc.is_empty());
        assert!(mops.ops.iter().all(|op| op.fused_width() == 1));
    }

    #[test]
    fn fingerprint_ignores_bodies_but_sees_shape() {
        let base = sample();
        let fp = ProgramLayout::build(&base).fingerprint();
        assert_eq!(
            ProgramLayout::build(&sample()).fingerprint(),
            fp,
            "identical programs agree"
        );

        // Body rewrites (what rewrite_for_node does per node) leave it unchanged.
        let mut bodied = sample();
        let m = {
            let a = bodied.class_by_name("A").unwrap();
            bodied.find_method(a, "m").unwrap()
        };
        bodied.method_mut(m).body = vec![Insn::Const(Const::Int(1)), Insn::Pop, Insn::Return];
        bodied.method_mut(m).locals = 7;
        assert_eq!(ProgramLayout::build(&bodied).fingerprint(), fp);

        // Any shape change — a new field, a renamed method — perturbs it.
        let mut extra_field = sample();
        let a = extra_field.class_by_name("A").unwrap();
        extra_field.add_field(a, "w", Type::Int, false);
        assert_ne!(ProgramLayout::build(&extra_field).fingerprint(), fp);

        let mut renamed = sample();
        let a = renamed.class_by_name("A").unwrap();
        let m = renamed.find_method(a, "m").unwrap();
        renamed.method_mut(m).name = "m2".into();
        assert_ne!(ProgramLayout::build(&renamed).fingerprint(), fp);
    }

    #[test]
    fn layout_resolution_matches_program_resolution_for_every_method() {
        let p = sample();
        let layout = ProgramLayout::build(&p);
        for class in &p.classes {
            for m in &p.methods {
                assert_eq!(
                    layout.resolve_virtual(class.id, m.id),
                    p.resolve_method(class.id, &m.name),
                    "class {} method {}",
                    class.name,
                    m.name
                );
            }
        }
    }
}
