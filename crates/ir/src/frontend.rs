//! A small MiniJava-like source front-end.
//!
//! The paper's input is Java bytecode produced by `javac`; our equivalent is a tiny
//! object-oriented source language with classes, fields, constructors, methods, arrays
//! and structured control flow, compiled straight to the bytecode IR. The paper's
//! Bank/Account running example (Figure 2) can be written in this language — see the
//! `bank_distribution` example and the tests at the bottom of this module.
//!
//! The front-end is a hand-written lexer + recursive-descent parser + a two-pass
//! compiler (declaration collection, then body compilation with a per-method local
//! symbol table).

use std::collections::HashMap;
use std::fmt;

use crate::bytecode::{BinOp, CmpOp, Const, Insn, InvokeKind};
use crate::program::{ClassId, MethodId, Program, Type};

/// A source-level compilation error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Human readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}
impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    // punctuation
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    NotEq,
    AndAnd,
    OrOr,
    Eof,
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    line: usize,
}

fn lex(src: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '*' => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i += 2;
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                while i < bytes.len() && bytes[i] != '"' {
                    s.push(bytes[i]);
                    i += 1;
                }
                if i >= bytes.len() {
                    return err(line, "unterminated string literal");
                }
                i += 1;
                toks.push(SpannedTok {
                    tok: Tok::Str(s),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let tok = if text.contains('.') {
                    Tok::Float(text.parse().map_err(|_| ParseError {
                        line,
                        message: format!("bad float literal {text}"),
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| ParseError {
                        line,
                        message: format!("bad int literal {text}"),
                    })?)
                };
                toks.push(SpannedTok { tok, line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                toks.push(SpannedTok {
                    tok: Tok::Ident(text),
                    line,
                });
            }
            _ => {
                let two: String = bytes[i..(i + 2).min(bytes.len())].iter().collect();
                let (tok, len) = match two.as_str() {
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::NotEq, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "&&" => (Tok::AndAnd, 2),
                    "||" => (Tok::OrOr, 2),
                    _ => {
                        let t = match c {
                            '{' => Tok::LBrace,
                            '}' => Tok::RBrace,
                            '(' => Tok::LParen,
                            ')' => Tok::RParen,
                            '[' => Tok::LBracket,
                            ']' => Tok::RBracket,
                            ';' => Tok::Semi,
                            ',' => Tok::Comma,
                            '.' => Tok::Dot,
                            '=' => Tok::Assign,
                            '+' => Tok::Plus,
                            '-' => Tok::Minus,
                            '*' => Tok::Star,
                            '/' => Tok::Slash,
                            '%' => Tok::Percent,
                            '!' => Tok::Bang,
                            '<' => Tok::Lt,
                            '>' => Tok::Gt,
                            other => return err(line, format!("unexpected character '{other}'")),
                        };
                        (t, 1)
                    }
                };
                toks.push(SpannedTok { tok, line });
                i += len;
            }
        }
    }
    toks.push(SpannedTok {
        tok: Tok::Eof,
        line,
    });
    Ok(toks)
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum TypeName {
    Int,
    Float,
    Bool,
    Str,
    Void,
    Class(String),
    Array(Box<TypeName>),
}

#[derive(Debug, Clone)]
enum Expr {
    IntLit(i64),
    FloatLit(f64),
    StrLit(String),
    BoolLit(bool),
    Null,
    This,
    Var(String),
    Field(Box<Expr>, String),
    Index(Box<Expr>, Box<Expr>),
    Length(Box<Expr>),
    Call {
        recv: Option<Box<Expr>>,
        class: Option<String>,
        name: String,
        args: Vec<Expr>,
    },
    New(String, Vec<Expr>),
    NewArray(TypeName, Box<Expr>),
    Unary(UnKind, Box<Expr>),
    Binary(BinKind, Box<Expr>, Box<Expr>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnKind {
    Neg,
    Not,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

#[derive(Debug, Clone)]
enum Stmt {
    Block(Vec<Stmt>),
    VarDecl(TypeName, String, Option<Expr>),
    Assign(Expr, Expr),
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    While(Expr, Box<Stmt>),
    Return(Option<Expr>),
    Expr(Expr),
}

#[derive(Debug, Clone)]
struct MethodDecl {
    name: String,
    is_static: bool,
    params: Vec<(TypeName, String)>,
    ret: TypeName,
    body: Vec<Stmt>,
    line: usize,
}

#[derive(Debug, Clone)]
struct ClassDecl {
    name: String,
    super_name: Option<String>,
    fields: Vec<(TypeName, String, bool)>, // ty, name, is_static
    methods: Vec<MethodDecl>,
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }
    fn line(&self) -> usize {
        self.toks[self.pos].line
    }
    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        self.pos += 1;
        t
    }
    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            err(
                self.line(),
                format!("expected {what}, found {:?}", self.peek()),
            )
        }
    }
    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => err(self.line(), format!("expected identifier, found {other:?}")),
        }
    }
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn parse_program(&mut self) -> Result<Vec<ClassDecl>, ParseError> {
        let mut classes = Vec::new();
        while self.peek() != &Tok::Eof {
            if !self.eat_keyword("class") {
                return err(self.line(), "expected 'class'");
            }
            classes.push(self.parse_class()?);
        }
        Ok(classes)
    }

    fn parse_class(&mut self) -> Result<ClassDecl, ParseError> {
        let name = self.expect_ident()?;
        let super_name = if self.eat_keyword("extends") {
            Some(self.expect_ident()?)
        } else {
            None
        };
        self.expect(&Tok::LBrace, "'{'")?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while self.peek() != &Tok::RBrace {
            let line = self.line();
            let is_static = self.eat_keyword("static");
            // Constructor: IDENT '(' where IDENT == class name.
            if let Tok::Ident(id) = self.peek().clone() {
                if id == name && self.toks[self.pos + 1].tok == Tok::LParen {
                    self.bump();
                    let params = self.parse_params()?;
                    let body = self.parse_block()?;
                    methods.push(MethodDecl {
                        name: "<init>".to_string(),
                        is_static: false,
                        params,
                        ret: TypeName::Void,
                        body,
                        line,
                    });
                    continue;
                }
            }
            let ty = self.parse_type()?;
            let member_name = self.expect_ident()?;
            if self.peek() == &Tok::LParen {
                let params = self.parse_params()?;
                let body = self.parse_block()?;
                methods.push(MethodDecl {
                    name: member_name,
                    is_static,
                    params,
                    ret: ty,
                    body,
                    line,
                });
            } else {
                self.expect(&Tok::Semi, "';'")?;
                fields.push((ty, member_name, is_static));
            }
        }
        self.expect(&Tok::RBrace, "'}'")?;
        Ok(ClassDecl {
            name,
            super_name,
            fields,
            methods,
        })
    }

    fn parse_params(&mut self) -> Result<Vec<(TypeName, String)>, ParseError> {
        self.expect(&Tok::LParen, "'('")?;
        let mut params = Vec::new();
        while self.peek() != &Tok::RParen {
            if !params.is_empty() {
                self.expect(&Tok::Comma, "','")?;
            }
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            params.push((ty, name));
        }
        self.expect(&Tok::RParen, "')'")?;
        Ok(params)
    }

    /// Parses a type name without any trailing `[]` suffix (needed by `new T[expr]`).
    fn parse_base_type(&mut self) -> Result<TypeName, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(match s.as_str() {
                "int" => TypeName::Int,
                "float" | "double" => TypeName::Float,
                "boolean" => TypeName::Bool,
                "String" => TypeName::Str,
                "void" => TypeName::Void,
                _ => TypeName::Class(s),
            }),
            other => err(self.line(), format!("expected type, found {other:?}")),
        }
    }

    fn parse_type(&mut self) -> Result<TypeName, ParseError> {
        let base = self.parse_base_type()?;
        let mut ty = base;
        while self.peek() == &Tok::LBracket && self.toks[self.pos + 1].tok == Tok::RBracket {
            self.bump();
            self.bump();
            ty = TypeName::Array(Box::new(ty));
        }
        Ok(ty)
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&Tok::LBrace, "'{'")?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            stmts.push(self.parse_stmt()?);
        }
        self.expect(&Tok::RBrace, "'}'")?;
        Ok(stmts)
    }

    fn looks_like_decl(&self) -> bool {
        // `Type name ...` — identifier followed by identifier, or a primitive keyword,
        // or `Type[] name`.
        match self.peek() {
            Tok::Ident(s)
                if matches!(
                    s.as_str(),
                    "int" | "float" | "double" | "boolean" | "String"
                ) =>
            {
                true
            }
            Tok::Ident(_) => {
                // Ident Ident  or  Ident [ ] Ident
                matches!(
                    (
                        &self.toks[self.pos + 1].tok,
                        self.toks.get(self.pos + 2).map(|t| &t.tok),
                    ),
                    (Tok::Ident(_), _) | (Tok::LBracket, Some(Tok::RBracket))
                )
            }
            _ => false,
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::LBrace => Ok(Stmt::Block(self.parse_block()?)),
            Tok::Ident(kw) if kw == "if" => {
                self.bump();
                self.expect(&Tok::LParen, "'('")?;
                let cond = self.parse_expr()?;
                self.expect(&Tok::RParen, "')'")?;
                let then = Box::new(self.parse_stmt()?);
                let els = if self.eat_keyword("else") {
                    Some(Box::new(self.parse_stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If(cond, then, els))
            }
            Tok::Ident(kw) if kw == "while" => {
                self.bump();
                self.expect(&Tok::LParen, "'('")?;
                let cond = self.parse_expr()?;
                self.expect(&Tok::RParen, "')'")?;
                let body = Box::new(self.parse_stmt()?);
                Ok(Stmt::While(cond, body))
            }
            Tok::Ident(kw) if kw == "return" => {
                self.bump();
                if self.peek() == &Tok::Semi {
                    self.bump();
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.parse_expr()?;
                    self.expect(&Tok::Semi, "';'")?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            _ if self.looks_like_decl() => {
                let ty = self.parse_type()?;
                let name = self.expect_ident()?;
                let init = if self.peek() == &Tok::Assign {
                    self.bump();
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                self.expect(&Tok::Semi, "';'")?;
                Ok(Stmt::VarDecl(ty, name, init))
            }
            _ => {
                let e = self.parse_expr()?;
                if self.peek() == &Tok::Assign {
                    self.bump();
                    let rhs = self.parse_expr()?;
                    self.expect(&Tok::Semi, "';'")?;
                    Ok(Stmt::Assign(e, rhs))
                } else {
                    self.expect(&Tok::Semi, "';'")?;
                    Ok(Stmt::Expr(e))
                }
            }
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == &Tok::OrOr {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(BinKind::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_cmp()?;
        while self.peek() == &Tok::AndAnd {
            self.bump();
            let rhs = self.parse_cmp()?;
            lhs = Expr::Binary(BinKind::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_add()?;
        let kind = match self.peek() {
            Tok::Lt => BinKind::Lt,
            Tok::Le => BinKind::Le,
            Tok::Gt => BinKind::Gt,
            Tok::Ge => BinKind::Ge,
            Tok::EqEq => BinKind::Eq,
            Tok::NotEq => BinKind::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_add()?;
        Ok(Expr::Binary(kind, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_add(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let kind = match self.peek() {
                Tok::Plus => BinKind::Add,
                Tok::Minus => BinKind::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_mul()?;
            lhs = Expr::Binary(kind, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let kind = match self.peek() {
                Tok::Star => BinKind::Mul,
                Tok::Slash => BinKind::Div,
                Tok::Percent => BinKind::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(kind, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Unary(UnKind::Neg, Box::new(self.parse_unary()?)))
            }
            Tok::Bang => {
                self.bump();
                Ok(Expr::Unary(UnKind::Not, Box::new(self.parse_unary()?)))
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_primary()?;
        loop {
            match self.peek() {
                Tok::Dot => {
                    self.bump();
                    let name = self.expect_ident()?;
                    if self.peek() == &Tok::LParen {
                        let args = self.parse_args()?;
                        e = Expr::Call {
                            recv: Some(Box::new(e)),
                            class: None,
                            name,
                            args,
                        };
                    } else if name == "length" {
                        e = Expr::Length(Box::new(e));
                    } else {
                        e = Expr::Field(Box::new(e), name);
                    }
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    self.expect(&Tok::RBracket, "']'")?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect(&Tok::LParen, "'('")?;
        let mut args = Vec::new();
        while self.peek() != &Tok::RParen {
            if !args.is_empty() {
                self.expect(&Tok::Comma, "','")?;
            }
            args.push(self.parse_expr()?);
        }
        self.expect(&Tok::RParen, "')'")?;
        Ok(args)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Tok::Int(v) => Ok(Expr::IntLit(v)),
            Tok::Float(v) => Ok(Expr::FloatLit(v)),
            Tok::Str(s) => Ok(Expr::StrLit(s)),
            Tok::LParen => {
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Tok::Ident(id) => match id.as_str() {
                "true" => Ok(Expr::BoolLit(true)),
                "false" => Ok(Expr::BoolLit(false)),
                "null" => Ok(Expr::Null),
                "this" => Ok(Expr::This),
                "new" => {
                    let ty = self.parse_base_type()?;
                    if self.peek() == &Tok::LBracket {
                        self.bump();
                        let len = self.parse_expr()?;
                        self.expect(&Tok::RBracket, "']'")?;
                        Ok(Expr::NewArray(ty, Box::new(len)))
                    } else {
                        let class = match ty {
                            TypeName::Class(c) => c,
                            other => {
                                return err(
                                    self.line(),
                                    format!("cannot 'new' non-class type {other:?}"),
                                )
                            }
                        };
                        let args = self.parse_args()?;
                        Ok(Expr::New(class, args))
                    }
                }
                _ => {
                    // Qualified static call `Class.method(...)` is handled in postfix as a
                    // field/virtual chain; plain `name(...)` is a same-class call.
                    if self.peek() == &Tok::LParen {
                        let args = self.parse_args()?;
                        Ok(Expr::Call {
                            recv: None,
                            class: None,
                            name: id,
                            args,
                        })
                    } else {
                        Ok(Expr::Var(id))
                    }
                }
            },
            other => err(self.line(), format!("unexpected token {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Compiler (AST -> bytecode)
// ---------------------------------------------------------------------------

struct MethodCtx {
    insns: Vec<Insn>,
    locals: HashMap<String, (u16, Type)>,
    next_local: u16,
    fixups: Vec<(usize, usize)>, // (insn index, label id)
    labels: Vec<Option<usize>>,
}

impl MethodCtx {
    fn new() -> Self {
        MethodCtx {
            insns: Vec::new(),
            locals: HashMap::new(),
            next_local: 0,
            fixups: Vec::new(),
            labels: Vec::new(),
        }
    }
    fn emit(&mut self, i: Insn) {
        self.insns.push(i);
    }
    fn new_label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }
    fn place(&mut self, l: usize) {
        self.labels[l] = Some(self.insns.len());
    }
    fn branch(&mut self, insn: Insn, label: usize) {
        self.fixups.push((self.insns.len(), label));
        self.insns.push(insn);
    }
    fn declare(&mut self, name: &str, ty: Type) -> u16 {
        let slot = self.next_local;
        self.next_local += 1;
        self.locals.insert(name.to_string(), (slot, ty));
        slot
    }
    fn finish(mut self) -> (Vec<Insn>, u16) {
        let fixups = std::mem::take(&mut self.fixups);
        // A label may legitimately point one past the last instruction (e.g. the join
        // label of an if/else whose branches both return). Keep branch targets in range
        // by appending an unreachable return.
        if fixups
            .iter()
            .any(|&(_, l)| self.labels[l] == Some(self.insns.len()))
        {
            self.insns.push(Insn::Return);
        }
        for (idx, label) in fixups {
            let target = self.labels[label].expect("unplaced label");
            self.insns[idx].remap_targets(|_| target);
        }
        (self.insns, self.next_local)
    }
}

struct Compiler<'a> {
    program: &'a mut Program,
    class_ids: HashMap<String, ClassId>,
    method_ids: HashMap<(String, String), MethodId>,
    decls: Vec<ClassDecl>,
}

impl<'a> Compiler<'a> {
    fn resolve_type(&self, t: &TypeName, line: usize) -> Result<Type, ParseError> {
        Ok(match t {
            TypeName::Int => Type::Int,
            TypeName::Float => Type::Float,
            TypeName::Bool => Type::Bool,
            TypeName::Str => Type::Str,
            TypeName::Void => Type::Void,
            TypeName::Class(c) => Type::Ref(*self.class_ids.get(c).ok_or_else(|| ParseError {
                line,
                message: format!("unknown class {c}"),
            })?),
            TypeName::Array(inner) => Type::Array(Box::new(self.resolve_type(inner, line)?)),
        })
    }

    fn declare_all(&mut self) -> Result<(), ParseError> {
        // Pass 1a: classes.
        for decl in &self.decls {
            let id = self.program.add_class(&decl.name, None);
            self.class_ids.insert(decl.name.clone(), id);
        }
        // Pass 1b: supers, fields, method signatures.
        let decls = self.decls.clone();
        for decl in &decls {
            let cid = self.class_ids[&decl.name];
            if let Some(sup) = &decl.super_name {
                let sid = *self.class_ids.get(sup).ok_or_else(|| ParseError {
                    line: 0,
                    message: format!("unknown superclass {sup}"),
                })?;
                self.program.class_mut(cid).super_class = Some(sid);
            }
            for (ty, name, is_static) in &decl.fields {
                let rty = self.resolve_type(ty, 0)?;
                self.program.add_field(cid, name, rty, *is_static);
            }
            for m in &decl.methods {
                let params = m
                    .params
                    .iter()
                    .map(|(t, _)| self.resolve_type(t, m.line))
                    .collect::<Result<Vec<_>, _>>()?;
                let ret = self.resolve_type(&m.ret, m.line)?;
                let mid = self
                    .program
                    .add_method(cid, &m.name, params, ret, m.is_static);
                self.method_ids
                    .insert((decl.name.clone(), m.name.clone()), mid);
            }
        }
        Ok(())
    }

    fn compile_bodies(&mut self) -> Result<(), ParseError> {
        let decls = self.decls.clone();
        for decl in &decls {
            let cid = self.class_ids[&decl.name];
            for m in &decl.methods {
                let mid = self.method_ids[&(decl.name.clone(), m.name.clone())];
                let (body, locals) = self.compile_method(cid, m)?;
                let pm = self.program.method_mut(mid);
                pm.body = body;
                pm.locals = locals.max(pm.entry_locals());
            }
        }
        // entry point: a static `main` method anywhere.
        for c in &decls {
            if let Some(&mid) = self.method_ids.get(&(c.name.clone(), "main".to_string())) {
                if self.program.method(mid).is_static {
                    self.program.set_entry(mid);
                }
            }
        }
        Ok(())
    }

    fn compile_method(
        &mut self,
        class: ClassId,
        m: &MethodDecl,
    ) -> Result<(Vec<Insn>, u16), ParseError> {
        let mut ctx = MethodCtx::new();
        if !m.is_static {
            ctx.declare("this", Type::Ref(class));
        }
        for (ty, name) in &m.params {
            let rty = self.resolve_type(ty, m.line)?;
            ctx.declare(name, rty);
        }
        for stmt in &m.body {
            self.compile_stmt(class, m, &mut ctx, stmt)?;
        }
        // Implicit return for void methods / constructors.
        let ret = self.resolve_type(&m.ret, m.line)?;
        if ret == Type::Void {
            if !matches!(ctx.insns.last(), Some(i) if i.is_terminator()) {
                ctx.emit(Insn::Return);
            }
        } else if !matches!(ctx.insns.last(), Some(i) if i.is_terminator()) {
            return err(m.line, format!("method {} may not return a value", m.name));
        }
        Ok(ctx.finish())
    }

    fn compile_stmt(
        &mut self,
        class: ClassId,
        m: &MethodDecl,
        ctx: &mut MethodCtx,
        stmt: &Stmt,
    ) -> Result<(), ParseError> {
        match stmt {
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.compile_stmt(class, m, ctx, s)?;
                }
            }
            Stmt::VarDecl(ty, name, init) => {
                let rty = self.resolve_type(ty, m.line)?;
                if let Some(e) = init {
                    self.compile_expr(class, m, ctx, e)?;
                    let slot = ctx.declare(name, rty);
                    ctx.emit(Insn::Store(slot));
                } else {
                    ctx.declare(name, rty);
                }
            }
            Stmt::Assign(lhs, rhs) => match lhs {
                Expr::Var(name) => {
                    if let Some((slot, _)) = ctx.locals.get(name).cloned() {
                        self.compile_expr(class, m, ctx, rhs)?;
                        ctx.emit(Insn::Store(slot));
                    } else if let Some(fr) = self.program.resolve_field(class, name) {
                        // implicit this.field = rhs
                        if self.program.field(fr).is_static {
                            self.compile_expr(class, m, ctx, rhs)?;
                            ctx.emit(Insn::PutStatic(fr));
                        } else {
                            ctx.emit(Insn::Load(0));
                            self.compile_expr(class, m, ctx, rhs)?;
                            ctx.emit(Insn::PutField(fr));
                        }
                    } else {
                        return err(m.line, format!("unknown variable {name}"));
                    }
                }
                Expr::Field(obj, fname) => {
                    let oty = self.compile_expr(class, m, ctx, obj)?;
                    let ocls = oty.ref_class().ok_or_else(|| ParseError {
                        line: m.line,
                        message: format!("field {fname} on non-object"),
                    })?;
                    let fr = self
                        .program
                        .resolve_field(ocls, fname)
                        .ok_or_else(|| ParseError {
                            line: m.line,
                            message: format!("unknown field {fname}"),
                        })?;
                    self.compile_expr(class, m, ctx, rhs)?;
                    ctx.emit(Insn::PutField(fr));
                }
                Expr::Index(arr, idx) => {
                    self.compile_expr(class, m, ctx, arr)?;
                    self.compile_expr(class, m, ctx, idx)?;
                    self.compile_expr(class, m, ctx, rhs)?;
                    ctx.emit(Insn::ArrayStore);
                }
                _ => return err(m.line, "invalid assignment target"),
            },
            Stmt::If(cond, then, els) => {
                let else_l = ctx.new_label();
                let end_l = ctx.new_label();
                self.compile_condition(class, m, ctx, cond, else_l)?;
                self.compile_stmt(class, m, ctx, then)?;
                ctx.branch(Insn::Goto(usize::MAX), end_l);
                ctx.place(else_l);
                if let Some(e) = els {
                    self.compile_stmt(class, m, ctx, e)?;
                }
                ctx.place(end_l);
            }
            Stmt::While(cond, body) => {
                let head = ctx.insns.len();
                let exit_l = ctx.new_label();
                self.compile_condition(class, m, ctx, cond, exit_l)?;
                self.compile_stmt(class, m, ctx, body)?;
                ctx.emit(Insn::Goto(head));
                ctx.place(exit_l);
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    self.compile_expr(class, m, ctx, e)?;
                    ctx.emit(Insn::ReturnValue);
                } else {
                    ctx.emit(Insn::Return);
                }
            }
            Stmt::Expr(e) => {
                let ty = self.compile_expr(class, m, ctx, e)?;
                if ty != Type::Void {
                    ctx.emit(Insn::Pop);
                }
            }
        }
        Ok(())
    }

    /// Compiles `cond`, branching to `false_label` if it evaluates to false.
    fn compile_condition(
        &mut self,
        class: ClassId,
        m: &MethodDecl,
        ctx: &mut MethodCtx,
        cond: &Expr,
        false_label: usize,
    ) -> Result<(), ParseError> {
        if let Expr::Binary(kind, lhs, rhs) = cond {
            let cmp = match kind {
                BinKind::Lt => Some(CmpOp::Lt),
                BinKind::Le => Some(CmpOp::Le),
                BinKind::Gt => Some(CmpOp::Gt),
                BinKind::Ge => Some(CmpOp::Ge),
                BinKind::Eq => Some(CmpOp::Eq),
                BinKind::Ne => Some(CmpOp::Ne),
                _ => None,
            };
            if let Some(op) = cmp {
                self.compile_expr(class, m, ctx, lhs)?;
                self.compile_expr(class, m, ctx, rhs)?;
                ctx.branch(Insn::IfCmp(op.negate(), usize::MAX), false_label);
                return Ok(());
            }
        }
        self.compile_expr(class, m, ctx, cond)?;
        ctx.branch(Insn::If(CmpOp::Eq, usize::MAX), false_label);
        Ok(())
    }

    fn compile_expr(
        &mut self,
        class: ClassId,
        m: &MethodDecl,
        ctx: &mut MethodCtx,
        e: &Expr,
    ) -> Result<Type, ParseError> {
        match e {
            Expr::IntLit(v) => {
                ctx.emit(Insn::Const(Const::Int(*v)));
                Ok(Type::Int)
            }
            Expr::FloatLit(v) => {
                ctx.emit(Insn::Const(Const::Float(*v)));
                Ok(Type::Float)
            }
            Expr::StrLit(s) => {
                ctx.emit(Insn::Const(Const::Str(s.clone())));
                Ok(Type::Str)
            }
            Expr::BoolLit(b) => {
                ctx.emit(Insn::Const(Const::Bool(*b)));
                Ok(Type::Bool)
            }
            Expr::Null => {
                ctx.emit(Insn::Const(Const::Null));
                Ok(Type::Ref(class))
            }
            Expr::This => {
                ctx.emit(Insn::Load(0));
                Ok(Type::Ref(class))
            }
            Expr::Var(name) => {
                if let Some((slot, ty)) = ctx.locals.get(name).cloned() {
                    ctx.emit(Insn::Load(slot));
                    Ok(ty)
                } else if let Some(fr) = self.program.resolve_field(class, name) {
                    let f = self.program.field(fr).clone();
                    if f.is_static {
                        ctx.emit(Insn::GetStatic(fr));
                    } else {
                        ctx.emit(Insn::Load(0));
                        ctx.emit(Insn::GetField(fr));
                    }
                    Ok(f.ty)
                } else {
                    err(m.line, format!("unknown variable {name}"))
                }
            }
            Expr::Field(obj, fname) => {
                let oty = self.compile_expr(class, m, ctx, obj)?;
                let ocls = oty.ref_class().ok_or_else(|| ParseError {
                    line: m.line,
                    message: format!("field access {fname} on non-object"),
                })?;
                let fr = self
                    .program
                    .resolve_field(ocls, fname)
                    .ok_or_else(|| ParseError {
                        line: m.line,
                        message: format!("unknown field {fname}"),
                    })?;
                ctx.emit(Insn::GetField(fr));
                Ok(self.program.field(fr).ty.clone())
            }
            Expr::Index(arr, idx) => {
                let aty = self.compile_expr(class, m, ctx, arr)?;
                self.compile_expr(class, m, ctx, idx)?;
                ctx.emit(Insn::ArrayLoad);
                match aty {
                    Type::Array(inner) => Ok(*inner),
                    _ => err(m.line, "indexing a non-array"),
                }
            }
            Expr::Length(arr) => {
                self.compile_expr(class, m, ctx, arr)?;
                ctx.emit(Insn::ArrayLength);
                Ok(Type::Int)
            }
            Expr::Call {
                recv,
                class: _qual,
                name,
                args,
            } => {
                // Determine the receiver class.
                let (recv_class, is_static_call) = match recv {
                    None => (class, false),
                    Some(r) => {
                        // `Ident.method(...)` where Ident is a class name = static call.
                        if let Expr::Var(cname) = r.as_ref() {
                            if !ctx.locals.contains_key(cname)
                                && self.program.resolve_field(class, cname).is_none()
                            {
                                if let Some(&cid) = self.class_ids.get(cname) {
                                    (cid, true)
                                } else {
                                    return err(m.line, format!("unknown receiver {cname}"));
                                }
                            } else {
                                let t = self.peek_expr_type(class, ctx, r)?;
                                (
                                    t.ref_class().ok_or_else(|| ParseError {
                                        line: m.line,
                                        message: format!("call {name} on non-object"),
                                    })?,
                                    false,
                                )
                            }
                        } else {
                            let t = self.peek_expr_type(class, ctx, r)?;
                            (
                                t.ref_class().ok_or_else(|| ParseError {
                                    line: m.line,
                                    message: format!("call {name} on non-object"),
                                })?,
                                false,
                            )
                        }
                    }
                };
                let mid = self
                    .program
                    .resolve_method(recv_class, name)
                    .ok_or_else(|| ParseError {
                        line: m.line,
                        message: format!(
                            "unknown method {}.{name}",
                            self.program.class(recv_class).name
                        ),
                    })?;
                let callee = self.program.method(mid).clone();
                if callee.is_static || is_static_call {
                    for a in args {
                        self.compile_expr(class, m, ctx, a)?;
                    }
                    ctx.emit(Insn::Invoke(InvokeKind::Static, mid));
                } else {
                    match recv {
                        None => ctx.emit(Insn::Load(0)),
                        Some(r) => {
                            self.compile_expr(class, m, ctx, r)?;
                        }
                    }
                    for a in args {
                        self.compile_expr(class, m, ctx, a)?;
                    }
                    ctx.emit(Insn::Invoke(InvokeKind::Virtual, mid));
                }
                Ok(callee.ret)
            }
            Expr::New(cname, args) => {
                let cid = *self.class_ids.get(cname).ok_or_else(|| ParseError {
                    line: m.line,
                    message: format!("unknown class {cname}"),
                })?;
                let ctor = self.program.find_method(cid, "<init>");
                ctx.emit(Insn::New(cid));
                if let Some(ctor) = ctor {
                    ctx.emit(Insn::Dup);
                    for a in args {
                        self.compile_expr(class, m, ctx, a)?;
                    }
                    ctx.emit(Insn::Invoke(InvokeKind::Special, ctor));
                } else if !args.is_empty() {
                    return err(m.line, format!("class {cname} has no constructor"));
                }
                Ok(Type::Ref(cid))
            }
            Expr::NewArray(ty, len) => {
                let elem = self.resolve_type(ty, m.line)?;
                self.compile_expr(class, m, ctx, len)?;
                ctx.emit(Insn::NewArray(elem.clone()));
                Ok(Type::Array(Box::new(elem)))
            }
            Expr::Unary(kind, inner) => {
                let t = self.compile_expr(class, m, ctx, inner)?;
                match kind {
                    UnKind::Neg => ctx.emit(Insn::Un(crate::bytecode::UnOp::Neg)),
                    UnKind::Not => ctx.emit(Insn::Un(crate::bytecode::UnOp::Not)),
                }
                Ok(t)
            }
            Expr::Binary(kind, lhs, rhs) => {
                match kind {
                    BinKind::Add | BinKind::Sub | BinKind::Mul | BinKind::Div | BinKind::Rem => {
                        let t = self.compile_expr(class, m, ctx, lhs)?;
                        self.compile_expr(class, m, ctx, rhs)?;
                        let op = match kind {
                            BinKind::Add => BinOp::Add,
                            BinKind::Sub => BinOp::Sub,
                            BinKind::Mul => BinOp::Mul,
                            BinKind::Div => BinOp::Div,
                            _ => BinOp::Rem,
                        };
                        ctx.emit(Insn::Bin(op));
                        Ok(t)
                    }
                    BinKind::And | BinKind::Or => {
                        // Java-style short-circuit evaluation: the right operand is only
                        // evaluated when the left one has not already decided the result.
                        let short = ctx.new_label();
                        let end = ctx.new_label();
                        self.compile_expr(class, m, ctx, lhs)?;
                        if *kind == BinKind::And {
                            ctx.branch(Insn::If(CmpOp::Eq, usize::MAX), short);
                        } else {
                            ctx.branch(Insn::If(CmpOp::Ne, usize::MAX), short);
                        }
                        self.compile_expr(class, m, ctx, rhs)?;
                        ctx.branch(Insn::Goto(usize::MAX), end);
                        ctx.place(short);
                        ctx.emit(Insn::Const(Const::Bool(*kind == BinKind::Or)));
                        ctx.place(end);
                        Ok(Type::Bool)
                    }
                    _ => {
                        // Comparison producing a boolean value: if (cmp) push true else false.
                        self.compile_expr(class, m, ctx, lhs)?;
                        self.compile_expr(class, m, ctx, rhs)?;
                        let op = match kind {
                            BinKind::Lt => CmpOp::Lt,
                            BinKind::Le => CmpOp::Le,
                            BinKind::Gt => CmpOp::Gt,
                            BinKind::Ge => CmpOp::Ge,
                            BinKind::Eq => CmpOp::Eq,
                            _ => CmpOp::Ne,
                        };
                        let true_l = ctx.new_label();
                        let end_l = ctx.new_label();
                        ctx.branch(Insn::IfCmp(op, usize::MAX), true_l);
                        ctx.emit(Insn::Const(Const::Bool(false)));
                        ctx.branch(Insn::Goto(usize::MAX), end_l);
                        ctx.place(true_l);
                        ctx.emit(Insn::Const(Const::Bool(true)));
                        ctx.place(end_l);
                        Ok(Type::Bool)
                    }
                }
            }
        }
    }

    /// Computes the type an expression would have without emitting code twice: for the
    /// receiver of a call we must emit the code exactly once, so this compiles into a
    /// scratch context purely for its type. (Receivers are re-compiled for real by the
    /// caller; bodies are small so this stays cheap.)
    fn peek_expr_type(
        &mut self,
        class: ClassId,
        ctx: &MethodCtx,
        e: &Expr,
    ) -> Result<Type, ParseError> {
        let mut scratch = MethodCtx::new();
        scratch.locals = ctx.locals.clone();
        scratch.next_local = ctx.next_local;
        let dummy = MethodDecl {
            name: "<peek>".into(),
            is_static: false,
            params: vec![],
            ret: TypeName::Void,
            body: vec![],
            line: 0,
        };
        self.compile_expr(class, &dummy, &mut scratch, e)
    }
}

/// Compiles MiniJava-like source text into a [`Program`].
///
/// The entry point is any `static void main()` method. See the module documentation for
/// the supported language subset.
pub fn compile_source(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut parser = Parser { toks, pos: 0 };
    let decls = parser.parse_program()?;
    let mut program = Program::new();
    let mut compiler = Compiler {
        program: &mut program,
        class_ids: HashMap::new(),
        method_ids: HashMap::new(),
        decls,
    };
    compiler.declare_all()?;
    compiler.compile_bodies()?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_program;

    const BANK_SRC: &str = r#"
        class Account {
            int id;
            String name;
            int savings;
            int checking;
            Account(int id, String name, int savings, int checking) {
                this.id = id;
                this.name = name;
                this.savings = savings;
                this.checking = checking;
            }
            int getSavings() { return this.savings; }
            int getId() { return this.id; }
            void setBalance(int b) { this.savings = b; }
            int getBalance() { return this.savings; }
        }
        class Bank {
            int id;
            String name;
            int numCustomers;
            Account[] accounts;
            int count;
            Bank(String name, int numCustomers, int initialBalance) {
                this.name = name;
                this.numCustomers = numCustomers;
                this.accounts = new Account[100];
                this.count = 0;
                this.initializeAccounts(initialBalance);
            }
            void initializeAccounts(int initialBalance) {
                int i = 0;
                while (i < this.numCustomers) {
                    Account a = new Account(i, "customer", initialBalance, 0);
                    this.openAccount(a);
                    i = i + 1;
                }
            }
            void openAccount(Account a) {
                this.accounts[this.count] = a;
                this.count = this.count + 1;
            }
            Account getCustomer(int customerID) {
                return this.accounts[customerID];
            }
            boolean withdraw(int customerID, int amount) {
                if (amount > 0) {
                    this.getCustomer(customerID).setBalance(
                        this.getCustomer(customerID).getBalance() - amount);
                    return true;
                } else {
                    return false;
                }
            }
            static void main() {
                Bank merchants = new Bank("Merchants", 10, 10000);
                Account a4 = new Account(1, "ABC Market", 1000000, 100000);
                Account a5 = new Account(2, "CDE Outlet", 5000000, 300000);
                merchants.openAccount(a4);
                merchants.openAccount(a5);
                Account a = merchants.getCustomer(2);
                merchants.withdraw(a.getId(), 900);
            }
        }
    "#;

    #[test]
    fn bank_example_compiles_and_verifies() {
        let p = compile_source(BANK_SRC).expect("compiles");
        assert!(p.class_by_name("Account").is_some());
        assert!(p.class_by_name("Bank").is_some());
        assert!(p.entry.is_some());
        verify_program(&p).expect("verifies");
    }

    #[test]
    fn simple_arithmetic_compiles() {
        let src = r#"
            class Calc {
                int square(int x) { return x * x; }
                static void main() {
                    Calc c = new Calc();
                    int y = c.square(7);
                    if (y > 40) { y = y - 1; } else { y = 0; }
                    while (y > 0) { y = y - 10; }
                }
            }
        "#;
        let p = compile_source(src).expect("compiles");
        verify_program(&p).expect("verifies");
        let main = p.entry.unwrap();
        assert!(p.method(main).body.len() > 10);
    }

    #[test]
    fn classes_without_constructor_are_allowed() {
        let src = r#"
            class Point { int x; int y; }
            class Main {
                static void main() {
                    Point p = new Point();
                    p.x = 3;
                    p.y = 4;
                    int d = p.x * p.x + p.y * p.y;
                }
            }
        "#;
        let p = compile_source(src).expect("compiles");
        verify_program(&p).expect("verifies");
    }

    #[test]
    fn arrays_and_length_compile() {
        let src = r#"
            class A {
                static void main() {
                    int[] xs = new int[10];
                    int i = 0;
                    while (i < xs.length) {
                        xs[i] = i * 2;
                        i = i + 1;
                    }
                    int total = 0;
                    i = 0;
                    while (i < xs.length) {
                        total = total + xs[i];
                        i = i + 1;
                    }
                }
            }
        "#;
        let p = compile_source(src).expect("compiles");
        verify_program(&p).expect("verifies");
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let src = r#"
            class A { static void main() { x = 3; } }
        "#;
        let e = compile_source(src).unwrap_err();
        assert!(e.message.contains("unknown variable"));
    }

    #[test]
    fn unknown_class_is_an_error() {
        let src = r#"
            class A { static void main() { B b = new B(); } }
        "#;
        assert!(compile_source(src).is_err());
    }

    #[test]
    fn boolean_comparison_as_value() {
        let src = r#"
            class A {
                static void main() {
                    int x = 5;
                    boolean big = x > 3;
                    if (big) { x = 1; }
                }
            }
        "#;
        let p = compile_source(src).expect("compiles");
        verify_program(&p).expect("verifies");
    }

    #[test]
    fn inheritance_and_virtual_dispatch_compile() {
        let src = r#"
            class Shape {
                int area() { return 0; }
            }
            class Square extends Shape {
                int side;
                Square(int side) { this.side = side; }
                int area() { return this.side * this.side; }
            }
            class Main {
                static void main() {
                    Shape s = new Square(4);
                    int a = s.area();
                }
            }
        "#;
        let p = compile_source(src).expect("compiles");
        verify_program(&p).expect("verifies");
        let sq = p.class_by_name("Square").unwrap();
        let sh = p.class_by_name("Shape").unwrap();
        assert!(p.is_subclass_of(sq, sh));
    }

    #[test]
    fn lexer_reports_unterminated_string() {
        assert!(compile_source("class A { static void main() { String s = \"oops; } }").is_err());
    }

    #[test]
    fn comments_are_ignored() {
        let src = r#"
            // line comment
            class A {
                /* block
                   comment */
                static void main() { int x = 1; }
            }
        "#;
        assert!(compile_source(src).is_ok());
    }
}
