//! The stack-machine bytecode instruction set.
//!
//! This is a compact, JVM-flavoured instruction set: a per-frame operand stack, numbered
//! local variable slots, object allocation (`New`), field access, virtual/static/special
//! dispatch, arrays, and structured control flow through pc-relative branches. It is the
//! representation that the dependence analyses inspect and that the communication
//! rewriter transforms (Figures 8 and 9 in the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::program::{ClassId, FieldRef, MethodId, Type};

/// A constant that can be pushed onto the operand stack.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Const {
    /// Integer constant.
    Int(i64),
    /// Floating point constant.
    Float(f64),
    /// Boolean constant.
    Bool(bool),
    /// String constant.
    Str(String),
    /// The null reference.
    Null,
}

impl Const {
    /// The static type of the constant.
    pub fn ty(&self) -> Option<Type> {
        match self {
            Const::Int(_) => Some(Type::Int),
            Const::Float(_) => Some(Type::Float),
            Const::Bool(_) => Some(Type::Bool),
            Const::Str(_) => Some(Type::Str),
            Const::Null => None,
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(v) => write!(f, "IConst: {v}"),
            Const::Float(v) => write!(f, "FConst: {v}"),
            Const::Bool(v) => write!(f, "BConst: {v}"),
            Const::Str(s) => write!(f, "SConst: \"{s}\""),
            Const::Null => write!(f, "null"),
        }
    }
}

/// Binary arithmetic / bitwise operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division truncates toward zero; division by zero traps).
    Div,
    /// Remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
}

impl BinOp {
    /// Mnemonic used by the quad printer, e.g. `ADD`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "ADD",
            BinOp::Sub => "SUB",
            BinOp::Mul => "MUL",
            BinOp::Div => "DIV",
            BinOp::Rem => "REM",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Xor => "XOR",
            BinOp::Shl => "SHL",
            BinOp::Shr => "SHR",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation of a boolean.
    Not,
    /// Integer to float conversion.
    IntToFloat,
    /// Float to integer conversion (truncating).
    FloatToInt,
}

impl UnOp {
    /// Mnemonic used by the quad printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "NEG",
            UnOp::Not => "NOT",
            UnOp::IntToFloat => "I2F",
            UnOp::FloatToInt => "F2I",
        }
    }
}

/// Comparison operators used by conditional branches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Mnemonic in the quad listing (`EQ`, `LE`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "EQ",
            CmpOp::Ne => "NE",
            CmpOp::Lt => "LT",
            CmpOp::Le => "LE",
            CmpOp::Gt => "GT",
            CmpOp::Ge => "GE",
        }
    }

    /// The negated comparison (`a < b` becomes `a >= b`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Evaluates the comparison on two ordered integers.
    pub fn eval_ord(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// Method invocation kinds, mirroring the JVM's `invokevirtual` / `invokestatic` /
/// `invokespecial` distinction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InvokeKind {
    /// Virtual dispatch on the runtime class of the receiver.
    Virtual,
    /// Static dispatch, no receiver.
    Static,
    /// Non-virtual dispatch on a receiver: constructors and super calls.
    Special,
}

/// A single bytecode instruction.
///
/// Branch targets are absolute instruction indices within the owning method body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Insn {
    /// Push a constant.
    Const(Const),
    /// Push the value of local slot `n`.
    Load(u16),
    /// Pop into local slot `n`.
    Store(u16),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the two topmost stack values.
    Swap,
    /// Pop two values, push `lhs op rhs`.
    Bin(BinOp),
    /// Pop one value, push `op value`.
    Un(UnOp),
    /// Pop `rhs`, `lhs`; branch to `target` if `lhs op rhs`.
    IfCmp(CmpOp, usize),
    /// Pop `v`; branch to `target` if `v op 0` (or for refs: `Eq` = is-null).
    If(CmpOp, usize),
    /// Unconditional branch to `target`.
    Goto(usize),
    /// Allocate a new (uninitialised) instance of the class and push the reference.
    New(ClassId),
    /// Pop a length, allocate an array of the element type and push the reference.
    NewArray(Type),
    /// Pop index and array reference, push the element.
    ArrayLoad,
    /// Pop value, index and array reference, store the element.
    ArrayStore,
    /// Pop an array reference, push its length.
    ArrayLength,
    /// Pop an object reference, push the value of the instance field.
    GetField(FieldRef),
    /// Pop a value and an object reference, store into the instance field.
    PutField(FieldRef),
    /// Push the value of a static field.
    GetStatic(FieldRef),
    /// Pop a value into a static field.
    PutStatic(FieldRef),
    /// Invoke a method. Arguments (and the receiver for non-static kinds) are popped
    /// from the stack, rightmost argument on top. A non-void result is pushed.
    Invoke(InvokeKind, MethodId),
    /// Return with no value.
    Return,
    /// Pop a value and return it.
    ReturnValue,
}

impl Insn {
    /// The net change in operand-stack height caused by this instruction, given the
    /// callee signature lookup closure for invokes (arg count, returns-value).
    pub fn stack_delta(&self, invoke_sig: impl Fn(MethodId) -> (usize, bool)) -> isize {
        match self {
            Insn::Const(_) | Insn::Load(_) | Insn::Dup | Insn::New(_) | Insn::GetStatic(_) => 1,
            Insn::Store(_)
            | Insn::Pop
            | Insn::PutStatic(_)
            | Insn::If(_, _)
            | Insn::ReturnValue => -1,
            Insn::Swap
            | Insn::Goto(_)
            | Insn::Un(_)
            | Insn::NewArray(_)
            | Insn::ArrayLength
            | Insn::GetField(_)
            | Insn::Return => 0,
            Insn::Bin(_) | Insn::ArrayLoad => -1,
            Insn::PutField(_) | Insn::IfCmp(_, _) => -2,
            Insn::ArrayStore => -3,
            Insn::Invoke(kind, m) => {
                let (nargs, has_ret) = invoke_sig(*m);
                let receiver = if *kind == InvokeKind::Static { 0 } else { 1 };
                (has_ret as isize) - nargs as isize - receiver
            }
        }
    }

    /// Returns the branch target if this instruction can transfer control non-sequentially.
    pub fn branch_target(&self) -> Option<usize> {
        match self {
            Insn::IfCmp(_, t) | Insn::If(_, t) | Insn::Goto(t) => Some(*t),
            _ => None,
        }
    }

    /// `true` if control never falls through to the next instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Insn::Goto(_) | Insn::Return | Insn::ReturnValue)
    }

    /// `true` if this is a conditional or unconditional branch.
    pub fn is_branch(&self) -> bool {
        matches!(self, Insn::Goto(_) | Insn::If(_, _) | Insn::IfCmp(_, _))
    }

    /// Remaps branch targets through `f`; used by the bytecode rewriter when the body
    /// length changes.
    pub fn remap_targets(&mut self, f: impl Fn(usize) -> usize) {
        match self {
            Insn::IfCmp(_, t) | Insn::If(_, t) | Insn::Goto(t) => *t = f(*t),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_negation_round_trips() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn cmp_eval_matches_integers() {
        use std::cmp::Ordering;
        assert!(CmpOp::Lt.eval_ord(Ordering::Less));
        assert!(!CmpOp::Lt.eval_ord(Ordering::Equal));
        assert!(CmpOp::Le.eval_ord(Ordering::Equal));
        assert!(CmpOp::Ge.eval_ord(Ordering::Greater));
        assert!(CmpOp::Ne.eval_ord(Ordering::Greater));
        assert!(CmpOp::Eq.eval_ord(Ordering::Equal));
    }

    #[test]
    fn stack_deltas_are_consistent() {
        let sig = |_m: MethodId| (2usize, true);
        assert_eq!(Insn::Const(Const::Int(1)).stack_delta(sig), 1);
        assert_eq!(Insn::Bin(BinOp::Add).stack_delta(sig), -1);
        assert_eq!(Insn::ArrayStore.stack_delta(sig), -3);
        // getfield pops the receiver and pushes the value.
        assert_eq!(
            Insn::GetField(crate::program::FieldRef {
                class: crate::program::ClassId(0),
                index: 0
            })
            .stack_delta(sig),
            0
        );
        // if_cmp pops both comparands.
        assert_eq!(Insn::IfCmp(CmpOp::Lt, 0).stack_delta(sig), -2);
        // virtual invoke with 2 args and a result: pops receiver + 2, pushes 1.
        assert_eq!(
            Insn::Invoke(InvokeKind::Virtual, MethodId(0)).stack_delta(sig),
            -2
        );
        // static invoke with 2 args and a result: pops 2, pushes 1.
        assert_eq!(
            Insn::Invoke(InvokeKind::Static, MethodId(0)).stack_delta(sig),
            -1
        );
    }

    #[test]
    fn branch_targets_and_terminators() {
        assert_eq!(Insn::Goto(7).branch_target(), Some(7));
        assert_eq!(Insn::If(CmpOp::Eq, 3).branch_target(), Some(3));
        assert_eq!(Insn::Pop.branch_target(), None);
        assert!(Insn::Return.is_terminator());
        assert!(Insn::Goto(0).is_terminator());
        assert!(!Insn::If(CmpOp::Eq, 0).is_terminator());
    }

    #[test]
    fn remap_targets_only_touches_branches() {
        let mut i = Insn::Goto(4);
        i.remap_targets(|t| t + 10);
        assert_eq!(i, Insn::Goto(14));
        let mut j = Insn::Pop;
        j.remap_targets(|t| t + 10);
        assert_eq!(j, Insn::Pop);
    }

    #[test]
    fn const_types() {
        assert_eq!(Const::Int(3).ty(), Some(Type::Int));
        assert_eq!(Const::Null.ty(), None);
        assert_eq!(Const::Str("x".into()).ty(), Some(Type::Str));
    }
}
