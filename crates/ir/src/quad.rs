//! The register-based quadruple IR.
//!
//! Quads resemble the register IR used by Joeq and shown in Figure 5 of the paper:
//! each method is a list of basic blocks (`BB0 (ENTRY)`, `BB1 (EXIT)`, `BB2`, ...), and
//! each block holds quads such as `MOVE_I R1 int, IConst: 4`. The quad IR is the input
//! of the retargetable code generator (AST construction + BURS).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::bytecode::{BinOp, CmpOp, InvokeKind, UnOp};
use crate::program::{ClassId, FieldRef, MethodId, Type};

/// A virtual register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(pub u32);

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}
impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Identifier of a basic block within a [`QuadMethod`].
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BB{}", self.0)
    }
}
impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BB{}", self.0)
    }
}

/// An operand of a quad: either a register or a constant.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// Virtual register.
    Reg(Reg),
    /// Integer constant.
    IConst(i64),
    /// Float constant.
    FConst(f64),
    /// Boolean constant.
    BConst(bool),
    /// String constant.
    SConst(String),
    /// The null reference.
    Null,
}

impl Operand {
    /// Returns the register if this operand is one.
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::IConst(v) => write!(f, "IConst: {v}"),
            Operand::FConst(v) => write!(f, "FConst: {v}"),
            Operand::BConst(v) => write!(f, "BConst: {v}"),
            Operand::SConst(s) => write!(f, "SConst: \"{s}\""),
            Operand::Null => write!(f, "null"),
        }
    }
}

/// A single quadruple instruction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Quad {
    /// `dst := src`
    Move { dst: Reg, src: Operand },
    /// `dst := lhs op rhs`
    Bin {
        op: BinOp,
        dst: Reg,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst := op src`
    Un { op: UnOp, dst: Reg, src: Operand },
    /// Branch to `target` if `lhs op rhs`.
    IfCmp {
        op: CmpOp,
        lhs: Operand,
        rhs: Operand,
        target: BlockId,
    },
    /// Unconditional branch.
    Goto { target: BlockId },
    /// `dst := new class`
    New { dst: Reg, class: ClassId },
    /// `dst := new elem[len]`
    NewArray { dst: Reg, elem: Type, len: Operand },
    /// `dst := arr[idx]`
    ALoad {
        dst: Reg,
        arr: Operand,
        idx: Operand,
    },
    /// `arr[idx] := val`
    AStore {
        arr: Operand,
        idx: Operand,
        val: Operand,
    },
    /// `dst := arr.length`
    ALen { dst: Reg, arr: Operand },
    /// `dst := obj.field`
    GetField {
        dst: Reg,
        obj: Operand,
        field: FieldRef,
    },
    /// `obj.field := val`
    PutField {
        obj: Operand,
        field: FieldRef,
        val: Operand,
    },
    /// `dst := Class.field`
    GetStatic { dst: Reg, field: FieldRef },
    /// `Class.field := val`
    PutStatic { field: FieldRef, val: Operand },
    /// `dst := invoke kind method(args...)` — for non-static kinds `args[0]` is the receiver.
    Invoke {
        kind: InvokeKind,
        dst: Option<Reg>,
        method: MethodId,
        args: Vec<Operand>,
    },
    /// Return, optionally with a value.
    Return { val: Option<Operand> },
}

impl Quad {
    /// The register defined by this quad, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Quad::Move { dst, .. }
            | Quad::Bin { dst, .. }
            | Quad::Un { dst, .. }
            | Quad::New { dst, .. }
            | Quad::NewArray { dst, .. }
            | Quad::ALoad { dst, .. }
            | Quad::ALen { dst, .. }
            | Quad::GetField { dst, .. }
            | Quad::GetStatic { dst, .. } => Some(*dst),
            Quad::Invoke { dst, .. } => *dst,
            _ => None,
        }
    }

    /// All operands used (read) by this quad.
    pub fn uses(&self) -> Vec<&Operand> {
        match self {
            Quad::Move { src, .. } => vec![src],
            Quad::Bin { lhs, rhs, .. } => vec![lhs, rhs],
            Quad::Un { src, .. } => vec![src],
            Quad::IfCmp { lhs, rhs, .. } => vec![lhs, rhs],
            Quad::Goto { .. } | Quad::New { .. } | Quad::GetStatic { .. } => vec![],
            Quad::NewArray { len, .. } => vec![len],
            Quad::ALoad { arr, idx, .. } => vec![arr, idx],
            Quad::AStore { arr, idx, val } => vec![arr, idx, val],
            Quad::ALen { arr, .. } => vec![arr],
            Quad::GetField { obj, .. } => vec![obj],
            Quad::PutField { obj, val, .. } => vec![obj, val],
            Quad::PutStatic { val, .. } => vec![val],
            Quad::Invoke { args, .. } => args.iter().collect(),
            Quad::Return { val } => val.iter().collect(),
        }
    }

    /// `true` if the quad ends its basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Quad::Goto { .. } | Quad::Return { .. })
    }

    /// Branch target of a control-transfer quad.
    pub fn target(&self) -> Option<BlockId> {
        match self {
            Quad::IfCmp { target, .. } | Quad::Goto { target } => Some(*target),
            _ => None,
        }
    }

    /// A short opcode name matching the paper's quad listing style (`MOVE_I`, `ADD_I`,
    /// `IFCMP_I`, `RETURN_I`, ...).
    pub fn opcode(&self) -> String {
        match self {
            Quad::Move { .. } => "MOVE_I".into(),
            Quad::Bin { op, .. } => format!("{}_I", op.mnemonic()),
            Quad::Un { op, .. } => format!("{}_I", op.mnemonic()),
            Quad::IfCmp { .. } => "IFCMP_I".into(),
            Quad::Goto { .. } => "GOTO".into(),
            Quad::New { .. } => "NEW".into(),
            Quad::NewArray { .. } => "NEWARRAY".into(),
            Quad::ALoad { .. } => "ALOAD".into(),
            Quad::AStore { .. } => "ASTORE".into(),
            Quad::ALen { .. } => "ARRAYLENGTH".into(),
            Quad::GetField { .. } => "GETFIELD".into(),
            Quad::PutField { .. } => "PUTFIELD".into(),
            Quad::GetStatic { .. } => "GETSTATIC".into(),
            Quad::PutStatic { .. } => "PUTSTATIC".into(),
            Quad::Invoke { kind, .. } => match kind {
                InvokeKind::Virtual => "INVOKEVIRTUAL".into(),
                InvokeKind::Static => "INVOKESTATIC".into(),
                InvokeKind::Special => "INVOKESPECIAL".into(),
            },
            Quad::Return { val: Some(_) } => "RETURN_I".into(),
            Quad::Return { val: None } => "RETURN_V".into(),
        }
    }
}

/// A basic block of quads.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct QuadBlock {
    /// Block id.
    pub id: BlockId,
    /// The quads in program order.
    pub quads: Vec<Quad>,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
}

/// A method in quad form.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QuadMethod {
    /// The bytecode method this was lowered from.
    pub method: MethodId,
    /// Basic blocks. Block 0 is the synthetic ENTRY block, block 1 the synthetic EXIT.
    pub blocks: Vec<QuadBlock>,
    /// Number of virtual registers used.
    pub reg_count: u32,
}

impl QuadMethod {
    /// The synthetic entry block id.
    pub const ENTRY: BlockId = BlockId(0);
    /// The synthetic exit block id.
    pub const EXIT: BlockId = BlockId(1);

    /// Accessor for a block.
    pub fn block(&self, id: BlockId) -> &QuadBlock {
        &self.blocks[id.0 as usize]
    }

    /// Total number of quads across all blocks.
    pub fn quad_count(&self) -> usize {
        self.blocks.iter().map(|b| b.quads.len()).sum()
    }

    /// Iterates over all quads in block order.
    pub fn iter_quads(&self) -> impl Iterator<Item = (&QuadBlock, &Quad)> {
        self.blocks
            .iter()
            .flat_map(|b| b.quads.iter().map(move |q| (b, q)))
    }

    /// Recomputes predecessor lists from the successor lists.
    pub fn recompute_preds(&mut self) {
        for b in &mut self.blocks {
            b.preds.clear();
        }
        let edges: Vec<(BlockId, BlockId)> = self
            .blocks
            .iter()
            .flat_map(|b| b.succs.iter().map(move |&s| (b.id, s)))
            .collect();
        for (from, to) in edges {
            self.blocks[to.0 as usize].preds.push(from);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_and_uses() {
        let q = Quad::Bin {
            op: BinOp::Add,
            dst: Reg(1),
            lhs: Operand::Reg(Reg(2)),
            rhs: Operand::IConst(4),
        };
        assert_eq!(q.def(), Some(Reg(1)));
        assert_eq!(q.uses().len(), 2);
        assert_eq!(q.opcode(), "ADD_I");
    }

    #[test]
    fn terminators_and_targets() {
        let g = Quad::Goto { target: BlockId(4) };
        assert!(g.is_terminator());
        assert_eq!(g.target(), Some(BlockId(4)));
        let r = Quad::Return { val: None };
        assert!(r.is_terminator());
        assert_eq!(r.opcode(), "RETURN_V");
        let ic = Quad::IfCmp {
            op: CmpOp::Le,
            lhs: Operand::IConst(4),
            rhs: Operand::IConst(2),
            target: BlockId(4),
        };
        assert!(!ic.is_terminator());
        assert_eq!(ic.target(), Some(BlockId(4)));
    }

    #[test]
    fn recompute_preds_builds_reverse_edges() {
        let mut m = QuadMethod {
            method: MethodId(0),
            blocks: vec![
                QuadBlock {
                    id: BlockId(0),
                    succs: vec![BlockId(2)],
                    ..Default::default()
                },
                QuadBlock {
                    id: BlockId(1),
                    ..Default::default()
                },
                QuadBlock {
                    id: BlockId(2),
                    succs: vec![BlockId(1)],
                    ..Default::default()
                },
            ],
            reg_count: 0,
        };
        m.recompute_preds();
        assert_eq!(m.block(BlockId(2)).preds, vec![BlockId(0)]);
        assert_eq!(m.block(BlockId(1)).preds, vec![BlockId(2)]);
    }
}
