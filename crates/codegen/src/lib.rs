//! # autodist-codegen
//!
//! Code and communication generation (Section 4 of the paper).
//!
//! * [`ast`] — turns quad methods into abstract syntax trees: every quad becomes the
//!   root of a small tree whose leaves are its operands (Figure 6).
//! * [`burs`] — a bottom-up rewrite system (BURS) code-generator generator: rules map
//!   tree patterns to target instructions with costs; a first dynamic-programming pass
//!   labels every node with its cheapest derivation per nonterminal, and a second pass
//!   reduces the tree emitting code (the JBurg role).
//! * [`x86`] / [`arm`] — rule tables and emitters for an x86-like and a StrongARM-like
//!   target (Figure 7).
//! * [`rewrite`] — **communication generation**: given a placement of classes onto
//!   nodes, produces the per-node program copies in which accesses to remote objects
//!   are replaced by operations on `rt/DependentObject` proxies that exchange `NEW` and
//!   `DEPENDENCE` messages at run time (Figures 8 and 9).

pub mod arm;
pub mod ast;
pub mod burs;
pub mod rewrite;
pub mod x86;

pub use ast::{build_method_forest, TreeNode, TreeOp};
pub use burs::{Burs, EmitCtx, Nonterminal, Rule};
pub use rewrite::{
    rewrite_for_node, ClassPlacement, RewriteStats, RewrittenProgram, ACCESS_GET_FIELD,
    ACCESS_INVOKE_HASRETURN, ACCESS_INVOKE_VOID, ACCESS_PUT_FIELD, DEPENDENT_OBJECT_CLASS,
};

/// The targets supported by the retargetable back-end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// 32/64-bit x86 flavoured assembly (Figure 7 left column).
    X86,
    /// StrongARM flavoured assembly (Figure 7 right column).
    StrongArm,
}

/// Generates assembly text for one quad method on the chosen target.
pub fn generate_method(
    program: &autodist_ir::Program,
    qm: &autodist_ir::QuadMethod,
    target: Target,
) -> Vec<String> {
    let burs = match target {
        Target::X86 => x86::x86_rules(),
        Target::StrongArm => arm::arm_rules(),
    };
    let forest = ast::build_method_forest(program, qm);
    let mut out = Vec::new();
    let mut ctx = burs::EmitCtx::new(match target {
        Target::X86 => "eax",
        Target::StrongArm => "R1",
    });
    for (block, trees) in forest {
        if !trees.is_empty() && block.0 >= 2 {
            out.push(format!("BB{}:", block.0));
        }
        for tree in trees {
            let lines = burs.reduce(&tree, &mut ctx);
            out.extend(lines);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use autodist_ir::bytecode::CmpOp;
    use autodist_ir::lower::lower_method;
    use autodist_ir::{ProgramBuilder, Type};

    fn example() -> (autodist_ir::Program, autodist_ir::QuadMethod) {
        let mut pb = ProgramBuilder::new();
        let example = pb.class("Example");
        let mut m = pb.method(example, "ex", vec![Type::Int], Type::Int);
        m.iconst(4).store(1);
        let skip = m.label();
        m.load(1).iconst(2).if_cmp(CmpOp::Le, skip);
        m.load(1).iconst(1).add().store(1);
        m.place(skip);
        m.load(1).ret_val();
        let id = m.finish();
        let p = pb.build();
        let qm = lower_method(&p, p.method(id)).unwrap();
        (p, qm)
    }

    #[test]
    fn x86_output_resembles_figure7() {
        let (p, qm) = example();
        let asm = generate_method(&p, &qm, Target::X86);
        let text = asm.join("\n");
        assert!(text.contains("mov"), "{text}");
        assert!(text.contains("cmp"), "{text}");
        assert!(text.contains("jle") || text.contains("jg"), "{text}");
        assert!(text.contains("add"), "{text}");
        assert!(text.contains("ret"), "{text}");
    }

    #[test]
    fn arm_output_resembles_figure7() {
        let (p, qm) = example();
        let asm = generate_method(&p, &qm, Target::StrongArm);
        let text = asm.join("\n");
        assert!(text.contains("mov"), "{text}");
        assert!(text.contains("cmp"), "{text}");
        assert!(text.contains("ble") || text.contains("bgt"), "{text}");
        assert!(text.contains("add"), "{text}");
        assert!(
            text.contains("mov PC, R14") || text.contains("mov pc"),
            "{text}"
        );
    }

    #[test]
    fn both_targets_emit_labels_for_branch_blocks() {
        let (p, qm) = example();
        for t in [Target::X86, Target::StrongArm] {
            let asm = generate_method(&p, &qm, t);
            assert!(asm.iter().any(|l| l.starts_with("BB") && l.ends_with(':')));
        }
    }
}
