//! StrongARM-flavoured BURS rule table (Figure 7, right column).
//!
//! The ARM target demonstrates the retargetability of the BURS back-end: the same AST
//! reduces to three-operand RISC instructions (`add R1, R1, #4`), immediates carry the
//! `#` prefix, conditional branches use `b<cc>`, and returns are `mov PC, R14`.

use crate::ast::TreeOp;
use crate::burs::{Burs, EmitCtx, Nonterminal, Rule};
use autodist_ir::quad::Reg;

/// Maps a virtual register onto an ARM register name.
pub fn arm_reg_name(r: Reg) -> String {
    format!("R{}", r.0.min(12))
}

fn dst_name(n: &crate::ast::TreeNode, ctx: &mut EmitCtx) -> String {
    match n.dst {
        Some(r) => ctx.reg_name(r, arm_reg_name),
        None => ctx.result_reg.clone(),
    }
}

fn bin_mnemonic(m: &str) -> &'static str {
    match m {
        "ADD" => "add",
        "SUB" => "sub",
        "MUL" => "mul",
        "DIV" => "sdiv",
        "REM" => "srem",
        "AND" => "and",
        "OR" => "orr",
        "XOR" => "eor",
        "SHL" => "lsl",
        "SHR" => "asr",
        _ => "op",
    }
}

fn cond_branch(m: &str) -> &'static str {
    match m {
        "EQ" => "beq",
        "NE" => "bne",
        "LT" => "blt",
        "LE" => "ble",
        "GT" => "bgt",
        "GE" => "bge",
        _ => "b",
    }
}

/// Builds the StrongARM rule table.
pub fn arm_rules() -> Burs {
    let rules = vec![
        Rule {
            name: "arm.reg",
            produces: Nonterminal::Reg,
            matches: Box::new(|op| matches!(op, TreeOp::RegLeaf(_))),
            child_nts: vec![],
            variadic: false,
            cost: 0,
            emit: Box::new(|n, _, ctx| {
                let r = match n.op {
                    TreeOp::RegLeaf(r) => r,
                    _ => unreachable!(),
                };
                (vec![], ctx.reg_name(r, arm_reg_name))
            }),
        },
        Rule {
            name: "arm.imm",
            produces: Nonterminal::Imm,
            matches: Box::new(|op| {
                matches!(
                    op,
                    TreeOp::IConstLeaf(_)
                        | TreeOp::SConstLeaf(_)
                        | TreeOp::NullLeaf
                        | TreeOp::FConstLeaf(_)
                )
            }),
            child_nts: vec![],
            variadic: false,
            cost: 0,
            emit: Box::new(|n, _, _| {
                let text = match &n.op {
                    TreeOp::IConstLeaf(v) => format!("#{v}"),
                    TreeOp::FConstLeaf(v) => format!("#{v}"),
                    TreeOp::SConstLeaf(s) => format!("=str_{}", s.len()),
                    TreeOp::NullLeaf => "#0".to_string(),
                    _ => unreachable!(),
                };
                (vec![], text)
            }),
        },
        Rule {
            name: "arm.move",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| matches!(op, TreeOp::Move)),
            child_nts: vec![Nonterminal::Imm],
            variadic: false,
            cost: 1,
            emit: Box::new(|n, ops, ctx| {
                let dst = dst_name(n, ctx);
                (vec![format!("mov {dst}, {}", ops[0])], String::new())
            }),
        },
        Rule {
            name: "arm.move_r",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| matches!(op, TreeOp::Move)),
            child_nts: vec![Nonterminal::Reg],
            variadic: false,
            cost: 1,
            emit: Box::new(|n, ops, ctx| {
                let dst = dst_name(n, ctx);
                if dst == ops[0] {
                    (vec![], String::new())
                } else {
                    (vec![format!("mov {dst}, {}", ops[0])], String::new())
                }
            }),
        },
        // Three-operand ALU: add Rd, Rn, Op2 (the second operand may be an immediate,
        // which is what makes the ARM encoding cheaper than two-instruction x86 here).
        Rule {
            name: "arm.bin_ri",
            produces: Nonterminal::Reg,
            matches: Box::new(|op| matches!(op, TreeOp::Bin(_))),
            child_nts: vec![Nonterminal::Reg, Nonterminal::Imm],
            variadic: false,
            cost: 1,
            emit: Box::new(|n, ops, ctx| {
                let m = match n.op {
                    TreeOp::Bin(m) => m,
                    _ => unreachable!(),
                };
                let dst = dst_name(n, ctx);
                (
                    vec![format!("{} {dst}, {}, {}", bin_mnemonic(m), ops[0], ops[1])],
                    dst,
                )
            }),
        },
        Rule {
            name: "arm.bin_rr",
            produces: Nonterminal::Reg,
            matches: Box::new(|op| matches!(op, TreeOp::Bin(_))),
            child_nts: vec![Nonterminal::Reg, Nonterminal::Reg],
            variadic: false,
            cost: 2,
            emit: Box::new(|n, ops, ctx| {
                let m = match n.op {
                    TreeOp::Bin(m) => m,
                    _ => unreachable!(),
                };
                let dst = dst_name(n, ctx);
                (
                    vec![format!("{} {dst}, {}, {}", bin_mnemonic(m), ops[0], ops[1])],
                    dst,
                )
            }),
        },
        Rule {
            name: "arm.bin_stmt",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| matches!(op, TreeOp::Bin(_) | TreeOp::Un(_))),
            child_nts: vec![Nonterminal::Reg],
            variadic: true,
            cost: 2,
            emit: Box::new(|n, ops, ctx| {
                let dst = dst_name(n, ctx);
                let line = match &n.op {
                    TreeOp::Bin(m) => format!(
                        "{} {dst}, {}, {}",
                        bin_mnemonic(m),
                        ops.first().cloned().unwrap_or_default(),
                        ops.get(1).cloned().unwrap_or_default()
                    ),
                    TreeOp::Un(_) => format!(
                        "rsb {dst}, {}, #0",
                        ops.first().cloned().unwrap_or_default()
                    ),
                    _ => unreachable!(),
                };
                (vec![line], String::new())
            }),
        },
        Rule {
            name: "arm.un",
            produces: Nonterminal::Reg,
            matches: Box::new(|op| matches!(op, TreeOp::Un(_))),
            child_nts: vec![Nonterminal::Reg],
            variadic: false,
            cost: 1,
            emit: Box::new(|n, ops, ctx| {
                let dst = dst_name(n, ctx);
                (vec![format!("rsb {dst}, {}, #0", ops[0])], dst)
            }),
        },
        Rule {
            name: "arm.ifcmp",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| matches!(op, TreeOp::IfCmp { .. })),
            child_nts: vec![Nonterminal::Imm],
            variadic: true,
            cost: 2,
            emit: Box::new(|n, ops, _| {
                let (cond, target) = match &n.op {
                    TreeOp::IfCmp { cond, target } => (*cond, *target),
                    _ => unreachable!(),
                };
                (
                    vec![
                        format!("cmp {}, {}", ops[0], ops[1]),
                        format!("{} BB{}", cond_branch(cond), target.0),
                    ],
                    String::new(),
                )
            }),
        },
        // Mixed-operand compare: the first operand must be a register on ARM.
        Rule {
            name: "arm.ifcmp_r",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| matches!(op, TreeOp::IfCmp { .. })),
            child_nts: vec![Nonterminal::Reg, Nonterminal::Imm],
            variadic: false,
            cost: 2,
            emit: Box::new(|n, ops, _| {
                let (cond, target) = match &n.op {
                    TreeOp::IfCmp { cond, target } => (*cond, *target),
                    _ => unreachable!(),
                };
                (
                    vec![
                        format!("cmp {}, {}", ops[0], ops[1]),
                        format!("{} BB{}", cond_branch(cond), target.0),
                    ],
                    String::new(),
                )
            }),
        },
        Rule {
            name: "arm.ifcmp_rr",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| matches!(op, TreeOp::IfCmp { .. })),
            child_nts: vec![Nonterminal::Reg, Nonterminal::Reg],
            variadic: false,
            cost: 3,
            emit: Box::new(|n, ops, _| {
                let (cond, target) = match &n.op {
                    TreeOp::IfCmp { cond, target } => (*cond, *target),
                    _ => unreachable!(),
                };
                (
                    vec![
                        format!("cmp {}, {}", ops[0], ops[1]),
                        format!("{} BB{}", cond_branch(cond), target.0),
                    ],
                    String::new(),
                )
            }),
        },
        Rule {
            name: "arm.goto",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| matches!(op, TreeOp::Goto(_))),
            child_nts: vec![],
            variadic: false,
            cost: 1,
            emit: Box::new(|n, _, _| {
                let t = match &n.op {
                    TreeOp::Goto(t) => *t,
                    _ => unreachable!(),
                };
                (vec![format!("b BB{}", t.0)], String::new())
            }),
        },
        Rule {
            name: "arm.ret",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| matches!(op, TreeOp::Return)),
            child_nts: vec![Nonterminal::Reg],
            variadic: true,
            cost: 1,
            emit: Box::new(|_, ops, ctx| {
                let mut lines = Vec::new();
                if let Some(v) = ops.first() {
                    if *v != ctx.result_reg {
                        lines.push(format!("mov {}, {v}", ctx.result_reg));
                    }
                }
                lines.push("mov PC, R14".to_string());
                (lines, String::new())
            }),
        },
        Rule {
            name: "arm.call",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| matches!(op, TreeOp::Invoke(_))),
            child_nts: vec![Nonterminal::Reg],
            variadic: true,
            cost: 3,
            emit: Box::new(|n, ops, ctx| {
                let name = match &n.op {
                    TreeOp::Invoke(m) => m.clone(),
                    _ => unreachable!(),
                };
                let mut lines = Vec::new();
                for (i, a) in ops.iter().enumerate().take(4) {
                    if *a != format!("R{i}") {
                        lines.push(format!("mov R{i}, {a}"));
                    }
                }
                lines.push(format!("bl {name}"));
                if let Some(d) = n.dst {
                    let dst = ctx.reg_name(d, arm_reg_name);
                    if dst != "R0" {
                        lines.push(format!("mov {dst}, R0"));
                    }
                }
                (lines, String::new())
            }),
        },
        Rule {
            name: "arm.mem_read",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| {
                matches!(
                    op,
                    TreeOp::GetField(_) | TreeOp::GetStatic(_) | TreeOp::ALoad | TreeOp::ALen
                )
            }),
            child_nts: vec![Nonterminal::Reg],
            variadic: true,
            cost: 2,
            emit: Box::new(|n, ops, ctx| {
                let dst = dst_name(n, ctx);
                let line = match &n.op {
                    TreeOp::GetField(f) => {
                        format!(
                            "ldr {dst}, [{}, #{f}]",
                            ops.first().cloned().unwrap_or_default()
                        )
                    }
                    TreeOp::GetStatic(f) => format!("ldr {dst}, ={f}"),
                    TreeOp::ALoad => format!(
                        "ldr {dst}, [{}, {}, lsl #3]",
                        ops.first().cloned().unwrap_or_default(),
                        ops.get(1).cloned().unwrap_or_default()
                    ),
                    TreeOp::ALen => {
                        format!(
                            "ldr {dst}, [{}, #-8]",
                            ops.first().cloned().unwrap_or_default()
                        )
                    }
                    _ => unreachable!(),
                };
                (vec![line], String::new())
            }),
        },
        Rule {
            name: "arm.mem_write",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| {
                matches!(
                    op,
                    TreeOp::PutField(_) | TreeOp::PutStatic(_) | TreeOp::AStore
                )
            }),
            child_nts: vec![Nonterminal::Reg],
            variadic: true,
            cost: 2,
            emit: Box::new(|n, ops, _| {
                let line = match &n.op {
                    TreeOp::PutField(f) => format!(
                        "str {}, [{}, #{f}]",
                        ops.get(1).cloned().unwrap_or_default(),
                        ops.first().cloned().unwrap_or_default()
                    ),
                    TreeOp::PutStatic(f) => {
                        format!("str {}, ={f}", ops.first().cloned().unwrap_or_default())
                    }
                    TreeOp::AStore => format!(
                        "str {}, [{}, {}, lsl #3]",
                        ops.get(2).cloned().unwrap_or_default(),
                        ops.first().cloned().unwrap_or_default(),
                        ops.get(1).cloned().unwrap_or_default()
                    ),
                    _ => unreachable!(),
                };
                (vec![line], String::new())
            }),
        },
        Rule {
            name: "arm.new",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| matches!(op, TreeOp::New(_) | TreeOp::NewArray)),
            child_nts: vec![Nonterminal::Reg],
            variadic: true,
            cost: 3,
            emit: Box::new(|n, ops, ctx| {
                let dst = dst_name(n, ctx);
                let mut lines = Vec::new();
                match &n.op {
                    TreeOp::New(c) => lines.push(format!("bl rt_new_{c}")),
                    TreeOp::NewArray => {
                        if let Some(len) = ops.first() {
                            lines.push(format!("mov R0, {len}"));
                        }
                        lines.push("bl rt_new_array".to_string());
                    }
                    _ => unreachable!(),
                }
                if dst != "R0" {
                    lines.push(format!("mov {dst}, R0"));
                }
                (lines, String::new())
            }),
        },
    ];
    Burs {
        rules,
        imm_to_reg_cost: 1,
        imm_to_reg: Box::new(|imm, ctx| {
            let t = ctx.fresh_temp("R");
            (vec![format!("mov {t}, {imm}")], t)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::TreeNode;
    use autodist_ir::quad::BlockId;

    #[test]
    fn move_constant_uses_immediate_syntax() {
        let burs = arm_rules();
        let tree = TreeNode {
            op: TreeOp::Move,
            dst: Some(Reg(1)),
            children: vec![TreeNode {
                op: TreeOp::IConstLeaf(4),
                dst: None,
                children: vec![],
            }],
        };
        let mut ctx = EmitCtx::new("R0");
        assert_eq!(burs.reduce(&tree, &mut ctx), vec!["mov R1, #4"]);
    }

    #[test]
    fn compare_and_branch_matches_figure7() {
        let burs = arm_rules();
        let tree = TreeNode {
            op: TreeOp::IfCmp {
                cond: "LE",
                target: BlockId(4),
            },
            dst: None,
            children: vec![
                TreeNode {
                    op: TreeOp::IConstLeaf(4),
                    dst: None,
                    children: vec![],
                },
                TreeNode {
                    op: TreeOp::IConstLeaf(2),
                    dst: None,
                    children: vec![],
                },
            ],
        };
        let mut ctx = EmitCtx::new("R0");
        assert_eq!(burs.reduce(&tree, &mut ctx), vec!["cmp #4, #2", "ble BB4"]);
    }

    #[test]
    fn three_operand_add_with_immediate_is_a_single_instruction() {
        // Figure 7: `add R1, 4, 4` — one instruction where x86 needs mov + add.
        let burs = arm_rules();
        let tree = TreeNode {
            op: TreeOp::Bin("ADD"),
            dst: Some(Reg(1)),
            children: vec![
                TreeNode {
                    op: TreeOp::RegLeaf(Reg(1)),
                    dst: None,
                    children: vec![],
                },
                TreeNode {
                    op: TreeOp::IConstLeaf(1),
                    dst: None,
                    children: vec![],
                },
            ],
        };
        // Cost through the reg,imm rule should be lower than reg,reg + materialisation.
        assert_eq!(burs.derivation_cost(&tree, Nonterminal::Reg), Some(1));
        let x86 = crate::x86::x86_rules();
        let arm_cost = burs.derivation_cost(&tree, Nonterminal::Reg).unwrap();
        let x86_cost = x86.derivation_cost(&tree, Nonterminal::Reg).unwrap();
        assert!(arm_cost <= x86_cost);
    }

    #[test]
    fn return_restores_pc_from_link_register() {
        let burs = arm_rules();
        let tree = TreeNode {
            op: TreeOp::Return,
            dst: None,
            children: vec![TreeNode {
                op: TreeOp::RegLeaf(Reg(1)),
                dst: None,
                children: vec![],
            }],
        };
        let mut ctx = EmitCtx::new("R0");
        let lines = burs.reduce(&tree, &mut ctx);
        assert_eq!(lines.last().unwrap(), "mov PC, R14");
    }
}
