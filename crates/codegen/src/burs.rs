//! A small bottom-up rewrite system (BURS) engine.
//!
//! This plays the role of JBurg in the paper: a code-generator generator. A target is a
//! table of [`Rule`]s; each rule matches a tree operator, requires its children to be
//! derivable as particular [`Nonterminal`]s, has a cost, and knows how to emit target
//! code. Generation is two passes over each AST (exactly as the paper describes):
//!
//! 1. **Labelling** — dynamic programming bottom-up over the tree computing, for every
//!    node and every nonterminal, the cheapest way to derive that nonterminal at that
//!    node (including chain derivations such as "materialise an immediate in a
//!    register").
//! 2. **Reduction** — top-down walk that follows the recorded cheapest rules and emits
//!    instructions.

use std::collections::HashMap;

use crate::ast::{TreeNode, TreeOp};
use autodist_ir::quad::Reg;

/// The grammar nonterminals of the code-generation grammar.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Nonterminal {
    /// A completed statement (no result value).
    Stmt,
    /// A value available in a register.
    Reg,
    /// A value available as an immediate operand.
    Imm,
}

const NT_COUNT: usize = 3;

fn nt_index(nt: Nonterminal) -> usize {
    match nt {
        Nonterminal::Stmt => 0,
        Nonterminal::Reg => 1,
        Nonterminal::Imm => 2,
    }
}

/// Emission context shared across a method: allocates scratch registers and names
/// virtual registers for the target.
pub struct EmitCtx {
    /// The register used to return values / accumulate results (e.g. `eax`).
    pub result_reg: String,
    /// Counter for temporaries.
    next_temp: u32,
    /// Virtual-register to target-register name cache.
    reg_names: HashMap<Reg, String>,
}

impl EmitCtx {
    /// Creates a context whose canonical result register is `result_reg`.
    pub fn new(result_reg: &str) -> Self {
        EmitCtx {
            result_reg: result_reg.to_string(),
            next_temp: 0,
            reg_names: HashMap::new(),
        }
    }

    /// Returns a fresh scratch register name with the given prefix.
    pub fn fresh_temp(&mut self, prefix: &str) -> String {
        let t = format!("{prefix}{}", self.next_temp + 8);
        self.next_temp += 1;
        t
    }

    /// Names a virtual register on this target, memoised so the same virtual register
    /// always maps to the same name.
    pub fn reg_name(&mut self, reg: Reg, namer: impl Fn(Reg) -> String) -> String {
        self.reg_names
            .entry(reg)
            .or_insert_with(|| namer(reg))
            .clone()
    }
}

/// The emit callback: receives the node, the already-reduced child operand strings and
/// the context; returns emitted lines plus the operand string holding this node's
/// result (empty for statements).
pub type EmitFn = Box<dyn Fn(&TreeNode, &[String], &mut EmitCtx) -> (Vec<String>, String)>;

/// Emitter materialising an immediate into a register: takes the immediate's text,
/// returns the emitted lines and the register holding the value.
pub type ImmEmitFn = Box<dyn Fn(&str, &mut EmitCtx) -> (Vec<String>, String)>;

/// A single BURS rule.
pub struct Rule {
    /// Human-readable rule name (useful in tests and debugging).
    pub name: &'static str,
    /// The nonterminal this rule derives.
    pub produces: Nonterminal,
    /// Root pattern: does the node operator match?
    pub matches: Box<dyn Fn(&TreeOp) -> bool>,
    /// Required nonterminals of the children. If `variadic` is set, every child must
    /// derive `child_nts[0]` regardless of arity.
    pub child_nts: Vec<Nonterminal>,
    /// Accept any number of children, all deriving `child_nts[0]`.
    pub variadic: bool,
    /// Rule cost (target instruction count / latency estimate).
    pub cost: u32,
    /// Code emitter.
    pub emit: EmitFn,
}

/// A target: a rule table plus the chain rule that materialises an immediate into a
/// register.
pub struct Burs {
    /// The rule table.
    pub rules: Vec<Rule>,
    /// Cost of the `reg <- imm` chain derivation.
    pub imm_to_reg_cost: u32,
    /// Emitter for the `reg <- imm` chain derivation.
    pub imm_to_reg: ImmEmitFn,
}

/// Per-node labelling result: for each nonterminal, the cheapest derivation.
#[derive(Clone, Debug, Default)]
struct Label {
    /// `cost[nt]` = (total cost, rule index) — `None` if not derivable.
    best: [Option<(u32, usize)>; NT_COUNT],
    /// Whether the Reg derivation goes through the imm chain rule.
    reg_via_imm: bool,
}

impl Burs {
    /// Labels a tree: computes the cheapest derivation of every nonterminal at every
    /// node. Returns one label per node in post-order (children before parents), along
    /// with the matching post-order node list.
    fn label(&self, node: &TreeNode, labels: &mut Vec<Label>) -> usize {
        let child_indices: Vec<usize> = node
            .children
            .iter()
            .map(|c| self.label(c, labels))
            .collect();

        let mut label = Label::default();
        for (ri, rule) in self.rules.iter().enumerate() {
            if !(rule.matches)(&node.op) {
                continue;
            }
            if !rule.variadic && rule.child_nts.len() != node.children.len() {
                continue;
            }
            // Sum child costs for the required nonterminals.
            let mut total = rule.cost;
            let mut ok = true;
            for (i, &ci) in child_indices.iter().enumerate() {
                let need = if rule.variadic {
                    rule.child_nts[0]
                } else {
                    rule.child_nts[i]
                };
                match labels[ci].best[nt_index(need)] {
                    Some((c, _)) => total += c,
                    None => {
                        // The child may still be derivable via the imm->reg chain.
                        if need == Nonterminal::Reg {
                            if let Some((c, _)) = labels[ci].best[nt_index(Nonterminal::Imm)] {
                                total += c + self.imm_to_reg_cost;
                                continue;
                            }
                        }
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let slot = &mut label.best[nt_index(rule.produces)];
            if slot.map(|(c, _)| total < c).unwrap_or(true) {
                *slot = Some((total, ri));
            }
        }
        // Chain closure: Reg from Imm.
        if let Some((ic, _)) = label.best[nt_index(Nonterminal::Imm)] {
            let via = ic + self.imm_to_reg_cost;
            let slot = &mut label.best[nt_index(Nonterminal::Reg)];
            if slot.map(|(c, _)| via < c).unwrap_or(true) {
                *slot = Some((via, usize::MAX));
                label.reg_via_imm = true;
            }
        }
        labels.push(label);
        labels.len() - 1
    }

    /// Reduces `node` to the given `goal` nonterminal, emitting instructions into
    /// `out`. Returns the operand string holding the result.
    fn reduce_to(
        &self,
        node: &TreeNode,
        goal: Nonterminal,
        ctx: &mut EmitCtx,
        out: &mut Vec<String>,
    ) -> String {
        // Re-label locally (trees are tiny, so the repeated labelling cost is noise).
        let mut labels = Vec::new();
        self.label(node, &mut labels);
        let root_label = labels.last().unwrap().clone();

        let chosen = root_label.best[nt_index(goal)];
        match chosen {
            Some((_, usize::MAX)) => {
                // Chain: derive Imm first, then materialise.
                let imm = self.reduce_to(node, Nonterminal::Imm, ctx, out);
                let (lines, operand) = (self.imm_to_reg)(&imm, ctx);
                out.extend(lines);
                operand
            }
            Some((_, ri)) => {
                let rule = &self.rules[ri];
                let mut child_ops = Vec::new();
                for (i, c) in node.children.iter().enumerate() {
                    let need = if rule.variadic {
                        rule.child_nts[0]
                    } else {
                        rule.child_nts[i]
                    };
                    child_ops.push(self.reduce_to(c, need, ctx, out));
                }
                let (lines, operand) = (rule.emit)(node, &child_ops, ctx);
                out.extend(lines);
                operand
            }
            None => {
                // No derivation: fall back to a comment so the output stays inspectable
                // rather than panicking on exotic trees.
                out.push(format!("; unsupported tree op {:?}", node.op));
                String::new()
            }
        }
    }

    /// Reduces a statement tree (a quad root) to target code.
    pub fn reduce(&self, tree: &TreeNode, ctx: &mut EmitCtx) -> Vec<String> {
        let mut out = Vec::new();
        self.reduce_to(tree, Nonterminal::Stmt, ctx, &mut out);
        out
    }

    /// The minimum derivation cost of `goal` for the tree, if derivable. Exposed for
    /// tests and for the ablation bench comparing rule tables.
    pub fn derivation_cost(&self, tree: &TreeNode, goal: Nonterminal) -> Option<u32> {
        let mut labels = Vec::new();
        self.label(tree, &mut labels);
        labels.last().unwrap().best[nt_index(goal)].map(|(c, _)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{TreeNode, TreeOp};

    /// A toy target with: imm leaves, reg leaves, add(reg, imm) cheap, add(reg, reg)
    /// expensive — the labeler must pick the cheap form when the rhs is an immediate.
    fn toy_target() -> Burs {
        let rules = vec![
            Rule {
                name: "imm",
                produces: Nonterminal::Imm,
                matches: Box::new(|op| matches!(op, TreeOp::IConstLeaf(_))),
                child_nts: vec![],
                variadic: false,
                cost: 0,
                emit: Box::new(|n, _, _| {
                    let v = match n.op {
                        TreeOp::IConstLeaf(v) => v,
                        _ => unreachable!(),
                    };
                    (vec![], format!("{v}"))
                }),
            },
            Rule {
                name: "reg",
                produces: Nonterminal::Reg,
                matches: Box::new(|op| matches!(op, TreeOp::RegLeaf(_))),
                child_nts: vec![],
                variadic: false,
                cost: 0,
                emit: Box::new(|n, _, ctx| {
                    let r = match n.op {
                        TreeOp::RegLeaf(r) => r,
                        _ => unreachable!(),
                    };
                    (vec![], ctx.reg_name(r, |r| format!("r{}", r.0)))
                }),
            },
            Rule {
                name: "add_ri",
                produces: Nonterminal::Reg,
                matches: Box::new(|op| matches!(op, TreeOp::Bin("ADD"))),
                child_nts: vec![Nonterminal::Reg, Nonterminal::Imm],
                variadic: false,
                cost: 1,
                emit: Box::new(|_, ops, _| {
                    (vec![format!("addi {}, {}", ops[0], ops[1])], ops[0].clone())
                }),
            },
            Rule {
                name: "add_rr",
                produces: Nonterminal::Reg,
                matches: Box::new(|op| matches!(op, TreeOp::Bin("ADD"))),
                child_nts: vec![Nonterminal::Reg, Nonterminal::Reg],
                variadic: false,
                cost: 3,
                emit: Box::new(|_, ops, _| {
                    (vec![format!("add {}, {}", ops[0], ops[1])], ops[0].clone())
                }),
            },
            Rule {
                name: "move",
                produces: Nonterminal::Stmt,
                matches: Box::new(|op| matches!(op, TreeOp::Move)),
                child_nts: vec![Nonterminal::Reg],
                variadic: false,
                cost: 1,
                emit: Box::new(|n, ops, ctx| {
                    let dst = ctx.reg_name(n.dst.unwrap(), |r| format!("r{}", r.0));
                    (vec![format!("mov {dst}, {}", ops[0])], String::new())
                }),
            },
        ];
        Burs {
            rules,
            imm_to_reg_cost: 1,
            imm_to_reg: Box::new(|imm, ctx| {
                let t = ctx.fresh_temp("t");
                (vec![format!("li {t}, {imm}")], t)
            }),
        }
    }

    fn add_tree(rhs_imm: bool) -> TreeNode {
        let rhs = if rhs_imm {
            TreeNode {
                op: TreeOp::IConstLeaf(4),
                dst: None,
                children: vec![],
            }
        } else {
            TreeNode {
                op: TreeOp::RegLeaf(autodist_ir::Reg(2)),
                dst: None,
                children: vec![],
            }
        };
        TreeNode {
            op: TreeOp::Move,
            dst: Some(autodist_ir::Reg(1)),
            children: vec![TreeNode {
                op: TreeOp::Bin("ADD"),
                dst: Some(autodist_ir::Reg(1)),
                children: vec![
                    TreeNode {
                        op: TreeOp::RegLeaf(autodist_ir::Reg(1)),
                        dst: None,
                        children: vec![],
                    },
                    rhs,
                ],
            }],
        }
    }

    #[test]
    fn labeler_prefers_the_cheaper_rule() {
        let t = toy_target();
        // add reg, imm: move(1) + add_ri(1) = 2
        assert_eq!(
            t.derivation_cost(&add_tree(true), Nonterminal::Stmt),
            Some(2)
        );
        // add reg, reg: move(1) + add_rr(3) = 4
        assert_eq!(
            t.derivation_cost(&add_tree(false), Nonterminal::Stmt),
            Some(4)
        );
    }

    #[test]
    fn reduction_emits_the_chosen_instructions() {
        let t = toy_target();
        let mut ctx = EmitCtx::new("r0");
        let lines = t.reduce(&add_tree(true), &mut ctx);
        assert_eq!(lines, vec!["addi r1, 4", "mov r1, r1"]);
    }

    #[test]
    fn chain_rule_materialises_immediates_when_needed() {
        // A Move whose operand is an immediate: the move rule wants a Reg child, so the
        // imm must go through the chain rule.
        let t = toy_target();
        let tree = TreeNode {
            op: TreeOp::Move,
            dst: Some(autodist_ir::Reg(3)),
            children: vec![TreeNode {
                op: TreeOp::IConstLeaf(7),
                dst: None,
                children: vec![],
            }],
        };
        let mut ctx = EmitCtx::new("r0");
        let lines = t.reduce(&tree, &mut ctx);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("li "), "{lines:?}");
        assert!(lines[1].starts_with("mov r3"), "{lines:?}");
    }

    #[test]
    fn unsupported_ops_degrade_to_comments() {
        let t = toy_target();
        let tree = TreeNode {
            op: TreeOp::Return,
            dst: None,
            children: vec![],
        };
        let mut ctx = EmitCtx::new("r0");
        let lines = t.reduce(&tree, &mut ctx);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with(';'));
    }

    #[test]
    fn emit_ctx_temp_names_are_unique_and_reg_names_memoised() {
        let mut ctx = EmitCtx::new("eax");
        let a = ctx.fresh_temp("t");
        let b = ctx.fresh_temp("t");
        assert_ne!(a, b);
        let r1 = ctx.reg_name(autodist_ir::Reg(5), |r| format!("r{}", r.0));
        let r2 = ctx.reg_name(autodist_ir::Reg(5), |_| "something-else".to_string());
        assert_eq!(r1, r2, "memoised");
    }
}
