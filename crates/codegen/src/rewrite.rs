//! Communication generation: bytecode rewriting for distributed execution.
//!
//! Once every object has a virtual-processor number, each node receives its own copy of
//! the program in which accesses to *dependent* (remote) objects are replaced by
//! operations on `rt/DependentObject` proxies (paper Section 4.2, Figures 8 and 9):
//!
//! * `new Account(i, n, s, c)` on a node that does not host `Account` becomes
//!   `new DependentObject` + `DependentObject.<init>(location, "Account", argsList)` —
//!   at run time this sends a `NEW` message to the home node, which creates the object;
//! * `account.getSavings()` becomes
//!   `DependentObject.access(INVOKE_METHOD_HASRETURN, "getSavings", argsList)` — a
//!   `DEPENDENCE` message round-trip;
//! * field reads/writes become `access(GET_FIELD / PUT_FIELD, name, argsList)`.
//!
//! The placement is type based (classes are mapped to nodes), mirroring the paper's
//! "our analysis is type-based and thus, not very precise"; the runtime transparently
//! forwards accesses that reach an object which nevertheless lives remotely, so the
//! imprecision affects performance, never correctness. Static methods and static fields
//! are replicated on every node rather than proxied (a documented simplification).

use std::collections::BTreeMap;

use autodist_analysis::odg::{ObjectDependenceGraph, OdgNode};
use autodist_ir::bytecode::{Const, Insn, InvokeKind};
use autodist_ir::program::{ClassId, MethodId, Program, Type};
use autodist_partition::Partitioning;

/// Name of the synthetic proxy class injected into every rewritten program.
pub const DEPENDENT_OBJECT_CLASS: &str = "rt/DependentObject";

/// `access` kind: invoke a void method on the remote object.
pub const ACCESS_INVOKE_VOID: i64 = 1;
/// `access` kind: invoke a value-returning method on the remote object.
pub const ACCESS_INVOKE_HASRETURN: i64 = 2;
/// `access` kind: read a field of the remote object.
pub const ACCESS_GET_FIELD: i64 = 3;
/// `access` kind: write a field of the remote object.
pub const ACCESS_PUT_FIELD: i64 = 4;

/// A mapping from classes to the node (virtual processor) that hosts their instances.
#[derive(Clone, Debug, Default)]
pub struct ClassPlacement {
    /// Home node per class. Classes not present default to node 0.
    pub home: BTreeMap<ClassId, usize>,
    /// Number of nodes.
    pub nparts: usize,
}

impl ClassPlacement {
    /// The home node of `class` (0 if unassigned).
    pub fn home_of(&self, class: ClassId) -> usize {
        self.home.get(&class).copied().unwrap_or(0)
    }

    /// Places every class on node 0 (the centralized baseline).
    pub fn centralized(nparts: usize) -> Self {
        ClassPlacement {
            home: BTreeMap::new(),
            nparts: nparts.max(1),
        }
    }

    /// Derives a class-level placement from an ODG partitioning by majority vote of the
    /// partition assignments of each class's object nodes. The entry class (the class
    /// whose static part runs `main`) is pinned to node 0, matching the paper's
    /// Execution Starter which launches the application on the user's node.
    pub fn from_odg_partition(
        program: &Program,
        odg: &ObjectDependenceGraph,
        partitioning: &Partitioning,
    ) -> Self {
        let mut votes: BTreeMap<ClassId, Vec<usize>> = BTreeMap::new();
        for (i, node) in odg.nodes.iter().enumerate() {
            let part = partitioning.assignment.get(i).copied().unwrap_or(0);
            let class = match node {
                OdgNode::Object { class, .. } => *class,
                OdgNode::StaticRoot { class } => *class,
            };
            votes.entry(class).or_default().push(part);
        }
        let mut home = BTreeMap::new();
        for (class, parts) in &votes {
            let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
            for &p in parts {
                *counts.entry(p).or_insert(0) += 1;
            }
            let best = counts
                .into_iter()
                .max_by_key(|&(p, c)| (c, std::cmp::Reverse(p)))
                .map(|(p, _)| p)
                .unwrap_or(0);
            home.insert(*class, best);
        }
        // The majority vote can undo the partitioner's min-parallelism guarantee: a
        // class whose objects split 60/40 across nodes still lands wholly on the
        // majority node, and with few classes that can collapse the whole placement
        // onto one node (zero messages, no offloading). If that happens, move the
        // class with the strongest minority affinity — the one the partitioner most
        // wanted elsewhere — to its minority part.
        let populated: std::collections::BTreeSet<usize> = home.values().copied().collect();
        if populated.len() < 2 && partitioning.nparts >= 2 && home.len() >= 2 {
            let sole = populated.iter().next().copied().unwrap_or(0);
            let entry_class = program.entry.map(|e| program.method(e).class);
            let best_move = votes
                .iter()
                .filter(|(c, _)| Some(**c) != entry_class)
                .filter_map(|(c, parts)| {
                    let total = parts.len().max(1);
                    let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
                    for &p in parts.iter().filter(|&&p| p != sole) {
                        *counts.entry(p).or_insert(0) += 1;
                    }
                    counts
                        .into_iter()
                        .max_by_key(|&(_, n)| n)
                        .map(|(p, n)| (n * 1000 / total, *c, p))
                })
                .max();
            match best_move {
                Some((_, class, part)) => {
                    home.insert(class, part);
                }
                None => {
                    // No minority votes at all: fall back to evicting the class with
                    // the fewest objects to the next node.
                    if let Some((_, class)) = votes
                        .iter()
                        .filter(|(c, _)| Some(**c) != entry_class)
                        .map(|(c, parts)| (parts.len(), *c))
                        .min()
                    {
                        home.insert(class, (sole + 1) % partitioning.nparts);
                    }
                }
            }
        }
        // The Execution Starter runs `main` on node 0, so the entry class must live
        // there. Rather than overriding its assignment (which would merge it with
        // whatever else is on node 0 and distort the cut), renumber the parts so the
        // entry class's part *becomes* node 0.
        if let Some(entry) = program.entry {
            let entry_class = program.method(entry).class;
            let entry_part = home.get(&entry_class).copied().unwrap_or(0);
            if entry_part != 0 {
                for part in home.values_mut() {
                    if *part == entry_part {
                        *part = 0;
                    } else if *part == 0 {
                        *part = entry_part;
                    }
                }
            }
            home.insert(entry_class, 0);
        }
        ClassPlacement {
            home,
            nparts: partitioning.nparts.max(1),
        }
    }

    /// Number of classes assigned to each node.
    pub fn classes_per_node(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nparts.max(1)];
        for &p in self.home.values() {
            if p < counts.len() {
                counts[p] += 1;
            }
        }
        counts
    }
}

/// Counters describing how much rewriting happened.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Remote `new` sites transformed (Figure 9 transformations).
    pub rewritten_allocations: usize,
    /// Remote method invocations transformed (Figure 8 transformations).
    pub rewritten_invocations: usize,
    /// Remote field reads/writes transformed.
    pub rewritten_field_accesses: usize,
    /// Methods whose body changed.
    pub methods_transformed: usize,
}

impl RewriteStats {
    /// Total number of rewritten program points.
    pub fn total_sites(&self) -> usize {
        self.rewritten_allocations + self.rewritten_invocations + self.rewritten_field_accesses
    }
}

/// The per-node program copy produced by communication generation.
#[derive(Clone, Debug)]
pub struct RewrittenProgram {
    /// The transformed program (includes the synthetic `rt/DependentObject` class).
    pub program: Program,
    /// The node this copy is for.
    pub node: usize,
    /// Rewrite counters.
    pub stats: RewriteStats,
    /// Id of the injected `rt/DependentObject` class.
    pub dependent_object: ClassId,
    /// Id of `DependentObject.access`.
    pub access_method: MethodId,
    /// Id of `DependentObject.<init>`.
    pub init_method: MethodId,
}

/// Ensures the synthetic `rt/DependentObject` class exists in `program`, returning
/// `(class, init, access)` ids.
pub fn ensure_dependent_object(program: &mut Program) -> (ClassId, MethodId, MethodId) {
    if let Some(c) = program.class_by_name(DEPENDENT_OBJECT_CLASS) {
        let init = program.find_method(c, "<init>").expect("init exists");
        let access = program.find_method(c, "access").expect("access exists");
        return (c, init, access);
    }
    let c = program.add_class(DEPENDENT_OBJECT_CLASS, None);
    program.class_mut(c).is_synthetic = true;
    program.add_field(c, "home", Type::Int, false);
    program.add_field(c, "className", Type::Str, false);
    program.add_field(c, "remoteId", Type::Int, false);
    // Bodies stay empty: the runtime intercepts calls on this class and performs the
    // MPI message exchange instead of interpreting bytecode.
    let init = program.add_method(
        c,
        "<init>",
        vec![Type::Int, Type::Str, Type::Array(Box::new(Type::Int))],
        Type::Void,
        false,
    );
    let access = program.add_method(
        c,
        "access",
        vec![Type::Int, Type::Str, Type::Array(Box::new(Type::Int))],
        Type::Int,
        false,
    );
    (c, init, access)
}

/// Produces the rewritten program copy for `node`.
pub fn rewrite_for_node(
    program: &Program,
    placement: &ClassPlacement,
    node: usize,
) -> RewrittenProgram {
    let mut out = program.clone();
    out.rebuild_index();
    let (dep_class, init_method, access_method) = ensure_dependent_object(&mut out);
    let mut stats = RewriteStats::default();

    let method_ids: Vec<MethodId> = out.methods.iter().map(|m| m.id).collect();
    for mid in method_ids {
        if out.class(out.method(mid).class).is_synthetic {
            continue;
        }
        if out.method(mid).body.is_empty() {
            continue;
        }
        let (new_body, new_locals, mstats) = rewrite_body(
            &out,
            mid,
            placement,
            node,
            dep_class,
            init_method,
            access_method,
        );
        if mstats.total_sites() > 0 {
            stats.rewritten_allocations += mstats.rewritten_allocations;
            stats.rewritten_invocations += mstats.rewritten_invocations;
            stats.rewritten_field_accesses += mstats.rewritten_field_accesses;
            stats.methods_transformed += 1;
            let m = out.method_mut(mid);
            m.body = new_body;
            m.locals = new_locals;
        }
    }

    RewrittenProgram {
        program: out,
        node,
        stats,
        dependent_object: dep_class,
        access_method,
        init_method,
    }
}

/// Rewrites one method body. Returns the new body, the new local count and per-method
/// rewrite counters.
#[allow(clippy::too_many_arguments)]
fn rewrite_body(
    program: &Program,
    mid: MethodId,
    placement: &ClassPlacement,
    node: usize,
    _dep_class: ClassId,
    init_method: MethodId,
    access_method: MethodId,
) -> (Vec<Insn>, u16, RewriteStats) {
    let method = program.method(mid);
    let mut stats = RewriteStats::default();
    let mut new_body: Vec<Insn> = Vec::with_capacity(method.body.len() * 2);
    let mut new_pos: Vec<usize> = Vec::with_capacity(method.body.len() + 1);
    let mut next_temp = method.locals.max(method.entry_locals());
    let dep_class_id = program
        .class_by_name(DEPENDENT_OBJECT_CLASS)
        .expect("DependentObject injected before rewriting");

    let is_remote_class =
        |c: ClassId| !program.class(c).is_synthetic && placement.home_of(c) != node;

    for insn in &method.body {
        new_pos.push(new_body.len());
        match insn {
            Insn::New(c) if is_remote_class(*c) => {
                // Figure 9, line 35: `new Account` -> `new DependentObject`.
                new_body.push(Insn::New(dep_class_id));
                if program.find_method(*c, "<init>").is_none() {
                    // The class has no constructor, so no later `invokespecial` will
                    // initialise the proxy: bind it to its remote object right away.
                    new_body.push(Insn::Dup);
                    new_body.push(Insn::Const(Const::Int(placement.home_of(*c) as i64)));
                    new_body.push(Insn::Const(Const::Str(program.class(*c).name.clone())));
                    push_args_array(&mut new_body, &[]);
                    new_body.push(Insn::Invoke(InvokeKind::Special, init_method));
                }
                stats.rewritten_allocations += 1;
            }
            Insn::Invoke(InvokeKind::Special, ctor)
                if program.method(*ctor).is_constructor()
                    && is_remote_class(program.method(*ctor).class) =>
            {
                // Figure 9: pack constructor arguments, pass the home node and the
                // class name, call DependentObject.<init>.
                let callee = program.method(*ctor);
                let k = callee.params.len();
                let class = callee.class;
                let temps: Vec<u16> = (0..k).map(|i| next_temp + i as u16).collect();
                next_temp += k as u16;
                for &t in temps.iter().rev() {
                    new_body.push(Insn::Store(t));
                }
                new_body.push(Insn::Const(Const::Int(placement.home_of(class) as i64)));
                new_body.push(Insn::Const(Const::Str(program.class(class).name.clone())));
                push_args_array(&mut new_body, &temps);
                new_body.push(Insn::Invoke(InvokeKind::Special, init_method));
                stats.rewritten_allocations += 1;
            }
            Insn::Invoke(InvokeKind::Virtual, target)
                if is_remote_class(program.method(*target).class) =>
            {
                // Figure 8: invoke through DependentObject.access.
                let callee = program.method(*target);
                let k = callee.params.len();
                let has_ret = callee.ret != Type::Void;
                let temps: Vec<u16> = (0..k).map(|i| next_temp + i as u16).collect();
                next_temp += k as u16;
                for &t in temps.iter().rev() {
                    new_body.push(Insn::Store(t));
                }
                new_body.push(Insn::Const(Const::Int(if has_ret {
                    ACCESS_INVOKE_HASRETURN
                } else {
                    ACCESS_INVOKE_VOID
                })));
                new_body.push(Insn::Const(Const::Str(callee.name.clone())));
                push_args_array(&mut new_body, &temps);
                new_body.push(Insn::Invoke(InvokeKind::Virtual, access_method));
                if !has_ret {
                    new_body.push(Insn::Pop);
                }
                stats.rewritten_invocations += 1;
            }
            Insn::GetField(f) if is_remote_class(f.class) => {
                new_body.push(Insn::Const(Const::Int(ACCESS_GET_FIELD)));
                new_body.push(Insn::Const(Const::Str(program.field(*f).name.clone())));
                push_args_array(&mut new_body, &[]);
                new_body.push(Insn::Invoke(InvokeKind::Virtual, access_method));
                stats.rewritten_field_accesses += 1;
            }
            Insn::PutField(f) if is_remote_class(f.class) => {
                let t = next_temp;
                next_temp += 1;
                new_body.push(Insn::Store(t));
                new_body.push(Insn::Const(Const::Int(ACCESS_PUT_FIELD)));
                new_body.push(Insn::Const(Const::Str(program.field(*f).name.clone())));
                push_args_array(&mut new_body, &[t]);
                new_body.push(Insn::Invoke(InvokeKind::Virtual, access_method));
                new_body.push(Insn::Pop);
                stats.rewritten_field_accesses += 1;
            }
            other => new_body.push(other.clone()),
        }
    }
    new_pos.push(new_body.len());

    // Fix branch targets for the shifted instruction positions.
    for insn in &mut new_body {
        insn.remap_targets(|t| new_pos[t.min(new_pos.len() - 1)]);
    }

    (new_body, next_temp, stats)
}

/// Emits the "arguments in a list" sequence: a fresh array of length `temps.len()`
/// filled from the given temporary locals, left on the stack.
fn push_args_array(body: &mut Vec<Insn>, temps: &[u16]) {
    body.push(Insn::Const(Const::Int(temps.len() as i64)));
    body.push(Insn::NewArray(Type::Int));
    for (i, &t) in temps.iter().enumerate() {
        body.push(Insn::Dup);
        body.push(Insn::Const(Const::Int(i as i64)));
        body.push(Insn::Load(t));
        body.push(Insn::ArrayStore);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autodist_analysis::crg::build_crg;
    use autodist_analysis::objects::collect_objects;
    use autodist_analysis::odg::build_odg;
    use autodist_analysis::rta::rapid_type_analysis;
    use autodist_analysis::weights::WeightModel;
    use autodist_ir::frontend::compile_source;
    use autodist_ir::printer::print_bytecode;
    use autodist_ir::verify::verify_program;
    use autodist_partition::{partition, PartitionConfig};

    const BANK_SRC: &str = r#"
        class Account {
            int id;
            int savings;
            Account(int id, int savings) { this.id = id; this.savings = savings; }
            int getSavings() { return this.savings; }
            void setBalance(int b) { this.savings = b; }
        }
        class Bank {
            Account[] accounts;
            int count;
            Bank(int n) {
                this.accounts = new Account[100];
                this.count = 0;
                int i = 0;
                while (i < n) {
                    this.openAccount(new Account(i, 1000));
                    i = i + 1;
                }
            }
            void openAccount(Account a) {
                this.accounts[this.count] = a;
                this.count = this.count + 1;
            }
            Account getCustomer(int id) { return this.accounts[id]; }
        }
        class Main {
            static void main() {
                Bank merchants = new Bank(10);
                Account a4 = new Account(1, 1000000);
                merchants.openAccount(a4);
                Account a = merchants.getCustomer(2);
                int s = a.getSavings();
                a.setBalance(s - 900);
            }
        }
    "#;

    /// Placement that puts Bank and Account on node 1 while Main stays on node 0.
    fn split_placement(p: &Program) -> ClassPlacement {
        let mut home = BTreeMap::new();
        home.insert(p.class_by_name("Main").unwrap(), 0);
        home.insert(p.class_by_name("Bank").unwrap(), 1);
        home.insert(p.class_by_name("Account").unwrap(), 1);
        ClassPlacement { home, nparts: 2 }
    }

    #[test]
    fn dependent_object_class_is_injected_once() {
        let mut p = compile_source(BANK_SRC).unwrap();
        let a = ensure_dependent_object(&mut p);
        let b = ensure_dependent_object(&mut p);
        assert_eq!(a, b);
        assert!(p.class(a.0).is_synthetic);
    }

    #[test]
    fn node0_copy_rewrites_remote_news_and_invokes() {
        let p = compile_source(BANK_SRC).unwrap();
        let placement = split_placement(&p);
        let rw = rewrite_for_node(&p, &placement, 0);
        assert!(rw.stats.rewritten_allocations >= 2, "{:?}", rw.stats);
        assert!(rw.stats.rewritten_invocations >= 3, "{:?}", rw.stats);
        // The rewritten program must still verify structurally.
        verify_program(&rw.program).expect("rewritten program verifies");
        // Main must now allocate DependentObject, not Bank.
        let main = rw.program.entry.unwrap();
        let listing = print_bytecode(&rw.program, main);
        assert!(listing.contains("new rt/DependentObject"), "{listing}");
        assert!(
            listing.contains("invokevirtual rt/DependentObject.access"),
            "{listing}"
        );
        assert!(
            listing.contains("invokespecial rt/DependentObject.<init>"),
            "{listing}"
        );
        assert!(!listing.contains("new Bank"), "{listing}");
    }

    #[test]
    fn node1_copy_keeps_bank_local_but_not_main_side_code() {
        let p = compile_source(BANK_SRC).unwrap();
        let placement = split_placement(&p);
        let rw = rewrite_for_node(&p, &placement, 1);
        // Bank's own methods are local on node 1: openAccount must not be rewritten.
        let bank = rw.program.class_by_name("Bank").unwrap();
        let open = rw.program.find_method(bank, "openAccount").unwrap();
        let listing = print_bytecode(&rw.program, open);
        assert!(!listing.contains("DependentObject"), "{listing}");
        verify_program(&rw.program).expect("verifies");
    }

    #[test]
    fn centralized_placement_rewrites_nothing() {
        let p = compile_source(BANK_SRC).unwrap();
        let placement = ClassPlacement::centralized(1);
        let rw = rewrite_for_node(&p, &placement, 0);
        assert_eq!(rw.stats.total_sites(), 0);
        assert_eq!(rw.stats.methods_transformed, 0);
    }

    #[test]
    fn placement_from_odg_partition_pins_entry_class_to_node0() {
        let p = compile_source(BANK_SRC).unwrap();
        let cg = rapid_type_analysis(&p);
        let crg = build_crg(&p, &cg);
        let objects = collect_objects(&p, &cg);
        let odg = build_odg(&p, &crg, &objects, &WeightModel::default());
        let (weights, edges) = odg.partition_input();
        let mut gb = autodist_partition::GraphBuilder::new(odg.node_count(), 3);
        for (i, w) in weights.iter().enumerate() {
            gb.set_weight(i, &w.as_array());
        }
        for (a, b, w) in edges {
            gb.add_edge(a, b, w);
        }
        let part = partition(&gb.build(), &PartitionConfig::kway(2));
        let placement = ClassPlacement::from_odg_partition(&p, &odg, &part);
        let main = p.class_by_name("Main").unwrap();
        assert_eq!(placement.home_of(main), 0);
        assert_eq!(placement.nparts, 2);
        let counts = placement.classes_per_node();
        assert_eq!(counts.iter().sum::<usize>(), placement.home.len());
    }

    #[test]
    fn rewritten_bodies_keep_branch_targets_valid() {
        let p = compile_source(BANK_SRC).unwrap();
        let placement = split_placement(&p);
        for node in 0..2 {
            let rw = rewrite_for_node(&p, &placement, node);
            for m in &rw.program.methods {
                for insn in &m.body {
                    if let Some(t) = insn.branch_target() {
                        assert!(t < m.body.len(), "target {t} out of range in {}", m.name);
                    }
                }
            }
        }
    }

    #[test]
    fn stats_total_adds_up() {
        let s = RewriteStats {
            rewritten_allocations: 2,
            rewritten_invocations: 3,
            rewritten_field_accesses: 4,
            methods_transformed: 2,
        };
        assert_eq!(s.total_sites(), 9);
    }
}
