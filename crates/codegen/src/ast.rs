//! Abstract syntax trees over quads.
//!
//! The paper: "the program is then turned into an Abstract Syntax Tree to act as the
//! code generator front-end. The AST is structured such that each instruction acts as a
//! root node, with instruction parameters represented as child leaves" (Figure 6).

use autodist_ir::program::Program;
use autodist_ir::quad::{BlockId, Operand, Quad, QuadMethod, Reg};

/// The operator of an AST node.
#[derive(Clone, Debug, PartialEq)]
pub enum TreeOp {
    /// `MOVE_I dst, src` root.
    Move,
    /// Arithmetic / bitwise operation root, tagged with its mnemonic (`ADD`, `SUB`, ...).
    Bin(&'static str),
    /// Unary operation root.
    Un(&'static str),
    /// Conditional branch root: children are the comparands; the condition mnemonic and
    /// target block are in the payload.
    IfCmp { cond: &'static str, target: BlockId },
    /// Unconditional branch.
    Goto(BlockId),
    /// Object allocation, payload is the class name.
    New(String),
    /// Array allocation.
    NewArray,
    /// Array load / store / length.
    ALoad,
    /// Array store.
    AStore,
    /// Array length.
    ALen,
    /// Field read, payload is the field name.
    GetField(String),
    /// Field write, payload is the field name.
    PutField(String),
    /// Static field read.
    GetStatic(String),
    /// Static field write.
    PutStatic(String),
    /// Call, payload is `Class.method`.
    Invoke(String),
    /// Return (with or without value child).
    Return,
    /// Leaf: virtual register.
    RegLeaf(Reg),
    /// Leaf: integer constant.
    IConstLeaf(i64),
    /// Leaf: float constant.
    FConstLeaf(f64),
    /// Leaf: string constant.
    SConstLeaf(String),
    /// Leaf: null.
    NullLeaf,
}

/// A node of the code-generation AST.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeNode {
    /// Operator.
    pub op: TreeOp,
    /// The register this node writes, if any (roots of value-producing quads).
    pub dst: Option<Reg>,
    /// Children (operand subtrees).
    pub children: Vec<TreeNode>,
}

impl TreeNode {
    /// A leaf node for an operand.
    pub fn leaf(op: &Operand) -> TreeNode {
        let top = match op {
            Operand::Reg(r) => TreeOp::RegLeaf(*r),
            Operand::IConst(v) => TreeOp::IConstLeaf(*v),
            Operand::FConst(v) => TreeOp::FConstLeaf(*v),
            Operand::BConst(v) => TreeOp::IConstLeaf(*v as i64),
            Operand::SConst(s) => TreeOp::SConstLeaf(s.clone()),
            Operand::Null => TreeOp::NullLeaf,
        };
        TreeNode {
            op: top,
            dst: None,
            children: Vec::new(),
        }
    }

    /// Number of nodes in the tree (including this one).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|c| c.size()).sum::<usize>()
    }

    /// Depth of the tree (a single node has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    /// Pretty-prints the tree with indentation (used by the Figure 6 reproduction).
    pub fn render(&self, indent: usize) -> String {
        let mut out = String::new();
        let pad = "  ".repeat(indent);
        let label = match &self.op {
            TreeOp::Move => "MOVE_I".to_string(),
            TreeOp::Bin(m) => format!("{m}_I"),
            TreeOp::Un(m) => format!("{m}_I"),
            TreeOp::IfCmp { cond, target } => format!("IFCMP_I [{cond} -> BB{}]", target.0),
            TreeOp::Goto(t) => format!("GOTO BB{}", t.0),
            TreeOp::New(c) => format!("NEW {c}"),
            TreeOp::NewArray => "NEWARRAY".to_string(),
            TreeOp::ALoad => "ALOAD".to_string(),
            TreeOp::AStore => "ASTORE".to_string(),
            TreeOp::ALen => "ARRAYLENGTH".to_string(),
            TreeOp::GetField(f) => format!("GETFIELD {f}"),
            TreeOp::PutField(f) => format!("PUTFIELD {f}"),
            TreeOp::GetStatic(f) => format!("GETSTATIC {f}"),
            TreeOp::PutStatic(f) => format!("PUTSTATIC {f}"),
            TreeOp::Invoke(m) => format!("INVOKE {m}"),
            TreeOp::Return => "RETURN_I".to_string(),
            TreeOp::RegLeaf(r) => format!("{r}"),
            TreeOp::IConstLeaf(v) => format!("IConst {v}"),
            TreeOp::FConstLeaf(v) => format!("FConst {v}"),
            TreeOp::SConstLeaf(s) => format!("SConst \"{s}\""),
            TreeOp::NullLeaf => "null".to_string(),
        };
        let dst = match self.dst {
            Some(r) => format!(" => {r}"),
            None => String::new(),
        };
        out.push_str(&format!("{pad}{label}{dst}\n"));
        for c in &self.children {
            out.push_str(&c.render(indent + 1));
        }
        out
    }
}

/// Builds one AST per quad of `qm`, grouped by basic block.
pub fn build_method_forest(program: &Program, qm: &QuadMethod) -> Vec<(BlockId, Vec<TreeNode>)> {
    qm.blocks
        .iter()
        .map(|b| {
            let trees = b.quads.iter().map(|q| quad_to_tree(program, q)).collect();
            (b.id, trees)
        })
        .collect()
}

/// Converts a single quad into its AST.
pub fn quad_to_tree(program: &Program, q: &Quad) -> TreeNode {
    match q {
        Quad::Move { dst, src } => TreeNode {
            op: TreeOp::Move,
            dst: Some(*dst),
            children: vec![TreeNode::leaf(src)],
        },
        Quad::Bin { op, dst, lhs, rhs } => TreeNode {
            op: TreeOp::Bin(op.mnemonic()),
            dst: Some(*dst),
            children: vec![TreeNode::leaf(lhs), TreeNode::leaf(rhs)],
        },
        Quad::Un { op, dst, src } => TreeNode {
            op: TreeOp::Un(op.mnemonic()),
            dst: Some(*dst),
            children: vec![TreeNode::leaf(src)],
        },
        Quad::IfCmp {
            op,
            lhs,
            rhs,
            target,
        } => TreeNode {
            op: TreeOp::IfCmp {
                cond: op.mnemonic(),
                target: *target,
            },
            dst: None,
            children: vec![TreeNode::leaf(lhs), TreeNode::leaf(rhs)],
        },
        Quad::Goto { target } => TreeNode {
            op: TreeOp::Goto(*target),
            dst: None,
            children: vec![],
        },
        Quad::New { dst, class } => TreeNode {
            op: TreeOp::New(program.class(*class).name.clone()),
            dst: Some(*dst),
            children: vec![],
        },
        Quad::NewArray { dst, len, .. } => TreeNode {
            op: TreeOp::NewArray,
            dst: Some(*dst),
            children: vec![TreeNode::leaf(len)],
        },
        Quad::ALoad { dst, arr, idx } => TreeNode {
            op: TreeOp::ALoad,
            dst: Some(*dst),
            children: vec![TreeNode::leaf(arr), TreeNode::leaf(idx)],
        },
        Quad::AStore { arr, idx, val } => TreeNode {
            op: TreeOp::AStore,
            dst: None,
            children: vec![
                TreeNode::leaf(arr),
                TreeNode::leaf(idx),
                TreeNode::leaf(val),
            ],
        },
        Quad::ALen { dst, arr } => TreeNode {
            op: TreeOp::ALen,
            dst: Some(*dst),
            children: vec![TreeNode::leaf(arr)],
        },
        Quad::GetField { dst, obj, field } => TreeNode {
            op: TreeOp::GetField(program.field(*field).name.clone()),
            dst: Some(*dst),
            children: vec![TreeNode::leaf(obj)],
        },
        Quad::PutField { obj, field, val } => TreeNode {
            op: TreeOp::PutField(program.field(*field).name.clone()),
            dst: None,
            children: vec![TreeNode::leaf(obj), TreeNode::leaf(val)],
        },
        Quad::GetStatic { dst, field } => TreeNode {
            op: TreeOp::GetStatic(program.field(*field).name.clone()),
            dst: Some(*dst),
            children: vec![],
        },
        Quad::PutStatic { field, val } => TreeNode {
            op: TreeOp::PutStatic(program.field(*field).name.clone()),
            dst: None,
            children: vec![TreeNode::leaf(val)],
        },
        Quad::Invoke {
            dst, method, args, ..
        } => {
            let m = program.method(*method);
            TreeNode {
                op: TreeOp::Invoke(format!("{}.{}", program.class(m.class).name, m.name)),
                dst: *dst,
                children: args.iter().map(TreeNode::leaf).collect(),
            }
        }
        Quad::Return { val } => TreeNode {
            op: TreeOp::Return,
            dst: None,
            children: val.iter().map(TreeNode::leaf).collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autodist_ir::bytecode::CmpOp;
    use autodist_ir::lower::lower_method;
    use autodist_ir::{ProgramBuilder, Type};

    fn example_forest() -> Vec<(BlockId, Vec<TreeNode>)> {
        let mut pb = ProgramBuilder::new();
        let example = pb.class("Example");
        let mut m = pb.method(example, "ex", vec![Type::Int], Type::Int);
        m.iconst(4).store(1);
        let skip = m.label();
        m.load(1).iconst(2).if_cmp(CmpOp::Le, skip);
        m.load(1).iconst(1).add().store(1);
        m.place(skip);
        m.load(1).ret_val();
        let id = m.finish();
        let p = pb.build();
        let qm = lower_method(&p, p.method(id)).unwrap();
        build_method_forest(&p, &qm)
    }

    #[test]
    fn every_quad_becomes_a_root_node() {
        let forest = example_forest();
        let total: usize = forest.iter().map(|(_, t)| t.len()).sum();
        assert!(total >= 5, "move, ifcmp, add, move, return at least");
        // Roots carry leaves as children, never nested roots in this forest shape.
        for (_, trees) in &forest {
            for t in trees {
                for c in &t.children {
                    assert!(c.children.is_empty(), "operands are leaves");
                }
            }
        }
    }

    #[test]
    fn figure6_shape_for_ifcmp() {
        let forest = example_forest();
        let ifcmp = forest
            .iter()
            .flat_map(|(_, t)| t.iter())
            .find(|t| matches!(t.op, TreeOp::IfCmp { .. }))
            .expect("ifcmp tree");
        assert_eq!(ifcmp.children.len(), 2);
        assert_eq!(ifcmp.size(), 3);
        assert_eq!(ifcmp.depth(), 2);
        let rendered = ifcmp.render(0);
        assert!(rendered.contains("IFCMP_I"));
        assert!(rendered.contains("LE"));
    }

    #[test]
    fn render_is_indented() {
        let forest = example_forest();
        let any = forest
            .iter()
            .flat_map(|(_, t)| t.iter())
            .find(|t| !t.children.is_empty())
            .unwrap();
        let r = any.render(0);
        assert!(r.lines().count() >= 2);
        assert!(r.lines().nth(1).unwrap().starts_with("  "));
    }
}
