//! x86-flavoured BURS rule table (Figure 7, left column).
//!
//! The output is pedagogical assembly in the same style the paper prints: virtual
//! registers are mapped onto a small set of general-purpose register names, constants
//! may appear as immediates, calls become `call`, and returns place their value in
//! `eax`.

use crate::ast::TreeOp;
use crate::burs::{Burs, EmitCtx, Nonterminal, Rule};
use autodist_ir::quad::Reg;

/// Maps a virtual register onto an x86 register name (cycling through the GPRs, with a
/// stack-slot style name once they run out).
pub fn x86_reg_name(r: Reg) -> String {
    const NAMES: [&str; 6] = ["eax", "ebx", "ecx", "edx", "esi", "edi"];
    if (r.0 as usize) < NAMES.len() {
        NAMES[r.0 as usize].to_string()
    } else {
        format!("[ebp-{}]", (r.0 as usize - NAMES.len() + 1) * 4)
    }
}

fn reg_leaf() -> Rule {
    Rule {
        name: "x86.reg",
        produces: Nonterminal::Reg,
        matches: Box::new(|op| matches!(op, TreeOp::RegLeaf(_))),
        child_nts: vec![],
        variadic: false,
        cost: 0,
        emit: Box::new(|n, _, ctx| {
            let r = match n.op {
                TreeOp::RegLeaf(r) => r,
                _ => unreachable!(),
            };
            (vec![], ctx.reg_name(r, x86_reg_name))
        }),
    }
}

fn imm_leaf() -> Rule {
    Rule {
        name: "x86.imm",
        produces: Nonterminal::Imm,
        matches: Box::new(|op| {
            matches!(
                op,
                TreeOp::IConstLeaf(_)
                    | TreeOp::SConstLeaf(_)
                    | TreeOp::NullLeaf
                    | TreeOp::FConstLeaf(_)
            )
        }),
        child_nts: vec![],
        variadic: false,
        cost: 0,
        emit: Box::new(|n, _, _| {
            let text = match &n.op {
                TreeOp::IConstLeaf(v) => format!("{v}"),
                TreeOp::FConstLeaf(v) => format!("{v}"),
                TreeOp::SConstLeaf(s) => format!("offset str_{}", s.len()),
                TreeOp::NullLeaf => "0".to_string(),
                _ => unreachable!(),
            };
            (vec![], text)
        }),
    }
}

fn dst_name(n: &crate::ast::TreeNode, ctx: &mut EmitCtx) -> String {
    match n.dst {
        Some(r) => ctx.reg_name(r, x86_reg_name),
        None => ctx.result_reg.clone(),
    }
}

fn bin_mnemonic(m: &str) -> &'static str {
    match m {
        "ADD" => "add",
        "SUB" => "sub",
        "MUL" => "imul",
        "DIV" => "idiv",
        "REM" => "idiv ; remainder in edx",
        "AND" => "and",
        "OR" => "or",
        "XOR" => "xor",
        "SHL" => "shl",
        "SHR" => "sar",
        _ => "op",
    }
}

fn cond_jump(m: &str) -> &'static str {
    match m {
        "EQ" => "je",
        "NE" => "jne",
        "LT" => "jl",
        "LE" => "jle",
        "GT" => "jg",
        "GE" => "jge",
        _ => "jmp",
    }
}

/// Builds the x86 rule table.
pub fn x86_rules() -> Burs {
    let rules = vec![
        reg_leaf(),
        imm_leaf(),
        // mov dst, src   (src may be reg or imm)
        Rule {
            name: "x86.move_ri",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| matches!(op, TreeOp::Move)),
            child_nts: vec![Nonterminal::Imm],
            variadic: false,
            cost: 1,
            emit: Box::new(|n, ops, ctx| {
                let dst = dst_name(n, ctx);
                (vec![format!("mov {dst}, {}", ops[0])], String::new())
            }),
        },
        Rule {
            name: "x86.move_rr",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| matches!(op, TreeOp::Move)),
            child_nts: vec![Nonterminal::Reg],
            variadic: false,
            cost: 1,
            emit: Box::new(|n, ops, ctx| {
                let dst = dst_name(n, ctx);
                if dst == ops[0] {
                    (vec![], String::new())
                } else {
                    (vec![format!("mov {dst}, {}", ops[0])], String::new())
                }
            }),
        },
        // Binary ops: dst := lhs op rhs  =>  mov dst, lhs ; op dst, rhs
        Rule {
            name: "x86.bin",
            produces: Nonterminal::Reg,
            matches: Box::new(|op| matches!(op, TreeOp::Bin(_))),
            child_nts: vec![Nonterminal::Reg, Nonterminal::Imm],
            variadic: false,
            cost: 2,
            emit: Box::new(|n, ops, ctx| {
                let m = match n.op {
                    TreeOp::Bin(m) => m,
                    _ => unreachable!(),
                };
                let dst = dst_name(n, ctx);
                let mut lines = Vec::new();
                if dst != ops[0] {
                    lines.push(format!("mov {dst}, {}", ops[0]));
                }
                lines.push(format!("{} {dst}, {}", bin_mnemonic(m), ops[1]));
                (lines, dst)
            }),
        },
        Rule {
            name: "x86.bin_rr",
            produces: Nonterminal::Reg,
            matches: Box::new(|op| matches!(op, TreeOp::Bin(_))),
            child_nts: vec![Nonterminal::Reg, Nonterminal::Reg],
            variadic: false,
            cost: 3,
            emit: Box::new(|n, ops, ctx| {
                let m = match n.op {
                    TreeOp::Bin(m) => m,
                    _ => unreachable!(),
                };
                let dst = dst_name(n, ctx);
                let mut lines = Vec::new();
                if dst != ops[0] {
                    lines.push(format!("mov {dst}, {}", ops[0]));
                }
                lines.push(format!("{} {dst}, {}", bin_mnemonic(m), ops[1]));
                (lines, dst)
            }),
        },
        // A computed binary value used as a statement root (dst := a op b with no
        // further use in the tree) still has to be materialised.
        Rule {
            name: "x86.bin_stmt",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| matches!(op, TreeOp::Bin(_) | TreeOp::Un(_))),
            child_nts: vec![Nonterminal::Reg],
            variadic: true,
            cost: 3,
            emit: Box::new(|n, ops, ctx| {
                let dst = dst_name(n, ctx);
                let mut lines = Vec::new();
                match &n.op {
                    TreeOp::Bin(m) => {
                        if !ops.is_empty() && dst != ops[0] {
                            lines.push(format!("mov {dst}, {}", ops[0]));
                        }
                        if ops.len() > 1 {
                            lines.push(format!("{} {dst}, {}", bin_mnemonic(m), ops[1]));
                        }
                    }
                    TreeOp::Un(m) => {
                        if !ops.is_empty() && dst != ops[0] {
                            lines.push(format!("mov {dst}, {}", ops[0]));
                        }
                        lines.push(format!("{} {dst}", if *m == "NEG" { "neg" } else { "not" }));
                    }
                    _ => unreachable!(),
                }
                (lines, String::new())
            }),
        },
        // Unary producing a value.
        Rule {
            name: "x86.un",
            produces: Nonterminal::Reg,
            matches: Box::new(|op| matches!(op, TreeOp::Un(_))),
            child_nts: vec![Nonterminal::Reg],
            variadic: false,
            cost: 2,
            emit: Box::new(|n, ops, ctx| {
                let dst = dst_name(n, ctx);
                let mut lines = Vec::new();
                if dst != ops[0] {
                    lines.push(format!("mov {dst}, {}", ops[0]));
                }
                lines.push(format!("neg {dst}"));
                (lines, dst)
            }),
        },
        // cmp a, b ; jcc BBn
        Rule {
            name: "x86.ifcmp",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| matches!(op, TreeOp::IfCmp { .. })),
            child_nts: vec![Nonterminal::Imm],
            variadic: true,
            cost: 2,
            emit: Box::new(|n, ops, _| {
                let (cond, target) = match &n.op {
                    TreeOp::IfCmp { cond, target } => (*cond, *target),
                    _ => unreachable!(),
                };
                (
                    vec![
                        format!("cmp {}, {}", ops[0], ops[1]),
                        format!("{} BB{}", cond_jump(cond), target.0),
                    ],
                    String::new(),
                )
            }),
        },
        // Mixed-operand compare: materialise whatever is needed into registers.
        Rule {
            name: "x86.ifcmp_r",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| matches!(op, TreeOp::IfCmp { .. })),
            child_nts: vec![Nonterminal::Reg],
            variadic: true,
            cost: 3,
            emit: Box::new(|n, ops, _| {
                let (cond, target) = match &n.op {
                    TreeOp::IfCmp { cond, target } => (*cond, *target),
                    _ => unreachable!(),
                };
                (
                    vec![
                        format!("cmp {}, {}", ops[0], ops[1]),
                        format!("{} BB{}", cond_jump(cond), target.0),
                    ],
                    String::new(),
                )
            }),
        },
        Rule {
            name: "x86.goto",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| matches!(op, TreeOp::Goto(_))),
            child_nts: vec![],
            variadic: false,
            cost: 1,
            emit: Box::new(|n, _, _| {
                let t = match &n.op {
                    TreeOp::Goto(t) => *t,
                    _ => unreachable!(),
                };
                (vec![format!("jmp BB{}", t.0)], String::new())
            }),
        },
        // ret (value already moved to eax)
        Rule {
            name: "x86.ret",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| matches!(op, TreeOp::Return)),
            child_nts: vec![Nonterminal::Reg],
            variadic: true,
            cost: 1,
            emit: Box::new(|_, ops, ctx| {
                let mut lines = Vec::new();
                if let Some(v) = ops.first() {
                    if *v != ctx.result_reg {
                        lines.push(format!("mov {}, {v}", ctx.result_reg));
                    }
                    lines.push(format!("ret {}", ctx.result_reg));
                } else {
                    lines.push("ret".to_string());
                }
                (lines, String::new())
            }),
        },
        // Calls: push args right-to-left, call, result in eax.
        Rule {
            name: "x86.call",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| matches!(op, TreeOp::Invoke(_))),
            child_nts: vec![Nonterminal::Reg],
            variadic: true,
            cost: 4,
            emit: Box::new(|n, ops, ctx| {
                let name = match &n.op {
                    TreeOp::Invoke(m) => m.clone(),
                    _ => unreachable!(),
                };
                let mut lines = Vec::new();
                for a in ops.iter().rev() {
                    lines.push(format!("push {a}"));
                }
                lines.push(format!("call {name}"));
                if !ops.is_empty() {
                    lines.push(format!("add esp, {}", ops.len() * 4));
                }
                if let Some(d) = n.dst {
                    let dst = ctx.reg_name(d, x86_reg_name);
                    if dst != "eax" {
                        lines.push(format!("mov {dst}, eax"));
                    }
                }
                (lines, String::new())
            }),
        },
        // Memory-ish operations: loads/stores through a runtime helper layout.
        Rule {
            name: "x86.getfield",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| {
                matches!(
                    op,
                    TreeOp::GetField(_) | TreeOp::GetStatic(_) | TreeOp::ALoad | TreeOp::ALen
                )
            }),
            child_nts: vec![Nonterminal::Reg],
            variadic: true,
            cost: 2,
            emit: Box::new(|n, ops, ctx| {
                let dst = dst_name(n, ctx);
                let what = match &n.op {
                    TreeOp::GetField(f) | TreeOp::GetStatic(f) => f.to_string(),
                    TreeOp::ALoad => {
                        format!("{} + {}*8", ops[0], ops.get(1).cloned().unwrap_or_default())
                    }
                    TreeOp::ALen => format!("{} - 8", ops[0]),
                    _ => unreachable!(),
                };
                let base = ops.first().cloned().unwrap_or_else(|| "globals".into());
                let line = match &n.op {
                    TreeOp::GetField(f) => format!("mov {dst}, [{base} + {f}]"),
                    TreeOp::GetStatic(_) => format!("mov {dst}, [{what}]"),
                    _ => format!("mov {dst}, [{what}]"),
                };
                (vec![line], String::new())
            }),
        },
        Rule {
            name: "x86.putfield",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| {
                matches!(
                    op,
                    TreeOp::PutField(_) | TreeOp::PutStatic(_) | TreeOp::AStore
                )
            }),
            child_nts: vec![Nonterminal::Reg],
            variadic: true,
            cost: 2,
            emit: Box::new(|n, ops, _| {
                let line = match &n.op {
                    TreeOp::PutField(f) => {
                        format!(
                            "mov [{} + {f}], {}",
                            ops[0],
                            ops.get(1).cloned().unwrap_or_default()
                        )
                    }
                    TreeOp::PutStatic(f) => {
                        format!("mov [{f}], {}", ops.first().cloned().unwrap_or_default())
                    }
                    TreeOp::AStore => format!(
                        "mov [{} + {}*8], {}",
                        ops[0],
                        ops.get(1).cloned().unwrap_or_default(),
                        ops.get(2).cloned().unwrap_or_default()
                    ),
                    _ => unreachable!(),
                };
                (vec![line], String::new())
            }),
        },
        // Allocation: call into the runtime allocator.
        Rule {
            name: "x86.new",
            produces: Nonterminal::Stmt,
            matches: Box::new(|op| matches!(op, TreeOp::New(_) | TreeOp::NewArray)),
            child_nts: vec![Nonterminal::Reg],
            variadic: true,
            cost: 4,
            emit: Box::new(|n, ops, ctx| {
                let dst = dst_name(n, ctx);
                let mut lines = Vec::new();
                match &n.op {
                    TreeOp::New(c) => lines.push(format!("call rt_new_{c}")),
                    TreeOp::NewArray => {
                        lines.push(format!("push {}", ops.first().cloned().unwrap_or_default()));
                        lines.push("call rt_new_array".to_string());
                    }
                    _ => unreachable!(),
                }
                if dst != "eax" {
                    lines.push(format!("mov {dst}, eax"));
                }
                (lines, String::new())
            }),
        },
    ];
    Burs {
        rules,
        imm_to_reg_cost: 1,
        imm_to_reg: Box::new(|imm, ctx| {
            let t = ctx.fresh_temp("r");
            (vec![format!("mov {t}, {imm}")], t)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::TreeNode;
    use autodist_ir::quad::BlockId;

    #[test]
    fn register_naming_cycles_then_spills() {
        assert_eq!(x86_reg_name(Reg(0)), "eax");
        assert_eq!(x86_reg_name(Reg(1)), "ebx");
        assert_eq!(x86_reg_name(Reg(5)), "edi");
        assert!(x86_reg_name(Reg(6)).starts_with("[ebp-"));
    }

    #[test]
    fn move_of_constant_matches_figure7_line1() {
        let burs = x86_rules();
        let tree = TreeNode {
            op: TreeOp::Move,
            dst: Some(Reg(0)),
            children: vec![TreeNode {
                op: TreeOp::IConstLeaf(4),
                dst: None,
                children: vec![],
            }],
        };
        let mut ctx = EmitCtx::new("eax");
        let lines = burs.reduce(&tree, &mut ctx);
        assert_eq!(lines, vec!["mov eax, 4"]);
    }

    #[test]
    fn compare_and_branch_matches_figure7_line2() {
        let burs = x86_rules();
        let tree = TreeNode {
            op: TreeOp::IfCmp {
                cond: "LE",
                target: BlockId(4),
            },
            dst: None,
            children: vec![
                TreeNode {
                    op: TreeOp::IConstLeaf(4),
                    dst: None,
                    children: vec![],
                },
                TreeNode {
                    op: TreeOp::IConstLeaf(2),
                    dst: None,
                    children: vec![],
                },
            ],
        };
        let mut ctx = EmitCtx::new("eax");
        let lines = burs.reduce(&tree, &mut ctx);
        assert_eq!(lines, vec!["cmp 4, 2", "jle BB4"]);
    }

    #[test]
    fn call_pushes_arguments_and_cleans_the_stack() {
        let burs = x86_rules();
        let tree = TreeNode {
            op: TreeOp::Invoke("Account.getSavings".to_string()),
            dst: Some(Reg(1)),
            children: vec![TreeNode {
                op: TreeOp::RegLeaf(Reg(2)),
                dst: None,
                children: vec![],
            }],
        };
        let mut ctx = EmitCtx::new("eax");
        let lines = burs.reduce(&tree, &mut ctx);
        let text = lines.join("\n");
        assert!(text.contains("push ecx"));
        assert!(text.contains("call Account.getSavings"));
        assert!(text.contains("add esp, 4"));
        assert!(text.contains("mov ebx, eax"));
    }
}
