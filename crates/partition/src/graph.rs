//! The weighted undirected graph handed to the partitioner.
//!
//! Vertices carry multi-constraint weight vectors (the paper uses memory, CPU and
//! battery); edges carry a single integer weight (the communication volume if the
//! endpoints are separated). Storage is CSR (compressed sparse row) built once from an
//! edge list; parallel edges are merged by summing weights.

use std::collections::BTreeMap;

/// An immutable weighted undirected graph in CSR form.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// Number of weight constraints per vertex (>= 1).
    pub ncon: usize,
    /// Vertex weights, `vertex_count * ncon`, row-major.
    pub vwgt: Vec<u64>,
    /// CSR row pointers (length `vertex_count + 1`).
    pub xadj: Vec<usize>,
    /// CSR column indices (neighbours).
    pub adjncy: Vec<usize>,
    /// CSR edge weights, parallel to `adjncy`.
    pub adjwgt: Vec<u64>,
}

impl Graph {
    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.xadj.len().saturating_sub(1)
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// The weight vector of vertex `v`.
    pub fn vertex_weight(&self, v: usize) -> &[u64] {
        &self.vwgt[v * self.ncon..(v + 1) * self.ncon]
    }

    /// Iterator over `(neighbour, edge_weight)` of vertex `v`.
    pub fn neighbours(&self, v: usize) -> impl Iterator<Item = (usize, u64)> + '_ {
        let range = self.xadj[v]..self.xadj[v + 1];
        self.adjncy[range.clone()]
            .iter()
            .copied()
            .zip(self.adjwgt[range].iter().copied())
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Sum of all vertex weights per constraint.
    pub fn total_weight(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.ncon];
        for v in 0..self.vertex_count() {
            for (c, t) in totals.iter_mut().enumerate() {
                *t += self.vertex_weight(v)[c];
            }
        }
        totals
    }

    /// Total weight of edges whose endpoints are in different parts.
    pub fn edge_cut(&self, assignment: &[usize]) -> u64 {
        let mut cut = 0u64;
        for v in 0..self.vertex_count() {
            for (u, w) in self.neighbours(v) {
                if u > v && assignment[u] != assignment[v] {
                    cut += w;
                }
            }
        }
        cut
    }

    /// Number of distinct edges crossing parts (the paper's "edgecut" column counts
    /// edges, not weights).
    pub fn cut_edge_count(&self, assignment: &[usize]) -> usize {
        let mut cut = 0usize;
        for v in 0..self.vertex_count() {
            for (u, _) in self.neighbours(v) {
                if u > v && assignment[u] != assignment[v] {
                    cut += 1;
                }
            }
        }
        cut
    }

    /// Per-part, per-constraint weights.
    pub fn part_weights(&self, assignment: &[usize], nparts: usize) -> Vec<Vec<u64>> {
        let mut pw = vec![vec![0u64; self.ncon]; nparts];
        assert_eq!(
            assignment.len(),
            self.vertex_count(),
            "assignment must cover every vertex"
        );
        for (v, &p) in assignment.iter().enumerate() {
            for (acc, w) in pw[p].iter_mut().zip(self.vertex_weight(v)) {
                *acc += w;
            }
        }
        pw
    }

    /// Per-constraint imbalance: `max_p weight(p, c) / (total(c) / nparts)`.
    pub fn imbalance(&self, assignment: &[usize], nparts: usize) -> Vec<f64> {
        if self.vertex_count() == 0 || nparts == 0 {
            return vec![1.0; self.ncon];
        }
        let totals = self.total_weight();
        let pw = self.part_weights(assignment, nparts);
        (0..self.ncon)
            .map(|c| {
                let ideal = totals[c] as f64 / nparts as f64;
                if ideal == 0.0 {
                    1.0
                } else {
                    pw.iter().map(|p| p[c] as f64).fold(0.0, f64::max) / ideal
                }
            })
            .collect()
    }

    /// `true` if every vertex's part index is below `nparts`.
    pub fn is_valid_assignment(&self, assignment: &[usize], nparts: usize) -> bool {
        assignment.len() == self.vertex_count() && assignment.iter().all(|&a| a < nparts)
    }
}

/// Incrementally builds a [`Graph`] from vertices and undirected edges.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    ncon: usize,
    weights: Vec<Vec<u64>>,
    edges: BTreeMap<(usize, usize), u64>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices and `ncon` weight constraints.
    /// All vertex weights default to 1.
    pub fn new(n: usize, ncon: usize) -> Self {
        assert!(ncon >= 1, "at least one constraint required");
        GraphBuilder {
            ncon,
            weights: vec![vec![1; ncon]; n],
            edges: BTreeMap::new(),
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.weights.len()
    }

    /// Sets the weight vector of vertex `v` (must have `ncon` entries).
    pub fn set_weight(&mut self, v: usize, w: &[u64]) -> &mut Self {
        assert_eq!(w.len(), self.ncon, "weight vector length mismatch");
        self.weights[v] = w.to_vec();
        self
    }

    /// Adds (or accumulates) an undirected edge. Self loops are ignored.
    pub fn add_edge(&mut self, a: usize, b: usize, w: u64) -> &mut Self {
        if a == b {
            return self;
        }
        let key = (a.min(b), a.max(b));
        *self.edges.entry(key).or_insert(0) += w;
        self
    }

    /// Finalises the CSR representation.
    pub fn build(&self) -> Graph {
        let n = self.weights.len();
        let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        for (&(a, b), &w) in &self.edges {
            adj[a].push((b, w));
            adj[b].push((a, w));
        }
        let mut xadj = Vec::with_capacity(n + 1);
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        xadj.push(0);
        for list in &adj {
            for &(u, w) in list {
                adjncy.push(u);
                adjwgt.push(w);
            }
            xadj.push(adjncy.len());
        }
        let vwgt = self.weights.iter().flatten().copied().collect();
        Graph {
            ncon: self.ncon,
            vwgt,
            xadj,
            adjncy,
            adjwgt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3, 2);
        b.set_weight(0, &[1, 10]);
        b.set_weight(1, &[2, 20]);
        b.set_weight(2, &[3, 30]);
        b.add_edge(0, 1, 5);
        b.add_edge(1, 2, 7);
        b.add_edge(2, 0, 9);
        b.build()
    }

    #[test]
    fn csr_structure_is_consistent() {
        let g = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.vertex_weight(1), &[2, 20]);
        let n0: Vec<(usize, u64)> = g.neighbours(0).collect();
        assert!(n0.contains(&(1, 5)));
        assert!(n0.contains(&(2, 9)));
    }

    #[test]
    fn parallel_edges_are_merged() {
        let mut b = GraphBuilder::new(2, 1);
        b.add_edge(0, 1, 3);
        b.add_edge(1, 0, 4);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbours(0).next(), Some((1, 7)));
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut b = GraphBuilder::new(2, 1);
        b.add_edge(0, 0, 3);
        b.add_edge(0, 1, 2);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn edge_cut_and_counts() {
        let g = triangle();
        // All in one part: no cut.
        assert_eq!(g.edge_cut(&[0, 0, 0]), 0);
        assert_eq!(g.cut_edge_count(&[0, 0, 0]), 0);
        // Vertex 2 alone: edges (1,2) and (2,0) cut.
        assert_eq!(g.edge_cut(&[0, 0, 1]), 16);
        assert_eq!(g.cut_edge_count(&[0, 0, 1]), 2);
    }

    #[test]
    fn part_weights_and_imbalance() {
        let g = triangle();
        let pw = g.part_weights(&[0, 0, 1], 2);
        assert_eq!(pw[0], vec![3, 30]);
        assert_eq!(pw[1], vec![3, 30]);
        let imb = g.imbalance(&[0, 0, 1], 2);
        // Both constraints perfectly balanced.
        assert!((imb[0] - 1.0).abs() < 1e-9);
        assert!((imb[1] - 1.0).abs() < 1e-9);
        let imb_bad = g.imbalance(&[0, 0, 0], 2);
        assert!((imb_bad[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn total_weight_sums_constraints_independently() {
        let g = triangle();
        assert_eq!(g.total_weight(), vec![6, 60]);
    }

    #[test]
    fn validity_check() {
        let g = triangle();
        assert!(g.is_valid_assignment(&[0, 1, 1], 2));
        assert!(!g.is_valid_assignment(&[0, 1, 2], 2));
        assert!(!g.is_valid_assignment(&[0, 1], 2));
    }

    #[test]
    #[should_panic(expected = "weight vector length mismatch")]
    fn wrong_weight_arity_panics() {
        let mut b = GraphBuilder::new(1, 2);
        b.set_weight(0, &[1]);
    }
}
