//! Boundary refinement of bisections (Fiduccia–Mattheyses / Kernighan–Lin style).
//!
//! Given a two-way assignment, each pass repeatedly moves the highest-gain movable
//! vertex to the other side (where *gain* is the reduction in cut weight), locks it,
//! and finally rolls back to the best prefix of moves seen during the pass. Moves that
//! would push the receiving side above its allowed weight (per constraint) are skipped,
//! which is how the multi-constraint balance of the paper's resource model is enforced.

use crate::graph::Graph;

/// Balance envelope for a bisection: per side, per constraint, the maximum allowed
/// weight.
#[derive(Clone, Debug)]
pub struct BisectionTargets {
    /// `allowed[side][constraint]`.
    pub allowed: Vec<Vec<u64>>,
}

impl BisectionTargets {
    /// Builds targets where side 0 gets `frac` of the total weight and side 1 the rest,
    /// each inflated by `tolerance`. Neither side is ever allowed to absorb the entire
    /// graph: distribution is being *requested*, so a bisection must actually bisect
    /// (this mirrors the paper's resource-constraint motivation — a single node cannot
    /// host everything).
    pub fn from_fraction(graph: &Graph, frac: f64, tolerance: f64) -> Self {
        let totals = graph.total_weight();
        let mk = |f: f64| {
            totals
                .iter()
                .map(|&t| {
                    let inflated = ((t as f64) * f * (1.0 + tolerance)).ceil() as u64;
                    let cap = if t >= 2 { t - 1 } else { t };
                    inflated.clamp(1, cap.max(1))
                })
                .collect::<Vec<u64>>()
        };
        BisectionTargets {
            allowed: vec![mk(frac), mk(1.0 - frac)],
        }
    }
}

/// The gain (cut-weight reduction) of moving `v` to the other side.
pub fn move_gain(graph: &Graph, assignment: &[usize], v: usize) -> i64 {
    let mut internal = 0i64;
    let mut external = 0i64;
    for (u, w) in graph.neighbours(v) {
        if assignment[u] == assignment[v] {
            internal += w as i64;
        } else {
            external += w as i64;
        }
    }
    external - internal
}

/// Runs up to `passes` FM passes over a bisection, improving `assignment` in place.
/// Returns the final cut weight.
pub fn fm_refine_bisection(
    graph: &Graph,
    assignment: &mut [usize],
    targets: &BisectionTargets,
    passes: usize,
) -> u64 {
    let n = graph.vertex_count();
    if n == 0 {
        return 0;
    }
    let ncon = graph.ncon;
    let mut best_cut = graph.edge_cut(assignment);

    for _ in 0..passes {
        let mut part_weights = graph.part_weights(assignment, 2);
        let mut locked = vec![false; n];
        let mut moves: Vec<usize> = Vec::new();
        let mut cur_cut = best_cut as i64;
        let mut best_prefix_cut = best_cut as i64;
        let mut best_prefix_len = 0usize;

        loop {
            // Pick the best unlocked, balance-feasible move.
            let mut best_v: Option<(usize, i64)> = None;
            for v in 0..n {
                if locked[v] {
                    continue;
                }
                let from = assignment[v];
                let to = 1 - from;
                // Balance check: the receiving side must stay under its envelope.
                let fits = (0..ncon).all(|c| {
                    part_weights[to][c] + graph.vertex_weight(v)[c] <= targets.allowed[to][c]
                });
                if !fits {
                    continue;
                }
                let g = move_gain(graph, assignment, v);
                match best_v {
                    Some((_, bg)) if bg >= g => {}
                    _ => best_v = Some((v, g)),
                }
            }
            let Some((v, gain)) = best_v else { break };
            // Apply the move.
            let from = assignment[v];
            let to = 1 - from;
            for (c, w) in graph.vertex_weight(v).iter().enumerate() {
                part_weights[from][c] -= w;
                part_weights[to][c] += w;
            }
            assignment[v] = to;
            locked[v] = true;
            moves.push(v);
            cur_cut -= gain;
            if cur_cut < best_prefix_cut {
                best_prefix_cut = cur_cut;
                best_prefix_len = moves.len();
            }
            // Stop early once every vertex is locked.
            if moves.len() == n {
                break;
            }
        }

        // Roll back to the best prefix.
        for &v in moves.iter().skip(best_prefix_len) {
            assignment[v] = 1 - assignment[v];
        }
        let new_cut = graph.edge_cut(assignment);
        if new_cut >= best_cut {
            // No improvement this pass — converged.
            best_cut = new_cut.min(best_cut);
            break;
        }
        best_cut = new_cut;
    }
    best_cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Two 4-cliques joined by one edge, with a deliberately bad initial split.
    fn cliques_with_bad_split() -> (Graph, Vec<usize>) {
        let mut b = GraphBuilder::new(8, 1);
        for c in 0..2 {
            let base = c * 4;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(base + i, base + j, 5);
                }
            }
        }
        b.add_edge(0, 4, 1);
        let g = b.build();
        // Swap one vertex from each clique: cut = 3*5 + 3*5 + ... definitely bad.
        let assignment = vec![0, 0, 0, 1, 1, 1, 1, 0];
        (g, assignment)
    }

    #[test]
    fn refinement_recovers_the_natural_cut() {
        let (g, mut a) = cliques_with_bad_split();
        let targets = BisectionTargets::from_fraction(&g, 0.5, 0.1);
        let cut = fm_refine_bisection(&g, &mut a, &targets, 8);
        assert_eq!(cut, 1, "refinement should find the single bridge cut");
        assert_eq!(g.edge_cut(&a), 1);
        // The parts are the two cliques.
        assert_eq!(a[0], a[1]);
        assert_eq!(a[0], a[2]);
        assert_eq!(a[0], a[3]);
        assert_ne!(a[0], a[4]);
    }

    #[test]
    fn refinement_never_worsens_the_cut() {
        let (g, a0) = cliques_with_bad_split();
        let before = g.edge_cut(&a0);
        let mut a = a0.clone();
        let targets = BisectionTargets::from_fraction(&g, 0.5, 0.1);
        let after = fm_refine_bisection(&g, &mut a, &targets, 3);
        assert!(after <= before);
    }

    #[test]
    fn balance_envelope_is_respected() {
        // A star: center 0 with 7 leaves. Unbalanced targets would want everything on
        // one side; the envelope must prevent one side from absorbing all vertices.
        let mut b = GraphBuilder::new(8, 1);
        for v in 1..8 {
            b.add_edge(0, v, 1);
        }
        let g = b.build();
        let mut a: Vec<usize> = (0..8).map(|v| v % 2).collect();
        let targets = BisectionTargets::from_fraction(&g, 0.5, 0.2);
        fm_refine_bisection(&g, &mut a, &targets, 4);
        let pw = g.part_weights(&a, 2);
        assert!(pw[0][0] <= targets.allowed[0][0]);
        assert!(pw[1][0] <= targets.allowed[1][0]);
        assert!(pw[0][0] > 0 && pw[1][0] > 0, "neither side empties out");
    }

    #[test]
    fn move_gain_matches_definition() {
        let mut b = GraphBuilder::new(3, 1);
        b.add_edge(0, 1, 4);
        b.add_edge(0, 2, 6);
        let g = b.build();
        let a = vec![0, 0, 1];
        // Moving 0 to part 1: external (0-2,w6) becomes internal, internal (0-1,w4)
        // becomes external => gain = 6 - 4 = 2.
        assert_eq!(move_gain(&g, &a, 0), 2);
        // Moving 2: external 6 - internal 0 = 6.
        assert_eq!(move_gain(&g, &a, 2), 6);
    }

    #[test]
    fn multi_constraint_balance_is_enforced_per_constraint() {
        // Vertices heavy in constraint 1 must not all end up on one side even if that
        // would improve the cut.
        let mut b = GraphBuilder::new(4, 2);
        b.set_weight(0, &[1, 100]);
        b.set_weight(1, &[1, 100]);
        b.set_weight(2, &[1, 1]);
        b.set_weight(3, &[1, 1]);
        b.add_edge(0, 1, 50);
        b.add_edge(2, 3, 1);
        b.add_edge(1, 2, 1);
        let g = b.build();
        let mut a = vec![0, 1, 0, 1];
        let targets = BisectionTargets::from_fraction(&g, 0.5, 0.25);
        fm_refine_bisection(&g, &mut a, &targets, 4);
        let pw = g.part_weights(&a, 2);
        for (weights, allowed) in pw.iter().zip(&targets.allowed) {
            for (w, cap) in weights.iter().zip(allowed) {
                assert!(w <= cap);
            }
        }
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let g = GraphBuilder::new(0, 1).build();
        let targets = BisectionTargets::from_fraction(&g, 0.5, 0.1);
        let mut a: Vec<usize> = vec![];
        assert_eq!(fm_refine_bisection(&g, &mut a, &targets, 2), 0);
    }
}
