//! Naive baseline partitioners.
//!
//! The paper's evaluation explicitly states "we currently use a suboptimal naive
//! partitioning"; these baselines reproduce that behaviour and serve as the comparison
//! point for the multilevel partitioner in the ablation benchmarks.

/// Assigns vertex `v` to part `v % nparts`.
pub fn round_robin_partition(n: usize, nparts: usize) -> Vec<usize> {
    (0..n).map(|v| v % nparts.max(1)).collect()
}

/// Assigns contiguous blocks of `ceil(n / nparts)` vertices to each part.
pub fn block_partition(n: usize, nparts: usize) -> Vec<usize> {
    let nparts = nparts.max(1);
    let block = n.div_ceil(nparts).max(1);
    (0..n).map(|v| (v / block).min(nparts - 1)).collect()
}

/// Assigns vertices by a deterministic multiplicative hash of their index.
pub fn hash_partition(n: usize, nparts: usize) -> Vec<usize> {
    let nparts = nparts.max(1);
    (0..n)
        .map(|v| {
            let h = (v as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left(17);
            (h % nparts as u64) as usize
        })
        .collect()
}

/// Assigns vertices uniformly at random using a small xorshift generator seeded with
/// `seed` (deterministic for a given seed).
pub fn random_partition(n: usize, nparts: usize, seed: u64) -> Vec<usize> {
    let nparts = nparts.max(1);
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    if state == 0 {
        state = 1;
    }
    (0..n)
        .map(|_| {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (r % nparts as u64) as usize
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_parts() {
        let a = round_robin_partition(7, 3);
        assert_eq!(a, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn block_partition_is_contiguous_and_covers_all_parts() {
        let a = block_partition(10, 3);
        assert_eq!(a.len(), 10);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "monotone blocks");
        assert!(a.iter().all(|&p| p < 3));
        assert!(a.contains(&0) && a.contains(&1) && a.contains(&2));
    }

    #[test]
    fn hash_partition_is_deterministic_and_in_range() {
        let a = hash_partition(100, 4);
        let b = hash_partition(100, 4);
        assert_eq!(a, b);
        assert!(a.iter().all(|&p| p < 4));
        // Should touch every part for a reasonable n.
        for p in 0..4 {
            assert!(a.contains(&p));
        }
    }

    #[test]
    fn random_partition_depends_on_seed_only() {
        let a = random_partition(50, 2, 42);
        let b = random_partition(50, 2, 42);
        let c = random_partition(50, 2, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&p| p < 2));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(round_robin_partition(0, 2).is_empty());
        assert_eq!(block_partition(3, 1), vec![0, 0, 0]);
        assert_eq!(round_robin_partition(3, 1), vec![0, 0, 0]);
        assert_eq!(hash_partition(3, 1), vec![0, 0, 0]);
        assert_eq!(random_partition(3, 1, 9), vec![0, 0, 0]);
    }
}
