//! The multilevel k-way driver: recursive bisection.
//!
//! Each bisection runs the full multilevel pipeline — coarsen with heavy-edge matching,
//! compute an initial split on the coarsest graph with greedy graph growing (GGGP),
//! then project the split back up the hierarchy refining with FM at every level. k-way
//! partitions are obtained by recursively bisecting the induced subgraphs, splitting the
//! requested part count proportionally (this is how pmetis operates).

use crate::coarsen::coarsen_hierarchy;
use crate::graph::{Graph, GraphBuilder};
use crate::refine::{fm_refine_bisection, BisectionTargets};
use crate::PartitionConfig;

/// Partitions `graph` into `config.nparts` parts with multilevel recursive bisection.
pub fn multilevel_kway(graph: &Graph, config: &PartitionConfig) -> Vec<usize> {
    let n = graph.vertex_count();
    let mut assignment = vec![0usize; n];
    let vertices: Vec<usize> = (0..n).collect();
    recurse(graph, &vertices, config.nparts, 0, config, &mut assignment);
    assignment
}

/// Recursively bisects the subgraph induced by `vertices`, writing part ids in
/// `[first_part, first_part + nparts)` into `assignment`.
fn recurse(
    graph: &Graph,
    vertices: &[usize],
    nparts: usize,
    first_part: usize,
    config: &PartitionConfig,
    assignment: &mut [usize],
) {
    if nparts <= 1 || vertices.is_empty() {
        for &v in vertices {
            assignment[v] = first_part;
        }
        return;
    }
    let left_parts = nparts.div_ceil(2);
    let right_parts = nparts - left_parts;
    let frac = left_parts as f64 / nparts as f64;

    let (sub, _back) = induce(graph, vertices);
    let split = multilevel_bisect(&sub, frac, config);

    let left: Vec<usize> = vertices
        .iter()
        .enumerate()
        .filter(|(i, _)| split[*i] == 0)
        .map(|(_, &v)| v)
        .collect();
    let right: Vec<usize> = vertices
        .iter()
        .enumerate()
        .filter(|(i, _)| split[*i] == 1)
        .map(|(_, &v)| v)
        .collect();

    recurse(graph, &left, left_parts, first_part, config, assignment);
    recurse(
        graph,
        &right,
        right_parts,
        first_part + left_parts,
        config,
        assignment,
    );
}

/// Builds the subgraph induced by `vertices`. Returns the subgraph and the map from
/// subgraph vertex index back to the original vertex id.
pub fn induce(graph: &Graph, vertices: &[usize]) -> (Graph, Vec<usize>) {
    let mut to_sub = vec![usize::MAX; graph.vertex_count()];
    for (i, &v) in vertices.iter().enumerate() {
        to_sub[v] = i;
    }
    let mut b = GraphBuilder::new(vertices.len(), graph.ncon);
    for (i, &v) in vertices.iter().enumerate() {
        b.set_weight(i, graph.vertex_weight(v));
        for (u, w) in graph.neighbours(v) {
            if u > v && to_sub[u] != usize::MAX {
                b.add_edge(i, to_sub[u], w);
            }
        }
    }
    (b.build(), vertices.to_vec())
}

/// Multilevel bisection: coarsen, GGGP initial split, uncoarsen + refine.
/// Side 0 targets `frac` of the total weight.
pub fn multilevel_bisect(graph: &Graph, frac: f64, config: &PartitionConfig) -> Vec<usize> {
    let n = graph.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }
    let levels = coarsen_hierarchy(graph, config.coarsen_to, config.seed);
    let coarsest: &Graph = levels.last().map(|l| &l.graph).unwrap_or(graph);

    // Initial split on the coarsest graph: try several GGGP seeds, keep the best.
    let targets_coarsest =
        BisectionTargets::from_fraction(coarsest, frac, config.balance_tolerance);
    let mut best: Option<(u64, Vec<usize>)> = None;
    for attempt in 0..4u64 {
        let mut split = greedy_graph_growing(coarsest, frac, config.seed.wrapping_add(attempt));
        let cut = fm_refine_bisection(
            coarsest,
            &mut split,
            &targets_coarsest,
            config.refine_passes,
        );
        match &best {
            Some((bc, _)) if *bc <= cut => {}
            _ => best = Some((cut, split)),
        }
    }
    let mut split = best.expect("at least one attempt").1;

    // Project the split back through the hierarchy, refining at every level.
    for level_idx in (0..levels.len()).rev() {
        let fine_graph = if level_idx == 0 {
            graph
        } else {
            &levels[level_idx - 1].graph
        };
        let map = &levels[level_idx].map;
        let mut fine_split = vec![0usize; fine_graph.vertex_count()];
        for (v, part) in fine_split.iter_mut().enumerate() {
            *part = split[map[v]];
        }
        let targets = BisectionTargets::from_fraction(fine_graph, frac, config.balance_tolerance);
        fm_refine_bisection(fine_graph, &mut fine_split, &targets, config.refine_passes);
        split = fine_split;
    }

    if levels.is_empty() {
        // No coarsening happened: `split` is already for the original graph, but run a
        // final refinement for good measure on graphs small enough to skip coarsening.
        let targets = BisectionTargets::from_fraction(graph, frac, config.balance_tolerance);
        fm_refine_bisection(graph, &mut split, &targets, config.refine_passes);
    }
    split
}

/// Greedy graph growing: grow side 0 from a seed vertex, always absorbing the frontier
/// vertex most strongly connected to the grown region, until side 0 reaches its target
/// weight (primary constraint 0). Unreached vertices (disconnected components) are
/// pulled in arbitrarily if the target is not met.
pub fn greedy_graph_growing(graph: &Graph, frac: f64, seed: u64) -> Vec<usize> {
    let n = graph.vertex_count();
    let totals = graph.total_weight();
    let target0 = (totals[0] as f64 * frac).round() as u64;

    let start = (seed % n as u64) as usize;
    let mut side = vec![1usize; n];
    let mut in_region = vec![false; n];
    let mut connectivity = vec![0i64; n];
    let mut grown_weight = 0u64;

    let mut current = Some(start);
    while grown_weight < target0 {
        let v = match current.take() {
            Some(v) => v,
            None => {
                // Best frontier vertex, or any remaining vertex if the frontier is empty.
                let cand = (0..n)
                    .filter(|&u| !in_region[u])
                    .max_by_key(|&u| (connectivity[u], std::cmp::Reverse(u)));
                match cand {
                    Some(u) => u,
                    None => break,
                }
            }
        };
        if in_region[v] {
            continue;
        }
        in_region[v] = true;
        side[v] = 0;
        grown_weight += graph.vertex_weight(v)[0];
        for (u, w) in graph.neighbours(v) {
            connectivity[u] += w as i64;
        }
    }
    side
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n * n, 1);
        for i in 0..n {
            for j in 0..n {
                let v = i * n + j;
                if j + 1 < n {
                    b.add_edge(v, v + 1, 1);
                }
                if i + 1 < n {
                    b.add_edge(v, v + n, 1);
                }
            }
        }
        b.build()
    }

    #[test]
    fn bisecting_a_grid_gives_a_thin_cut() {
        let g = grid(8); // 64 vertices, optimal bisection cut = 8
        let cfg = PartitionConfig::kway(2);
        let split = multilevel_bisect(&g, 0.5, &cfg);
        let cut = g.edge_cut(&split);
        assert!(cut <= 16, "cut {cut} should be near the optimal 8");
        let pw = g.part_weights(&split, 2);
        assert!(pw[0][0] >= 24 && pw[1][0] >= 24, "roughly balanced: {pw:?}");
    }

    #[test]
    fn induced_subgraph_preserves_weights_and_internal_edges() {
        let g = grid(4);
        let vertices: Vec<usize> = (0..8).collect(); // top two rows
        let (sub, back) = induce(&g, &vertices);
        assert_eq!(sub.vertex_count(), 8);
        assert_eq!(back, vertices);
        // Edges inside the top two rows: 4+4 horizontal? (3 per row * 2) + 4 vertical = 10.
        assert_eq!(sub.edge_count(), 10);
    }

    #[test]
    fn greedy_growing_hits_the_target_fraction() {
        let g = grid(6);
        let side = greedy_graph_growing(&g, 0.5, 11);
        let pw = g.part_weights(&side, 2);
        let total = 36;
        assert!(pw[0][0] >= total / 2, "side 0 grew to at least half");
        assert!(
            pw[0][0] <= total / 2 + 6,
            "side 0 did not swallow everything"
        );
        // The grown region should be connected-ish: its internal cut is small.
        assert!(g.edge_cut(&side) <= 14);
    }

    #[test]
    fn kway_respects_part_count_and_covers_all_parts() {
        let g = grid(8);
        let cfg = PartitionConfig::kway(5);
        let a = multilevel_kway(&g, &cfg);
        assert_eq!(a.len(), 64);
        for p in 0..5 {
            assert!(a.contains(&p), "part {p} is non-empty");
        }
        assert!(a.iter().all(|&p| p < 5));
    }

    #[test]
    fn disconnected_graphs_are_handled() {
        // Two disjoint triangles.
        let mut b = GraphBuilder::new(6, 1);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(0, 2, 1);
        b.add_edge(3, 4, 1);
        b.add_edge(4, 5, 1);
        b.add_edge(3, 5, 1);
        let g = b.build();
        let cfg = PartitionConfig::kway(2);
        let a = multilevel_kway(&g, &cfg);
        assert_eq!(g.edge_cut(&a), 0, "disjoint components need no cut");
        assert!(a.contains(&0) && a.contains(&1));
    }

    #[test]
    fn nparts_larger_than_vertices_still_valid() {
        let mut b = GraphBuilder::new(3, 1);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        let g = b.build();
        let cfg = PartitionConfig::kway(8);
        let a = multilevel_kway(&g, &cfg);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|&p| p < 8));
    }
}
