//! # autodist-partition
//!
//! Multilevel, multi-constraint k-way graph partitioning — the role Metis plays in the
//! paper (Section 3), reimplemented from scratch:
//!
//! * [`graph`] — the weighted undirected graph representation (multi-constraint vertex
//!   weight vectors, integer edge weights) plus quality metrics (edge cut, balance).
//! * [`coarsen`] — heavy-edge-matching coarsening (the first phase of the multilevel
//!   scheme of Hendrickson/Leland and Karypis/Kumar).
//! * [`refine`] — Fiduccia–Mattheyses / Kernighan–Lin style boundary refinement under
//!   balance constraints.
//! * [`kway`] — the multilevel driver: recursive bisection with greedy graph growing
//!   initial partitions, projection and per-level refinement.
//! * [`naive`] — the baselines the paper actually used for its measurements
//!   ("we currently use a suboptimal naive partitioning"): round-robin, contiguous
//!   block, hash and random assignment.
//!
//! The public entry point is [`partition`] with a [`PartitionConfig`].

pub mod coarsen;
pub mod graph;
pub mod kway;
pub mod naive;
pub mod refine;

pub use graph::{Graph, GraphBuilder};
pub use kway::multilevel_kway;
pub use naive::{block_partition, hash_partition, random_partition, round_robin_partition};

/// Which partitioning algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Multilevel recursive bisection with FM refinement (the Metis-style default).
    Multilevel,
    /// Round-robin assignment by vertex index (the paper's "naive" partitioning).
    RoundRobin,
    /// Contiguous blocks of vertices.
    Block,
    /// Deterministic hash of the vertex index.
    Hash,
    /// Uniform random assignment (seeded).
    Random,
}

/// Configuration for [`partition`].
#[derive(Clone, Debug)]
pub struct PartitionConfig {
    /// Number of parts (>= 1).
    pub nparts: usize,
    /// Algorithm to use.
    pub method: Method,
    /// Allowed imbalance: a part may weigh up to `(1 + balance_tolerance) * ideal`.
    pub balance_tolerance: f64,
    /// Stop coarsening when the graph has at most this many vertices.
    pub coarsen_to: usize,
    /// Number of refinement passes per level.
    pub refine_passes: usize,
    /// Seed for randomized choices (matching order, random partitioning).
    pub seed: u64,
    /// Minimum number of non-empty parts (capped at `nparts` and at the vertex
    /// count). The multilevel scheme legitimately minimises the cut by collapsing a
    /// small dependence graph into one part — which yields a "distribution" with zero
    /// communication and no offloading at all. A floor of 2 guarantees the default
    /// pipeline actually places work on more than one node; set to 0 or 1 to allow
    /// fully collapsed partitions.
    pub min_parallelism: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            nparts: 2,
            method: Method::Multilevel,
            balance_tolerance: 0.10,
            coarsen_to: 64,
            refine_passes: 4,
            seed: 0x5eed,
            min_parallelism: 2,
        }
    }
}

impl PartitionConfig {
    /// Convenience constructor for a k-way multilevel partitioning.
    pub fn kway(nparts: usize) -> Self {
        PartitionConfig {
            nparts,
            ..Default::default()
        }
    }

    /// Convenience constructor for the paper's naive round-robin partitioning.
    pub fn naive(nparts: usize) -> Self {
        PartitionConfig {
            nparts,
            method: Method::RoundRobin,
            ..Default::default()
        }
    }
}

/// The result of a partitioning run.
#[derive(Clone, Debug, PartialEq)]
pub struct Partitioning {
    /// Part index (0..nparts) for every vertex.
    pub assignment: Vec<usize>,
    /// Total weight of edges whose endpoints lie in different parts.
    pub edgecut: u64,
    /// Number of edges crossing parts (unweighted edge cut, Table 1's "EC" column).
    pub cut_edges: usize,
    /// Per-constraint imbalance: max part weight / ideal part weight.
    pub imbalance: Vec<f64>,
    /// Number of parts requested.
    pub nparts: usize,
}

/// Partitions `graph` into `config.nparts` parts.
///
/// Empty graphs yield an empty assignment; `nparts == 1` puts everything in part 0.
/// Afterwards the `min_parallelism` constraint is enforced (see
/// [`PartitionConfig::min_parallelism`]).
pub fn partition(graph: &Graph, config: &PartitionConfig) -> Partitioning {
    let n = graph.vertex_count();
    let mut assignment = if n == 0 {
        Vec::new()
    } else if config.nparts <= 1 {
        vec![0; n]
    } else {
        match config.method {
            Method::Multilevel => kway::multilevel_kway(graph, config),
            Method::RoundRobin => naive::round_robin_partition(n, config.nparts),
            Method::Block => naive::block_partition(n, config.nparts),
            Method::Hash => naive::hash_partition(n, config.nparts),
            Method::Random => naive::random_partition(n, config.nparts, config.seed),
        }
    };
    enforce_min_parallelism(graph, &mut assignment, config);
    summarize(graph, assignment, config.nparts)
}

/// Ensures at least `min(min_parallelism, nparts, n)` parts are non-empty by moving,
/// one at a time, the vertex whose migration adds the least edge weight to the cut
/// (choosing from parts that keep at least one vertex) into an empty part.
fn enforce_min_parallelism(graph: &Graph, assignment: &mut [usize], config: &PartitionConfig) {
    let n = assignment.len();
    let target = config.min_parallelism.min(config.nparts).min(n);
    if target <= 1 {
        return;
    }
    loop {
        let mut part_sizes = vec![0usize; config.nparts];
        for &a in assignment.iter() {
            part_sizes[a] += 1;
        }
        let non_empty = part_sizes.iter().filter(|&&s| s > 0).count();
        if non_empty >= target {
            return;
        }
        let empty_part = part_sizes
            .iter()
            .position(|&s| s == 0)
            .expect("non_empty < nparts implies an empty part exists");
        // The cost of moving v out of its part is the weight of its edges into that
        // part (they become cut edges) minus the weight of edges already cut that
        // stay cut; edges into the empty destination are impossible. Prefer the
        // cheapest move, breaking ties towards lighter vertices.
        let candidate = (0..n)
            .filter(|&v| part_sizes[assignment[v]] > 1)
            .map(|v| {
                let internal: u64 = graph
                    .neighbours(v)
                    .filter(|&(u, _)| assignment[u] == assignment[v])
                    .map(|(_, w)| w)
                    .sum();
                (internal, graph.vertex_weight(v)[0], v)
            })
            .min();
        match candidate {
            Some((_, _, v)) => assignment[v] = empty_part,
            None => return, // every part has exactly one vertex; nothing to move
        }
    }
}

/// Repartitions `graph` with a warm start: runs a fresh partitioning *and*
/// evaluates the incumbent assignment `hint` under the (re-weighted) graph, then
/// returns whichever cuts less edge weight. The adaptive serving loop calls this
/// with the currently installed placement as the hint, which guarantees the
/// result is never worse than what is already running — a fresh multilevel run
/// on freshly re-weighted edges can legitimately lose to an incumbent that the
/// previous round already optimised.
///
/// A hint of the wrong length, or naming parts outside `0..nparts`, is ignored
/// (the fresh partitioning wins by default). The hint is re-subjected to the
/// `min_parallelism` floor, so a collapsed incumbent cannot sneak past it.
pub fn repartition(graph: &Graph, config: &PartitionConfig, hint: &[usize]) -> Partitioning {
    let fresh = partition(graph, config);
    let valid =
        hint.len() == graph.vertex_count() && hint.iter().all(|&p| p < config.nparts.max(1));
    if !valid {
        return fresh;
    }
    let mut warm = hint.to_vec();
    enforce_min_parallelism(graph, &mut warm, config);
    let warm = summarize(graph, warm, config.nparts);
    if warm.edgecut < fresh.edgecut {
        warm
    } else {
        fresh
    }
}

/// Computes the quality metrics for an existing assignment.
pub fn summarize(graph: &Graph, assignment: Vec<usize>, nparts: usize) -> Partitioning {
    let edgecut = graph.edge_cut(&assignment);
    let cut_edges = graph.cut_edge_count(&assignment);
    let imbalance = graph.imbalance(&assignment, nparts);
    Partitioning {
        assignment,
        edgecut,
        cut_edges,
        imbalance,
        nparts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Two dense clusters of 8 vertices joined by a single light edge: the multilevel
    /// partitioner must find the obvious cut.
    fn two_clusters() -> Graph {
        let mut b = GraphBuilder::new(16, 1);
        for v in 0..16 {
            b.set_weight(v, &[1]);
        }
        for c in 0..2 {
            let base = c * 8;
            for i in 0..8 {
                for j in (i + 1)..8 {
                    b.add_edge(base + i, base + j, 10);
                }
            }
        }
        b.add_edge(3, 12, 1);
        b.build()
    }

    #[test]
    fn multilevel_finds_the_natural_bisection() {
        let g = two_clusters();
        let p = partition(&g, &PartitionConfig::kway(2));
        assert_eq!(p.assignment.len(), 16);
        assert_eq!(p.edgecut, 1, "only the bridge edge should be cut");
        // Both clusters stay whole.
        for i in 0..8 {
            assert_eq!(p.assignment[i], p.assignment[0]);
            assert_eq!(p.assignment[8 + i], p.assignment[8]);
        }
        assert_ne!(p.assignment[0], p.assignment[8]);
    }

    #[test]
    fn multilevel_beats_round_robin_on_clustered_graphs() {
        let g = two_clusters();
        let ml = partition(&g, &PartitionConfig::kway(2));
        let rr = partition(&g, &PartitionConfig::naive(2));
        assert!(ml.edgecut < rr.edgecut);
    }

    #[test]
    fn all_methods_produce_valid_assignments() {
        let g = two_clusters();
        for method in [
            Method::Multilevel,
            Method::RoundRobin,
            Method::Block,
            Method::Hash,
            Method::Random,
        ] {
            let cfg = PartitionConfig {
                nparts: 4,
                method,
                ..Default::default()
            };
            let p = partition(&g, &cfg);
            assert_eq!(p.assignment.len(), 16);
            assert!(p.assignment.iter().all(|&a| a < 4));
        }
    }

    #[test]
    fn single_part_and_empty_graph_edge_cases() {
        let g = two_clusters();
        let p1 = partition(&g, &PartitionConfig::kway(1));
        assert!(p1.assignment.iter().all(|&a| a == 0));
        assert_eq!(p1.edgecut, 0);

        let empty = GraphBuilder::new(0, 1).build();
        let p0 = partition(&empty, &PartitionConfig::kway(2));
        assert!(p0.assignment.is_empty());
        assert_eq!(p0.edgecut, 0);
    }

    #[test]
    fn imbalance_stays_within_tolerance_on_uniform_graphs() {
        let g = two_clusters();
        let cfg = PartitionConfig::kway(2);
        let p = partition(&g, &cfg);
        for &imb in &p.imbalance {
            assert!(imb <= 1.0 + cfg.balance_tolerance + 1e-9, "imbalance {imb}");
        }
    }

    #[test]
    fn min_parallelism_prevents_fully_collapsed_partitions() {
        // A single dense clique: the cut-minimal 2-way partition puts everything in
        // one part (cut 0), which means no distribution at all. The min-parallelism
        // constraint must force a second non-empty part.
        let mut b = GraphBuilder::new(6, 1);
        for v in 0..6 {
            b.set_weight(v, &[1]);
            for u in (v + 1)..6 {
                b.add_edge(v, u, 5);
            }
        }
        let g = b.build();
        let p = partition(&g, &PartitionConfig::kway(2));
        let mut counts = [0usize; 2];
        for &a in &p.assignment {
            counts[a] += 1;
        }
        assert!(
            counts[0] > 0 && counts[1] > 0,
            "both parts must be populated: {counts:?}"
        );
    }

    #[test]
    fn min_parallelism_can_be_disabled() {
        let mut b = GraphBuilder::new(4, 1);
        for v in 0..4 {
            b.set_weight(v, &[1]);
            b.add_edge(v, (v + 1) % 4, 9);
        }
        let g = b.build();
        let cfg = PartitionConfig {
            min_parallelism: 0,
            ..PartitionConfig::kway(2)
        };
        // With the constraint off the partitioner may do whatever minimises the cut;
        // the assignment merely has to be valid.
        let p = partition(&g, &cfg);
        assert!(p.assignment.iter().all(|&a| a < 2));
    }

    #[test]
    fn min_parallelism_is_capped_by_vertex_count() {
        let mut b = GraphBuilder::new(1, 1);
        b.set_weight(0, &[1]);
        let g = b.build();
        let p = partition(&g, &PartitionConfig::kway(4));
        assert_eq!(p.assignment, vec![0], "one vertex can only fill one part");
    }

    #[test]
    fn repartition_keeps_a_better_incumbent() {
        // Hand the optimal bisection of the two-cluster graph as the hint but
        // configure a naive method whose fresh run cuts far more: the warm start
        // must win.
        let g = two_clusters();
        let cfg = PartitionConfig::naive(2);
        let hint: Vec<usize> = (0..16).map(|v| v / 8).collect();
        let p = repartition(&g, &cfg, &hint);
        assert_eq!(p.edgecut, 1, "the incumbent bisection is kept");
        assert_eq!(p.assignment, hint);
    }

    #[test]
    fn repartition_abandons_a_worse_incumbent() {
        // An alternating incumbent cuts almost every clique edge; the fresh
        // multilevel run must replace it.
        let g = two_clusters();
        let cfg = PartitionConfig::kway(2);
        let hint: Vec<usize> = (0..16).map(|v| v % 2).collect();
        let p = repartition(&g, &cfg, &hint);
        assert_eq!(p.edgecut, 1, "the fresh run wins over the bad incumbent");
    }

    #[test]
    fn repartition_ignores_invalid_hints() {
        let g = two_clusters();
        let cfg = PartitionConfig::kway(2);
        let fresh = partition(&g, &cfg);
        // Wrong length.
        assert_eq!(repartition(&g, &cfg, &[0; 3]), fresh);
        // Part index out of range.
        let bad: Vec<usize> = (0..16).map(|_| 7).collect();
        assert_eq!(repartition(&g, &cfg, &bad), fresh);
    }

    #[test]
    fn repartition_re_enforces_min_parallelism_on_the_hint() {
        // A collapsed incumbent (everything on part 0) would have edgecut 0 and
        // always "win" — unless the floor is re-applied to it first.
        let g = two_clusters();
        let cfg = PartitionConfig::kway(2);
        let p = repartition(&g, &cfg, &[0; 16]);
        let mut counts = [0usize; 2];
        for &a in &p.assignment {
            counts[a] += 1;
        }
        assert!(counts[0] > 0 && counts[1] > 0, "{counts:?}");
    }

    #[test]
    fn four_way_partition_of_ring() {
        // A ring of 32 vertices: a 4-way partition should cut few edges (>= 4 by
        // necessity) and keep parts near 8 vertices each.
        let mut b = GraphBuilder::new(32, 1);
        for v in 0..32 {
            b.set_weight(v, &[1]);
            b.add_edge(v, (v + 1) % 32, 1);
        }
        let g = b.build();
        let p = partition(&g, &PartitionConfig::kway(4));
        assert!(p.edgecut >= 4);
        assert!(p.edgecut <= 10, "edgecut {} too high for a ring", p.edgecut);
        let mut counts = [0usize; 4];
        for &a in &p.assignment {
            counts[a] += 1;
        }
        for c in counts {
            assert!(c >= 4, "part sizes {counts:?} too skewed");
        }
    }
}
