//! Heavy-edge-matching coarsening.
//!
//! The first phase of the multilevel scheme: vertices are visited in a pseudo-random
//! order and matched with the unmatched neighbour connected by the heaviest edge
//! (heavy-edge matching, HEM). Matched pairs collapse into a single coarse vertex whose
//! weight vector is the sum of its constituents; edges between coarse vertices
//! accumulate the fine edge weights.

use crate::graph::{Graph, GraphBuilder};

/// One level of the coarsening hierarchy.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The coarser graph.
    pub graph: Graph,
    /// For every fine vertex, the coarse vertex it collapsed into.
    pub map: Vec<usize>,
}

/// A deterministic pseudo-random permutation of `0..n` derived from `seed`.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut state = seed | 1;
    for i in (1..n).rev() {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let j = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Performs one round of heavy-edge matching.
///
/// Returns `None` when the graph no longer shrinks meaningfully (fewer than ~10% of the
/// vertices can be matched), which signals the driver to stop coarsening.
pub fn coarsen_once(graph: &Graph, seed: u64) -> Option<CoarseLevel> {
    let n = graph.vertex_count();
    if n < 2 {
        return None;
    }
    const UNMATCHED: usize = usize::MAX;
    let mut match_of = vec![UNMATCHED; n];
    let order = permutation(n, seed);
    let mut matched_pairs = 0usize;

    for &v in &order {
        if match_of[v] != UNMATCHED {
            continue;
        }
        // Heaviest unmatched neighbour.
        let mut best: Option<(usize, u64)> = None;
        for (u, w) in graph.neighbours(v) {
            if match_of[u] == UNMATCHED && u != v {
                match best {
                    Some((_, bw)) if bw >= w => {}
                    _ => best = Some((u, w)),
                }
            }
        }
        match best {
            Some((u, _)) => {
                match_of[v] = u;
                match_of[u] = v;
                matched_pairs += 1;
            }
            None => match_of[v] = v,
        }
    }

    if matched_pairs * 10 < n {
        return None; // not shrinking enough to be worth another level
    }

    // Assign coarse ids.
    let mut map = vec![UNMATCHED; n];
    let mut next = 0usize;
    for v in 0..n {
        if map[v] != UNMATCHED {
            continue;
        }
        let m = match_of[v];
        map[v] = next;
        if m != v {
            map[m] = next;
        }
        next += 1;
    }

    // Build the coarse graph.
    let mut builder = GraphBuilder::new(next, graph.ncon);
    let mut weights = vec![vec![0u64; graph.ncon]; next];
    for v in 0..n {
        for (acc, w) in weights[map[v]].iter_mut().zip(graph.vertex_weight(v)) {
            *acc += w;
        }
    }
    for (cv, w) in weights.iter().enumerate() {
        builder.set_weight(cv, w);
    }
    for v in 0..n {
        for (u, w) in graph.neighbours(v) {
            if u > v && map[u] != map[v] {
                builder.add_edge(map[v], map[u], w);
            }
        }
    }
    Some(CoarseLevel {
        graph: builder.build(),
        map,
    })
}

/// Coarsens repeatedly until the graph has at most `coarsen_to` vertices or stops
/// shrinking. Returns the hierarchy from finest to coarsest (may be empty).
pub fn coarsen_hierarchy(graph: &Graph, coarsen_to: usize, seed: u64) -> Vec<CoarseLevel> {
    let mut levels = Vec::new();
    let mut current = graph.clone();
    let mut round = 0u64;
    while current.vertex_count() > coarsen_to.max(2) {
        match coarsen_once(&current, seed.wrapping_add(round)) {
            Some(level) => {
                current = level.graph.clone();
                levels.push(level);
                round += 1;
            }
            None => break,
        }
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn grid(n: usize) -> Graph {
        // n x n grid graph with unit weights.
        let mut b = GraphBuilder::new(n * n, 1);
        for i in 0..n {
            for j in 0..n {
                let v = i * n + j;
                if j + 1 < n {
                    b.add_edge(v, v + 1, 1);
                }
                if i + 1 < n {
                    b.add_edge(v, v + n, 1);
                }
            }
        }
        b.build()
    }

    #[test]
    fn coarsening_shrinks_and_preserves_total_weight() {
        let g = grid(8);
        let level = coarsen_once(&g, 7).expect("coarsens");
        assert!(level.graph.vertex_count() < g.vertex_count());
        assert!(level.graph.vertex_count() >= g.vertex_count() / 2);
        assert_eq!(level.graph.total_weight(), g.total_weight());
        // The map covers every fine vertex and targets valid coarse vertices.
        assert_eq!(level.map.len(), g.vertex_count());
        assert!(level.map.iter().all(|&cv| cv < level.graph.vertex_count()));
    }

    #[test]
    fn heavy_edges_are_preferred() {
        // 0-1 heavy, 1-2 light: 0 and 1 should be merged.
        let mut b = GraphBuilder::new(4, 1);
        b.add_edge(0, 1, 100);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 100);
        let g = b.build();
        let level = coarsen_once(&g, 1).expect("coarsens");
        assert_eq!(level.map[0], level.map[1]);
        assert_eq!(level.map[2], level.map[3]);
        assert_ne!(level.map[0], level.map[2]);
    }

    #[test]
    fn hierarchy_reaches_target_size() {
        let g = grid(10);
        let levels = coarsen_hierarchy(&g, 12, 3);
        assert!(!levels.is_empty());
        let coarsest = &levels.last().unwrap().graph;
        assert!(coarsest.vertex_count() <= 25, "close to the target size");
        // Monotone shrinking.
        let mut prev = g.vertex_count();
        for l in &levels {
            assert!(l.graph.vertex_count() < prev);
            prev = l.graph.vertex_count();
        }
    }

    #[test]
    fn tiny_graphs_do_not_coarsen() {
        let g = GraphBuilder::new(1, 1).build();
        assert!(coarsen_once(&g, 1).is_none());
        let g2 = GraphBuilder::new(0, 1).build();
        assert!(coarsen_once(&g2, 1).is_none());
    }

    #[test]
    fn edgeless_graph_stops_coarsening() {
        let g = GraphBuilder::new(50, 1).build();
        // No edges => no matches => None.
        assert!(coarsen_once(&g, 1).is_none());
        assert!(coarsen_hierarchy(&g, 10, 1).is_empty());
    }
}
