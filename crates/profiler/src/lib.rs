//! # autodist-profiler
//!
//! The mixed instrumentation/sampling profiler of Section 6 of the paper, implemented
//! against the runtime's [`ProfilerSink`] hook surface. Six metrics are provided, one
//! per column of the paper's Table 3:
//!
//! | metric | technique |
//! |---|---|
//! | method duration   | instrumentation (enter/exit timestamps) |
//! | method frequency  | instrumentation (per-method counters) |
//! | hot methods       | sampling (top stack frame per quantum) |
//! | hot paths         | sampling (whole call stack per quantum) |
//! | memory allocation | VM hooks on the allocator |
//! | dynamic call graph| sampling (adjacent stack frames) |
//!
//! A [`Profiler`] is handed to the interpreter; its measurements accumulate in a shared
//! [`ProfileHandle`] that survives the run. [`overhead::measure_overheads`] reproduces
//! the Table 3 experiment: run a workload once with the profiling code "compiled in but
//! not enabled" (the baseline) and once per enabled metric, reporting wall-clock
//! overhead percentages.

pub mod overhead;

use std::collections::BTreeMap;
use std::sync::Arc;

use autodist_ir::program::{ClassId, MethodId, Program};
use autodist_runtime::interp::ProfilerSink;
use parking_lot::Mutex;

/// The metric a [`Profiler`] instance collects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Metric {
    /// Total virtual time spent per method (instrumentation).
    MethodDuration,
    /// Invocation count per method (instrumentation).
    MethodFrequency,
    /// Top-of-stack sample counts (sampling).
    HotMethods,
    /// Whole-call-stack sample counts (sampling).
    HotPaths,
    /// Bytes and counts allocated per class (allocator hook).
    MemoryAllocation,
    /// Caller→callee edges observed in samples (sampling).
    DynamicCallGraph,
}

impl Metric {
    /// All six metrics in Table 3 column order.
    pub fn all() -> [Metric; 6] {
        [
            Metric::HotPaths,
            Metric::DynamicCallGraph,
            Metric::HotMethods,
            Metric::MethodDuration,
            Metric::MethodFrequency,
            Metric::MemoryAllocation,
        ]
    }

    /// Human-readable name as used in the paper's table.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::MethodDuration => "Method Duration",
            Metric::MethodFrequency => "Method Frequency",
            Metric::HotMethods => "Hot Methods",
            Metric::HotPaths => "Hot Paths",
            Metric::MemoryAllocation => "Memory Usage",
            Metric::DynamicCallGraph => "Dynamic Call Graph",
        }
    }

    /// `true` for the metrics implemented through per-call instrumentation (the ones
    /// the paper found to have notably higher overhead).
    pub fn is_instrumentation(&self) -> bool {
        matches!(self, Metric::MethodDuration | Metric::MethodFrequency)
    }
}

/// The accumulated measurements of one profiled run.
#[derive(Clone, Debug, Default)]
pub struct ProfileData {
    /// Total virtual microseconds per method (method duration metric).
    pub method_duration_us: BTreeMap<MethodId, f64>,
    /// Invocation counts per method (method frequency metric).
    pub method_frequency: BTreeMap<MethodId, u64>,
    /// Top-of-stack sample counts per method (hot methods metric).
    pub hot_methods: BTreeMap<MethodId, u64>,
    /// Sample counts per full call path (hot paths metric).
    pub hot_paths: BTreeMap<Vec<MethodId>, u64>,
    /// (bytes, count) allocated per class; arrays are keyed under `None`.
    pub allocations: BTreeMap<Option<ClassId>, (u64, u64)>,
    /// Sampled caller→callee edges (dynamic call graph metric).
    pub call_graph: BTreeMap<(MethodId, MethodId), u64>,
    /// Number of sampling ticks observed.
    pub samples: u64,
}

impl ProfileData {
    /// The `k` hottest methods by sample count.
    pub fn hottest_methods(&self, k: usize) -> Vec<(MethodId, u64)> {
        let mut v: Vec<(MethodId, u64)> = self.hot_methods.iter().map(|(m, c)| (*m, *c)).collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v.truncate(k);
        v
    }

    /// The `k` hottest call paths.
    pub fn hottest_paths(&self, k: usize) -> Vec<(Vec<MethodId>, u64)> {
        let mut v: Vec<(Vec<MethodId>, u64)> = self
            .hot_paths
            .iter()
            .map(|(p, c)| (p.clone(), *c))
            .collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v.truncate(k);
        v
    }

    /// Total bytes allocated across all classes.
    pub fn total_allocated_bytes(&self) -> u64 {
        self.allocations.values().map(|(b, _)| *b).sum()
    }

    /// Renders a short human-readable report.
    pub fn render(&self, program: &Program) -> String {
        use std::fmt::Write as _;
        let name = |m: MethodId| {
            let method = program.method(m);
            format!("{}.{}", program.class(method.class).name, method.name)
        };
        let mut out = String::new();
        if !self.method_frequency.is_empty() {
            let _ = writeln!(out, "method frequency:");
            for (m, c) in &self.method_frequency {
                let _ = writeln!(out, "  {:<40} {c}", name(*m));
            }
        }
        if !self.method_duration_us.is_empty() {
            let _ = writeln!(out, "method duration (virtual us):");
            for (m, t) in &self.method_duration_us {
                let _ = writeln!(out, "  {:<40} {t:.1}", name(*m));
            }
        }
        if !self.hot_methods.is_empty() {
            let _ = writeln!(out, "hot methods (samples):");
            for (m, c) in self.hottest_methods(10) {
                let _ = writeln!(out, "  {:<40} {c}", name(m));
            }
        }
        if !self.hot_paths.is_empty() {
            let _ = writeln!(out, "hot paths (samples):");
            for (p, c) in self.hottest_paths(5) {
                let path: Vec<String> = p.iter().map(|&m| name(m)).collect();
                let _ = writeln!(out, "  {:<60} {c}", path.join(" > "));
            }
        }
        if !self.allocations.is_empty() {
            let _ = writeln!(out, "memory allocation:");
            for (c, (bytes, count)) in &self.allocations {
                let cname = match c {
                    Some(c) => program.class(*c).name.clone(),
                    None => "<array>".to_string(),
                };
                let _ = writeln!(out, "  {cname:<40} {count} objects, {bytes} bytes");
            }
        }
        if !self.call_graph.is_empty() {
            let _ = writeln!(out, "dynamic call graph edges: {}", self.call_graph.len());
        }
        out
    }
}

/// Shared handle to the data a [`Profiler`] collects (clone it before handing the
/// profiler to the interpreter, read it after the run).
pub type ProfileHandle = Arc<Mutex<ProfileData>>;

/// A [`ProfilerSink`] implementation collecting one metric (or none, for the baseline
/// configuration where the profiling code is compiled in but not enabled).
pub struct Profiler {
    metric: Option<Metric>,
    data: ProfileHandle,
    entry_stack: Vec<(MethodId, f64)>,
}

impl Profiler {
    /// Creates a profiler for `metric` plus the shared handle holding its results.
    pub fn new(metric: Option<Metric>) -> (Profiler, ProfileHandle) {
        let data: ProfileHandle = Arc::new(Mutex::new(ProfileData::default()));
        (
            Profiler {
                metric,
                data: data.clone(),
                entry_stack: Vec::new(),
            },
            data,
        )
    }

    /// The sampling quantum (in interpreted instructions) recommended for this metric;
    /// 0 disables the sampling machinery entirely.
    pub fn sample_interval(metric: Option<Metric>) -> u64 {
        match metric {
            Some(Metric::HotMethods | Metric::HotPaths | Metric::DynamicCallGraph) => 2_000,
            _ => 0,
        }
    }
}

impl ProfilerSink for Profiler {
    fn method_enter(&mut self, method: MethodId, clock_us: f64) {
        match self.metric {
            Some(Metric::MethodDuration) => self.entry_stack.push((method, clock_us)),
            Some(Metric::MethodFrequency) => {
                *self.data.lock().method_frequency.entry(method).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    fn method_exit(&mut self, method: MethodId, clock_us: f64) {
        if self.metric == Some(Metric::MethodDuration) {
            // On a mismatched enter/exit pair (the interpreter unwinding past a
            // frame) the elapsed time is attributed to the exiting method.
            if let Some((_, start)) = self.entry_stack.pop() {
                *self
                    .data
                    .lock()
                    .method_duration_us
                    .entry(method)
                    .or_insert(0.0) += clock_us - start;
            }
        }
    }

    fn allocation(&mut self, class: Option<ClassId>, bytes: u64) {
        if self.metric == Some(Metric::MemoryAllocation) {
            let mut d = self.data.lock();
            let e = d.allocations.entry(class).or_insert((0, 0));
            e.0 += bytes;
            e.1 += 1;
        }
    }

    fn sample(&mut self, stack: &[MethodId]) {
        let metric = match self.metric {
            Some(m) => m,
            None => return,
        };
        let mut d = self.data.lock();
        d.samples += 1;
        match metric {
            Metric::HotMethods => {
                if let Some(&top) = stack.last() {
                    *d.hot_methods.entry(top).or_insert(0) += 1;
                }
            }
            Metric::HotPaths if !stack.is_empty() => {
                *d.hot_paths.entry(stack.to_vec()).or_insert(0) += 1;
            }
            Metric::DynamicCallGraph => {
                for w in stack.windows(2) {
                    *d.call_graph.entry((w[0], w[1])).or_insert(0) += 1;
                }
            }
            _ => {}
        }
    }

    fn wants_instrumentation(&self) -> bool {
        self.metric.map(|m| m.is_instrumentation()).unwrap_or(false)
    }
}

/// Cheap per-class tallies accumulated *across* requests: the aggregate profile
/// the adaptive replanner (serving mode's epoch controller) repartitions from.
/// Unlike [`ProfileData`], which keys by method and call path for human analysis,
/// this keeps only what the partitioner's weight model consumes — per-class
/// invocation counts and allocated bytes.
#[derive(Clone, Debug, Default)]
pub struct AggregateProfile {
    /// Method invocations per owning class, summed over flushed requests.
    pub invocations: BTreeMap<ClassId, u64>,
    /// Bytes allocated per class, summed over flushed requests.
    pub alloc_bytes: BTreeMap<ClassId, u64>,
    /// Completed sinks that flushed into this aggregate (≈ profiled node-runs).
    pub flushes: u64,
}

impl AggregateProfile {
    /// Drains the accumulated profile, leaving an empty aggregate for the next
    /// epoch (the epoch controller calls this once per repartition decision).
    pub fn take(&mut self) -> AggregateProfile {
        std::mem::take(self)
    }

    /// `true` when nothing has been recorded since the last [`take`](Self::take).
    pub fn is_empty(&self) -> bool {
        self.invocations.is_empty() && self.alloc_bytes.is_empty()
    }
}

/// Shared handle to an [`AggregateProfile`]: the planner keeps one per app and
/// hands sinks pointing at it to every admitted request.
pub type AggregateHandle = Arc<Mutex<AggregateProfile>>;

/// A fresh, empty [`AggregateHandle`].
pub fn aggregate_handle() -> AggregateHandle {
    Arc::new(Mutex::new(AggregateProfile::default()))
}

/// Builds the method → owning-class table an [`AggregateSink`] resolves
/// invocations through. Computed once per app from the *original* (pre-rewrite)
/// program, whose class and method ids the per-node placed copies preserve.
pub fn method_table(program: &Program) -> Arc<Vec<ClassId>> {
    Arc::new(
        (0..program.method_count())
            .map(|i| program.method(MethodId(i as u32)).class)
            .collect(),
    )
}

/// A [`ProfilerSink`] rolling per-class invocation and allocation tallies into a
/// shared [`AggregateHandle`]. Designed for serving mode: each admitted request
/// gets a fresh sink (local maps, no locking on the hot path) that merges into
/// the shared aggregate exactly once, on drop — i.e. in the request epilogue,
/// before the epoch controller looks at the profile.
///
/// Like every sink, it is purely observational: it records enters and
/// allocations but never steers execution, so attaching it leaves a request's
/// virtual time, message and byte counts byte-identical to an unprofiled run.
pub struct AggregateSink {
    /// Method id → owning class, from [`method_table`]. Ids past the end belong
    /// to synthetic runtime classes the rewrite appended (`rt/DependentObject`
    /// accessors); those are placement machinery, not application load, and are
    /// skipped.
    method_class: Arc<Vec<ClassId>>,
    class_count: usize,
    invocations: BTreeMap<ClassId, u64>,
    alloc_bytes: BTreeMap<ClassId, u64>,
    shared: AggregateHandle,
}

impl AggregateSink {
    /// A sink tallying into `shared`, resolving methods through `method_class`
    /// (classes with id ≥ `class_count` are synthetic and ignored).
    pub fn new(
        method_class: Arc<Vec<ClassId>>,
        class_count: usize,
        shared: AggregateHandle,
    ) -> Self {
        AggregateSink {
            method_class,
            class_count,
            invocations: BTreeMap::new(),
            alloc_bytes: BTreeMap::new(),
            shared,
        }
    }
}

impl ProfilerSink for AggregateSink {
    fn method_enter(&mut self, method: MethodId, _clock_us: f64) {
        if let Some(&class) = self.method_class.get(method.0 as usize) {
            *self.invocations.entry(class).or_insert(0) += 1;
        }
    }

    fn method_exit(&mut self, _method: MethodId, _clock_us: f64) {}

    fn allocation(&mut self, class: Option<ClassId>, bytes: u64) {
        if let Some(class) = class {
            if (class.0 as usize) < self.class_count {
                *self.alloc_bytes.entry(class).or_insert(0) += bytes;
            }
        }
    }

    fn sample(&mut self, _stack: &[MethodId]) {}
}

impl Drop for AggregateSink {
    fn drop(&mut self) {
        if self.invocations.is_empty() && self.alloc_bytes.is_empty() {
            return;
        }
        let mut shared = self.shared.lock();
        for (class, n) in std::mem::take(&mut self.invocations) {
            *shared.invocations.entry(class).or_insert(0) += n;
        }
        for (class, b) in std::mem::take(&mut self.alloc_bytes) {
            *shared.alloc_bytes.entry(class).or_insert(0) += b;
        }
        shared.flushes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autodist_ir::frontend::compile_source;
    use autodist_runtime::cluster::run_centralized_profiled;

    const WORK_SRC: &str = r#"
        class Node { int v; }
        class Worker {
            int spin(int n) {
                int acc = 0;
                int i = 0;
                while (i < n) { acc = acc + i % 7; i = i + 1; }
                return acc;
            }
            Node make() { return new Node(); }
        }
        class Main {
            static void main() {
                Worker w = new Worker();
                int r = 0;
                int i = 0;
                while (i < 40) {
                    r = r + w.spin(200);
                    Node n = w.make();
                    i = i + 1;
                }
            }
        }
    "#;

    fn run_with(metric: Option<Metric>) -> (ProfileHandle, autodist_ir::Program) {
        let p = compile_source(WORK_SRC).unwrap();
        let (profiler, handle) = Profiler::new(metric);
        let report = run_centralized_profiled(
            &p,
            1.0,
            Some(Box::new(profiler)),
            Profiler::sample_interval(metric),
        );
        assert!(report.is_ok(), "{:?}", report.error);
        (handle, p)
    }

    #[test]
    fn method_frequency_counts_invocations() {
        let (handle, p) = run_with(Some(Metric::MethodFrequency));
        let data = handle.lock();
        let worker = p.class_by_name("Worker").unwrap();
        let spin = p.find_method(worker, "spin").unwrap();
        assert_eq!(data.method_frequency.get(&spin), Some(&40));
        let make = p.find_method(worker, "make").unwrap();
        assert_eq!(data.method_frequency.get(&make), Some(&40));
    }

    #[test]
    fn method_duration_attributes_time_to_hot_methods() {
        let (handle, p) = run_with(Some(Metric::MethodDuration));
        let data = handle.lock();
        let worker = p.class_by_name("Worker").unwrap();
        let spin = p.find_method(worker, "spin").unwrap();
        let make = p.find_method(worker, "make").unwrap();
        let t_spin = data.method_duration_us.get(&spin).copied().unwrap_or(0.0);
        let t_make = data.method_duration_us.get(&make).copied().unwrap_or(0.0);
        assert!(t_spin > 0.0);
        assert!(
            t_spin > t_make * 5.0,
            "spin dominates ({t_spin} vs {t_make})"
        );
    }

    #[test]
    fn hot_methods_sampling_finds_the_hot_loop() {
        let (handle, p) = run_with(Some(Metric::HotMethods));
        let data = handle.lock();
        assert!(data.samples > 0, "sampling ticks fired");
        let hottest = data.hottest_methods(1);
        assert!(!hottest.is_empty());
        let worker = p.class_by_name("Worker").unwrap();
        let spin = p.find_method(worker, "spin").unwrap();
        assert_eq!(hottest[0].0, spin, "spin is the hottest method");
    }

    #[test]
    fn hot_paths_contain_main_to_spin_chain() {
        let (handle, p) = run_with(Some(Metric::HotPaths));
        let data = handle.lock();
        let worker = p.class_by_name("Worker").unwrap();
        let spin = p.find_method(worker, "spin").unwrap();
        let main = p.entry.unwrap();
        let top = data.hottest_paths(1);
        assert!(!top.is_empty());
        assert_eq!(top[0].0.first(), Some(&main));
        assert_eq!(top[0].0.last(), Some(&spin));
    }

    #[test]
    fn memory_allocation_tracks_classes_and_arrays() {
        let (handle, p) = run_with(Some(Metric::MemoryAllocation));
        let data = handle.lock();
        let node = p.class_by_name("Node").unwrap();
        let (bytes, count) = data.allocations.get(&Some(node)).copied().unwrap_or((0, 0));
        assert_eq!(count, 40);
        assert!(bytes > 0);
        assert!(data.total_allocated_bytes() >= bytes);
    }

    #[test]
    fn dynamic_call_graph_records_caller_callee_edges() {
        let (handle, p) = run_with(Some(Metric::DynamicCallGraph));
        let data = handle.lock();
        let main = p.entry.unwrap();
        let worker = p.class_by_name("Worker").unwrap();
        let spin = p.find_method(worker, "spin").unwrap();
        assert!(data.call_graph.get(&(main, spin)).copied().unwrap_or(0) > 0);
    }

    #[test]
    fn baseline_profiler_collects_nothing() {
        let (handle, _p) = run_with(None);
        let data = handle.lock();
        assert!(data.method_frequency.is_empty());
        assert!(data.hot_methods.is_empty());
        assert!(data.allocations.is_empty());
        assert_eq!(data.samples, 0);
    }

    #[test]
    fn render_produces_readable_output() {
        let (handle, p) = run_with(Some(Metric::MethodFrequency));
        let text = handle.lock().render(&p);
        assert!(text.contains("method frequency"));
        assert!(text.contains("Worker.spin"));
    }

    #[test]
    fn aggregate_sink_tallies_per_class_and_flushes_on_drop() {
        let p = compile_source(WORK_SRC).unwrap();
        let table = method_table(&p);
        let shared: AggregateHandle = Arc::new(Mutex::new(AggregateProfile::default()));
        let sink = AggregateSink::new(table.clone(), p.class_count(), shared.clone());
        let report = run_centralized_profiled(&p, 1.0, Some(Box::new(sink)), 0);
        assert!(report.is_ok(), "{:?}", report.error);
        // The run dropped the interpreter, and the sink with it, so the tallies
        // have merged into the shared handle (serving's epilogue forces the same
        // drop explicitly, before the epoch controller reads the profile).
        let worker = p.class_by_name("Worker").unwrap();
        let node = p.class_by_name("Node").unwrap();
        let data = shared.lock().take();
        assert_eq!(data.flushes, 1, "one profiled run merged");
        // spin + make: 40 invocations each, keyed by the owning class.
        assert_eq!(data.invocations.get(&worker), Some(&80));
        assert!(data.alloc_bytes.get(&node).copied().unwrap_or(0) > 0);
        assert!(shared.lock().is_empty(), "take() drained the aggregate");
    }

    #[test]
    fn aggregate_sink_skips_synthetic_method_ids() {
        let p = compile_source(WORK_SRC).unwrap();
        let table = method_table(&p);
        let shared: AggregateHandle = Arc::new(Mutex::new(AggregateProfile::default()));
        let mut sink = AggregateSink::new(table, p.class_count(), shared.clone());
        // A method id past the original program's table (a rewrite-appended
        // accessor) must not be attributed to any application class.
        sink.method_enter(MethodId(p.method_count() as u32 + 7), 0.0);
        drop(sink);
        assert!(shared.lock().is_empty());
    }

    #[test]
    fn metric_metadata() {
        assert_eq!(Metric::all().len(), 6);
        assert!(Metric::MethodDuration.is_instrumentation());
        assert!(!Metric::HotMethods.is_instrumentation());
        assert_eq!(Metric::MemoryAllocation.name(), "Memory Usage");
        assert!(Profiler::sample_interval(Some(Metric::HotPaths)) > 0);
        assert_eq!(Profiler::sample_interval(Some(Metric::MethodDuration)), 0);
    }
}
