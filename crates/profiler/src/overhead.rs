//! The profiler-overhead experiment (paper Table 3).
//!
//! The paper measures each benchmark once with all profiling code compiled in but not
//! enabled (the baseline), then once per enabled metric, and reports the total
//! wall-clock overhead. [`measure_overheads`] reproduces that methodology: overheads
//! are real wall-clock ratios of this crate's profiler implementations, so the expected
//! *shape* — instrumentation-based metrics cost more than sampling-based ones — is
//! produced by construction rather than hard-coded.

use autodist_ir::program::Program;
use autodist_runtime::cluster::run_centralized_profiled;

use crate::{Metric, Profiler};

/// Wall-clock measurements for one profiler configuration across a set of workloads.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// `None` is the baseline (profiling compiled in but not enabled).
    pub metric: Option<Metric>,
    /// Per-workload wall-clock milliseconds.
    pub per_workload_ms: Vec<f64>,
    /// Sum across workloads.
    pub total_ms: f64,
}

impl OverheadRow {
    /// Overhead percentage relative to `baseline_total_ms`.
    pub fn overhead_pct(&self, baseline_total_ms: f64) -> f64 {
        if baseline_total_ms <= 0.0 {
            0.0
        } else {
            (self.total_ms / baseline_total_ms - 1.0) * 100.0
        }
    }
}

/// The full Table 3 measurement: one row per configuration (baseline first).
#[derive(Clone, Debug)]
pub struct OverheadTable {
    /// Workload names, in column order.
    pub workloads: Vec<String>,
    /// Rows: baseline followed by each metric.
    pub rows: Vec<OverheadRow>,
}

impl OverheadTable {
    /// The baseline row.
    pub fn baseline(&self) -> &OverheadRow {
        &self.rows[0]
    }

    /// Average overhead across all non-baseline rows, in percent.
    pub fn average_overhead_pct(&self) -> f64 {
        let base = self.baseline().total_ms;
        let others: Vec<f64> = self.rows[1..]
            .iter()
            .map(|r| r.overhead_pct(base))
            .collect();
        if others.is_empty() {
            0.0
        } else {
            others.iter().sum::<f64>() / others.len() as f64
        }
    }

    /// Renders the table in the paper's layout (workloads as rows, metrics as columns).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{:<24}", "Test/Metric");
        for row in &self.rows {
            let name = row.metric.map(|m| m.name()).unwrap_or("Baseline");
            let _ = write!(out, "{name:>20}");
        }
        let _ = writeln!(out);
        for (wi, w) in self.workloads.iter().enumerate() {
            let _ = write!(out, "{w:<24}");
            for row in &self.rows {
                let _ = write!(out, "{:>20.3}", row.per_workload_ms[wi]);
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "{:<24}", "Total:");
        for row in &self.rows {
            let _ = write!(out, "{:>20.3}", row.total_ms);
        }
        let _ = writeln!(out);
        let base = self.baseline().total_ms;
        let _ = write!(out, "{:<24}", "Overhead:");
        for row in &self.rows {
            let _ = write!(out, "{:>19.2}%", row.overhead_pct(base));
        }
        let _ = writeln!(out);
        out
    }
}

/// Runs every workload under the baseline and under each metric and returns the
/// overhead table.
///
/// Noise control (the paper's Table 3 numbers are small percentages, easily swamped by
/// scheduler jitter on a shared machine):
///
/// * at least **5 repetitions** per (configuration, workload) pair, whatever the
///   caller asks for;
/// * the reported value is the **median**, not the minimum — the minimum
///   systematically under-reports the instrumented configurations and used to produce
///   negative overheads;
/// * repetitions are **interleaved** (every configuration measured once per round)
///   so slow drift in machine load biases all configurations equally;
/// * one warm-up execution per workload before anything is timed.
pub fn measure_overheads(
    workloads: &[(String, Program)],
    metrics: &[Metric],
    repeats: usize,
) -> OverheadTable {
    let repeats = repeats.max(5);
    let mut configs: Vec<Option<Metric>> = vec![None];
    configs.extend(metrics.iter().copied().map(Some));

    // Warm-up: fault in code paths and caches outside the measured region.
    for (_, program) in workloads {
        let (profiler, _handle) = Profiler::new(None);
        let report = run_centralized_profiled(program, 1.0, Some(Box::new(profiler)), 0);
        assert!(report.is_ok(), "workload failed: {:?}", report.error);
    }

    // samples[config][workload] = per-round wall times.
    let mut samples: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); workloads.len()]; configs.len()];
    for _ in 0..repeats {
        for (ci, config) in configs.iter().enumerate() {
            for (wi, (_, program)) in workloads.iter().enumerate() {
                let (profiler, _handle) = Profiler::new(*config);
                let report = run_centralized_profiled(
                    program,
                    1.0,
                    Some(Box::new(profiler)),
                    Profiler::sample_interval(*config),
                );
                assert!(report.is_ok(), "workload failed: {:?}", report.error);
                samples[ci][wi].push(report.wall_time_ms);
            }
        }
    }

    let rows = configs
        .iter()
        .zip(samples)
        .map(|(config, per_workload_samples)| {
            let per_workload: Vec<f64> = per_workload_samples.into_iter().map(median).collect();
            let total = per_workload.iter().sum();
            OverheadRow {
                metric: *config,
                per_workload_ms: per_workload,
                total_ms: total,
            }
        })
        .collect();
    OverheadTable {
        workloads: workloads.iter().map(|(n, _)| n.clone()).collect(),
        rows,
    }
}

/// Median (upper median for even counts) of a non-empty sample vector. Shared with
/// the bench crate's report so every "median" in the repo means the same statistic.
pub fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("wall times are never NaN"));
    xs[xs.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use autodist_ir::frontend::compile_source;

    fn small_workload() -> Program {
        compile_source(
            r#"
            class W {
                int spin(int n) {
                    int a = 0;
                    int i = 0;
                    while (i < n) { a = a + i % 13; i = i + 1; }
                    return a;
                }
            }
            class Main {
                static void main() {
                    W w = new W();
                    int r = 0;
                    int i = 0;
                    while (i < 20) { r = r + w.spin(300); i = i + 1; }
                }
            }
        "#,
        )
        .unwrap()
    }

    #[test]
    fn overhead_table_has_expected_shape() {
        let workloads = vec![("small".to_string(), small_workload())];
        let table = measure_overheads(&workloads, &Metric::all(), 1);
        assert_eq!(table.rows.len(), 7, "baseline + 6 metrics");
        assert_eq!(table.workloads.len(), 1);
        for row in &table.rows {
            assert_eq!(row.per_workload_ms.len(), 1);
            assert!(row.total_ms > 0.0);
        }
        let rendered = table.render();
        assert!(rendered.contains("Baseline"));
        assert!(rendered.contains("Hot Methods"));
        assert!(rendered.contains("Overhead:"));
    }

    #[test]
    fn overhead_percentages_are_relative_to_baseline() {
        let row = OverheadRow {
            metric: Some(Metric::MethodDuration),
            per_workload_ms: vec![1.5],
            total_ms: 1.5,
        };
        assert!((row.overhead_pct(1.0) - 50.0).abs() < 1e-9);
        assert_eq!(row.overhead_pct(0.0), 0.0);
    }
}
