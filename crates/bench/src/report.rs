//! The machine-readable performance report behind `cargo run -p autodist-bench --bin
//! bench_report`.
//!
//! Measures (a) every Table 1 workload, centralized and distributed, reporting the
//! **median wall time** and the (deterministic) **virtual time**, and (b) the
//! microbenchmark areas mirroring the criterion benches (analysis, partitioning,
//! rewrite+codegen, runtime) plus a raw **op-dispatch** probe of the explicit-stack
//! interpreter (fused and, as the A/B control, `_nofuse`), the deep
//! **arithmetic/conditional chain** family from [`crate::microbench`], and the
//! **message-delivery** probe of the transport's ready queue (two fabric widths —
//! their agreement is the O(1)-per-packet delivery property). An **op census**
//! section records, per Table 1 workload and chain microbench, the superinstruction
//! counts the fusion pass emits and the dynamic dispatch reduction it buys. A
//! **wire_codec** section compares the v1 string framing against the slot-addressed
//! v2 framing per message shape — nanoseconds per encode+decode and deterministic
//! frame sizes (the CI guard holds v2 to be no slower and no larger than v1). A
//! **serving** section drives the closed-loop load generator ([`crate::serving`])
//! over a Table 1 mix under `Inline` and `Pool { 1 | 4 | 16 }`, reporting
//! requests/sec, p50/p99 latency, and (deterministic) cross-node message/byte
//! totals. An **adaptive_serving** section A/Bs the affinity-skewed generated
//! workload with adaptation off vs. on (the epoch controller's profile-driven
//! repartition), reporting both arms' message volume and throughput — the CI guard
//! asserts `adaptive_messages < static_messages`. The result serialises to a small
//! hand-rolled JSON document (the build environment has no serde_json) whose
//! schema is documented in the README's "Performance" section; committed snapshots
//! (`BENCH_pr3.json` … `BENCH_pr9.json`) are the baselines future perf PRs diff
//! against. A **fault_overhead** section compares faults-off against quiet-plan
//! runs ([`crate::fault`]), pinning the fault wrapper's deterministic identity
//! and measuring its wall-clock price.

use std::time::Instant;

use autodist::{Distributor, DistributorConfig, PipelineResult};
use autodist_codegen::rewrite::rewrite_for_node;
use autodist_ir::frontend::compile_source;
use autodist_ir::layout::LayoutOptions;
use autodist_partition::{partition, PartitionConfig};
use autodist_runtime::cluster::ClusterConfig;
use autodist_runtime::interp::Interp;
use autodist_runtime::net::{MpiWorld, NetworkConfig, PacketKind};
use autodist_runtime::wire::{
    decode_dep_v2_head, decode_new_v2_head, decode_values_into, encode_dependence_v2,
    encode_new_v2, AccessKind, Request, WireValue,
};
use bytes::{Bytes, BytesMut};

use crate::fault::{self, FaultOverheadArea};
use crate::microbench::{self, OpCensus, ARITH_CHAIN_DEEP, COND_CHAIN_DEEP};
use crate::serving::{self, AdaptiveServingArea, ServingArea};

/// Measurements for one workload.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Workload name (Table 1 row).
    pub name: String,
    /// Median wall time of the centralized run, milliseconds.
    pub centralized_wall_ms: f64,
    /// Virtual time of the centralized run, microseconds (deterministic).
    pub centralized_virtual_us: f64,
    /// Median wall time of the distributed run (paper testbed), milliseconds.
    pub distributed_wall_ms: f64,
    /// Virtual time of the distributed run, microseconds (deterministic).
    pub distributed_virtual_us: f64,
    /// Messages exchanged by the distributed run.
    pub messages: u64,
    /// `true` when the distributed checksum matched the centralized one.
    pub checksum_matches: bool,
}

/// One wire-codec comparison: the same logical remote-access message pushed through
/// the v1 string framing and the slot-addressed v2 framing, end to end (encode +
/// decode). The v2 side runs the runtime's actual steady-state discipline — a
/// recycled encode buffer and a reused value scratch vector — so its figure is the
/// per-message codec cost the serving path really pays; the v1 side allocates per
/// message, as the string path always did.
#[derive(Clone, Debug)]
pub struct WireCodecArea {
    /// Message shape (e.g. `dep_invoke_1int`, Table 1's bounce-call frame).
    pub name: String,
    /// Median v1 encode+decode cost per message, nanoseconds.
    pub v1_ns: f64,
    /// Median v2 encode+decode cost per message, nanoseconds.
    pub v2_ns: f64,
    /// Encoded v1 frame size, bytes (deterministic).
    pub v1_bytes: usize,
    /// Encoded v2 frame size, bytes (deterministic, hello excluded — it is paid
    /// once per link, not per message).
    pub v2_bytes: usize,
}

/// One micro-benchmark area (median seconds per iteration, scaled to microseconds).
#[derive(Clone, Debug)]
pub struct MicroReport {
    /// Area name (matches the criterion bench group).
    pub name: String,
    /// Median time per iteration in microseconds.
    pub median_us: f64,
}

/// The whole report.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Schema version of the JSON document.
    pub schema_version: u32,
    /// Workload scale factor used (Table 1 sizes × scale).
    pub scale: usize,
    /// Number of repetitions the medians were taken over.
    pub repeats: usize,
    /// Per-workload measurements.
    pub workloads: Vec<WorkloadReport>,
    /// Micro-benchmark areas.
    pub micro: Vec<MicroReport>,
    /// Fusion census (static superinstruction counts + dynamic dispatch reduction)
    /// per Table 1 workload and chain microbench.
    pub census: Vec<OpCensus>,
    /// Wire-codec areas: v1 vs v2 encode+decode cost and frame size per message
    /// shape (the CI guard asserts v2 is never slower and never larger).
    pub wire_codec: Vec<WireCodecArea>,
    /// Serving-mode throughput/latency areas (closed-loop load generator over a
    /// Table 1 mix under `Inline` and `Pool { 1 | 4 | 16 }`).
    pub serving: Vec<ServingArea>,
    /// Static-vs-adaptive placement A/B on the affinity-skewed generated workload
    /// (`Inline`, concurrency 1, so the message totals are exact and CI-guardable).
    pub adaptive_serving: AdaptiveServingArea,
    /// Fault-layer cost areas: faults-off vs quiet-plan wall time per workload,
    /// with the deterministic identity checks (virtual clocks, traffic counts).
    pub fault_overhead: Vec<FaultOverheadArea>,
}

use autodist_profiler::overhead::median;

/// Times `f` `repeats` times and returns the median duration in milliseconds.
pub(crate) fn median_wall_ms<T>(repeats: usize, mut f: impl FnMut() -> T) -> f64 {
    let runs: Vec<f64> = (0..repeats.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    median(runs)
}

/// Pure op-dispatch probe: a tight integer loop whose body never leaves the decoded-op
/// dispatch loop (no allocation, no calls, no strings), interpreted on a pre-built
/// [`Interp`] so layout construction is excluded. Reports the median cost of 1000
/// executed **seed** ops in microseconds — the direct measure of the explicit-stack
/// loop the `Insn` → [`autodist_ir::layout::Op`] pre-decode feeds. `opts` selects
/// the fused stream or the one-to-one decode (the `_nofuse` A/B control); the
/// normalisation constant counts seed ops either way, so the two figures compare
/// like for like.
fn measure_dispatch_src(src: &str, repeats: usize, opts: LayoutOptions) -> f64 {
    let program = compile_source(src).expect("dispatch probe compiles");
    // Deterministic seed-op count for the normalisation (fusion-independent:
    // `instructions` counts seed widths even through superinstructions).
    let ops = microbench::executed_seed_ops(&program);
    let entry = program.entry.expect("probe has an entry point");
    let mut interp = Interp::new_with_options(&program, opts);
    let per_run_us =
        median_wall_ms(repeats.max(3), || interp.invoke(entry, Vec::new()).unwrap()) * 1e3;
    per_run_us * 1000.0 / ops as f64
}

/// The classic op-dispatch probe body (kept verbatim across PRs so the
/// `op_dispatch_1k_ops` area stays comparable with committed baselines).
const OP_DISPATCH_SRC: &str = "class Main {
        static int sink;
        static void main() {
            int acc = 7;
            int i = 0;
            while (i < 20000) {
                acc = (acc * 3 + i) % 65537;
                i = i + 1;
            }
            sink = acc;
        }
    }";

/// Ready-queue delivery probe: `nodes` endpoints on one simulated fabric, 1000
/// request packets fanned out from rank 0, each delivered immediately by popping
/// its ready key off the transport's shared queue and receiving **exactly one
/// packet per popped key** — the event-driven schedulers' real delivery discipline
/// (`deliver_one`). Reports the median cost **per packet** in microseconds; because
/// the sender enqueues each packet's destination at send time, the figure is
/// independent of the fabric width (the pre-ready-queue design paid an O(nodes)
/// mailbox sweep per delivery batch instead). Send and delivery interleave so every
/// mailbox stays at depth <= 1: an earlier version fanned out all 1000 sends before
/// draining whole mailboxes per pop, which gave the narrow fabric ~66-deep
/// mailboxes (forcing channel-segment allocations the wide fabric never hit) and
/// amortised the wide fabric's pops over fuller batches — so `_256n` reported
/// *faster* than `_16n` despite identical per-packet semantics.
fn measure_message_delivery(repeats: usize, nodes: usize) -> f64 {
    const PACKETS: usize = 1000;
    assert!(nodes >= 2, "the delivery probe fans out from rank 0");
    let mut world = MpiWorld::new(nodes, NetworkConfig::uniform(nodes));
    let ready = world.ready_queue();
    let mut endpoints: Vec<_> = (0..nodes).map(|r| world.take_endpoint(r)).collect();
    let per_run_us = median_wall_ms(repeats.max(3), || {
        let mut delivered = 0usize;
        for i in 0..PACKETS {
            let to = 1 + (i % (nodes - 1));
            endpoints[0].send(to, PacketKind::Request, Bytes::from_static(b"ping"), 0.0);
            // Coalescing is off on this fabric, so every entry carries one packet.
            let ((_root, rank), _count) = ready.pop().expect("send marked its destination ready");
            if endpoints[rank as usize].try_recv().is_some() {
                delivered += 1;
            }
        }
        assert_eq!(delivered, PACKETS, "every packet is delivered");
    }) * 1e3;
    per_run_us / PACKETS as f64
}

/// Wire-codec probe: encode + fully decode the same logical message `ITERS` times
/// through both framings and report nanoseconds per message plus the encoded sizes.
///
/// The v2 arm reproduces the runtime's steady-state codec discipline exactly: the
/// encode buffer is reclaimed from the decoded frame (`try_into_mut` — the bench
/// holds the only reference, as the endpoint pool does after delivery) and the
/// decoded values land in a reused scratch vector, so after the first iteration
/// the loop touches the allocator not at all. The v1 arm goes through
/// `Request::encode`/`Request::decode`, which allocate the frame, the member
/// string, and the args vector per message — that asymmetry *is* the measurement.
fn measure_wire_codec(repeats: usize) -> Vec<WireCodecArea> {
    const ITERS: usize = 1000;
    /// (area name, dependence access as (kind, v1 member name, v2 slot) or
    /// `None` for a NEW frame, argument values).
    type CodecShape = (
        &'static str,
        Option<(AccessKind, &'static str, u32)>,
        Vec<WireValue>,
    );
    // Shapes mirror the dominant Table 1 remote accesses: the bounce invoke with
    // one int argument, the bare field read, and a one-arg constructor.
    let shapes: [CodecShape; 3] = [
        (
            "dep_invoke_1int",
            Some((AccessKind::InvokeRet, "getSavings", 3)),
            vec![WireValue::Int(1)],
        ),
        (
            "dep_getfield",
            Some((AccessKind::GetField, "balance", 1)),
            vec![],
        ),
        ("new_1int", None, vec![WireValue::Int(42)]),
    ];
    shapes
        .into_iter()
        .map(|(name, access, args)| {
            let v1_req = match access {
                Some((kind, member, _)) => Request::Dependence {
                    target: 7,
                    kind,
                    member: member.to_string(),
                    args: args.clone(),
                },
                None => Request::New {
                    class_name: "Account".to_string(),
                    args: args.clone(),
                },
            };
            let v1_bytes = v1_req.encode().len();
            let v1_ns = median_wall_ms(repeats.max(3), || {
                for _ in 0..ITERS {
                    let _ = std::hint::black_box(Request::decode(v1_req.encode()));
                }
            }) * 1e6
                / ITERS as f64;

            let mut buf = BytesMut::with_capacity(64);
            let mut scratch: Vec<WireValue> = Vec::with_capacity(8);
            let encode_v2 = |buf: BytesMut, args: &[WireValue]| match access {
                Some((kind, _, slot)) => encode_dependence_v2(buf, None, 7, kind, slot, args),
                None => encode_new_v2(buf, None, 4, args),
            };
            let v2_bytes = encode_v2(BytesMut::new(), &args).len();
            let v2_ns = median_wall_ms(repeats.max(3), || {
                for _ in 0..ITERS {
                    let mut data = encode_v2(std::mem::take(&mut buf), &args);
                    let argc = if access.is_some() {
                        decode_dep_v2_head(&mut data).expect("v2 head decodes").argc
                    } else {
                        decode_new_v2_head(&mut data).expect("v2 head decodes").argc
                    };
                    decode_values_into(&mut data, argc, &mut scratch).expect("v2 values decode");
                    std::hint::black_box(&scratch);
                    scratch.clear();
                    buf = data.try_into_mut().unwrap_or_default();
                    buf.clear();
                }
            }) * 1e6
                / ITERS as f64;

            WireCodecArea {
                name: name.to_string(),
                v1_ns,
                v2_ns,
                v1_bytes,
                v2_bytes,
            }
        })
        .collect()
}

/// Runs the full measurement: every Table 1 workload centralized vs distributed plus
/// the microbench areas.
pub fn measure(scale: usize, repeats: usize) -> PipelineResult<BenchReport> {
    let distributor = Distributor::new(DistributorConfig::default());
    let mut workloads = Vec::new();
    for w in autodist_workloads::table1_workloads(scale) {
        let baseline = distributor.try_run_baseline(&w.program)?;
        let plan = distributor.try_distribute(&w.program)?;
        let dist_report = plan.try_execute(&ClusterConfig::paper_testbed())?;

        let cent_wall = median_wall_ms(repeats, || distributor.run_baseline(&w.program));
        let dist_wall = median_wall_ms(repeats, || plan.execute(&ClusterConfig::paper_testbed()));
        workloads.push(WorkloadReport {
            name: w.name.clone(),
            centralized_wall_ms: cent_wall,
            centralized_virtual_us: baseline.virtual_time_us,
            distributed_wall_ms: dist_wall,
            distributed_virtual_us: dist_report.virtual_time_us,
            messages: dist_report.total_messages(),
            checksum_matches: dist_report.final_statics.get("Main::checksum")
                == baseline.final_statics.get("Main::checksum"),
        });
    }

    // Micro areas, one per criterion bench group.
    let bank = autodist_workloads::bank(100);
    let crypt = autodist_workloads::crypt(400);
    let plan = distributor.try_distribute(&bank.program)?;
    let graph = plan.graph.clone();
    let micro = vec![
        MicroReport {
            name: "analysis".to_string(),
            median_us: median_wall_ms(repeats, || distributor.analyze(&bank.program)) * 1e3,
        },
        MicroReport {
            name: "partitioning".to_string(),
            median_us: median_wall_ms(repeats, || partition(&graph, &PartitionConfig::kway(2)))
                * 1e3,
        },
        MicroReport {
            name: "rewrite_and_codegen".to_string(),
            median_us: median_wall_ms(repeats, || {
                rewrite_for_node(&bank.program, &plan.placement, 0)
            }) * 1e3,
        },
        MicroReport {
            name: "runtime_interp_crypt".to_string(),
            median_us: median_wall_ms(repeats, || distributor.run_baseline(&crypt.program)) * 1e3,
        },
        MicroReport {
            name: "op_dispatch_1k_ops".to_string(),
            median_us: measure_dispatch_src(OP_DISPATCH_SRC, repeats, LayoutOptions::default()),
        },
        // The same probe on the one-to-one decode: the A/B control isolating the
        // superinstruction win from everything else in the loop.
        MicroReport {
            name: "op_dispatch_1k_ops_nofuse".to_string(),
            median_us: measure_dispatch_src(
                OP_DISPATCH_SRC,
                repeats,
                LayoutOptions { fuse: false },
            ),
        },
        // Deep chain family: pattern-dense bodies measuring the fused loop's
        // upper bound (per 1k seed ops, like the dispatch probe).
        MicroReport {
            name: "arith_chain_deep".to_string(),
            median_us: measure_dispatch_src(ARITH_CHAIN_DEEP, repeats, LayoutOptions::default()),
        },
        MicroReport {
            name: "cond_chain_deep".to_string(),
            median_us: measure_dispatch_src(COND_CHAIN_DEEP, repeats, LayoutOptions::default()),
        },
        // Per-packet delivery cost through the ready queue at two fabric widths: the
        // two numbers agreeing is the O(1)-per-packet property (delivery cost does
        // not grow with the node count).
        MicroReport {
            name: "message_delivery_16n".to_string(),
            median_us: measure_message_delivery(repeats, 16),
        },
        MicroReport {
            name: "message_delivery_256n".to_string(),
            median_us: measure_message_delivery(repeats, 256),
        },
        MicroReport {
            name: "runtime_wire_roundtrip".to_string(),
            median_us: median_wall_ms(repeats, || {
                let req = Request::Dependence {
                    target: 7,
                    kind: AccessKind::InvokeRet,
                    member: "getSavings".into(),
                    args: vec![WireValue::Int(1), WireValue::Str("x".into())],
                };
                for _ in 0..1000 {
                    let _ = std::hint::black_box(Request::decode(req.encode()));
                }
            }) * 1e3
                / 1000.0,
        },
    ];

    // Fusion census: deterministic counts (no timing), so the committed artifact
    // doubles as a regression check on the fusion pass's coverage.
    let mut census = Vec::new();
    for w in autodist_workloads::table1_workloads(scale) {
        census.push(microbench::census(&w.name, &w.program));
    }
    census.push(microbench::census(
        "arith_chain_deep",
        &microbench::compile_chain(ARITH_CHAIN_DEEP),
    ));
    census.push(microbench::census(
        "cond_chain_deep",
        &microbench::compile_chain(COND_CHAIN_DEEP),
    ));

    // Wire codec: v1 vs v2 per-message cost and size for the dominant frame
    // shapes (sizes are deterministic; CI guards v2 <= v1 on both axes).
    let wire_codec = measure_wire_codec(repeats);

    // Serving mode: the closed-loop load generator under each schedule of
    // interest. The first wall-clock (not virtual-time) comparison in the report —
    // pool workers overlap the modelled blocking ingress with interpretation (and,
    // on multi-core machines, the interpretation itself across requests).
    let serving = serving::measure_serving(scale, repeats)?;

    // Adaptive placement: the same closed loop on the skewed generated workload,
    // with and without the online profile → repartition controller.
    let adaptive_serving = serving::measure_adaptive_serving(repeats)?;

    // Fault layer: the wrapper must be free when off and invisible when quiet.
    let fault_overhead = fault::measure_fault_overhead(scale, repeats)?;

    Ok(BenchReport {
        schema_version: 2,
        scale,
        repeats,
        workloads,
        micro,
        census,
        wire_codec,
        serving,
        adaptive_serving,
        fault_overhead,
    })
}

impl BenchReport {
    /// Sum of the centralized medians, milliseconds.
    pub fn total_centralized_ms(&self) -> f64 {
        self.workloads.iter().map(|w| w.centralized_wall_ms).sum()
    }

    /// Sum of the distributed medians, milliseconds.
    pub fn total_distributed_ms(&self) -> f64 {
        self.workloads.iter().map(|w| w.distributed_wall_ms).sum()
    }

    /// Sum over the whole suite (centralized + distributed), milliseconds.
    pub fn total_suite_ms(&self) -> f64 {
        self.total_centralized_ms() + self.total_distributed_ms()
    }

    /// Serialises the report to JSON (stable key order, no external dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {},\n  \"scale\": {},\n  \"repeats\": {},\n",
            self.schema_version, self.scale, self.repeats
        ));
        out.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"centralized_wall_ms\": {:.4}, \
                 \"centralized_virtual_us\": {:.1}, \"distributed_wall_ms\": {:.4}, \
                 \"distributed_virtual_us\": {:.1}, \"messages\": {}, \
                 \"checksum_matches\": {}}}{}\n",
                json_string(&w.name),
                w.centralized_wall_ms,
                w.centralized_virtual_us,
                w.distributed_wall_ms,
                w.distributed_virtual_us,
                w.messages,
                w.checksum_matches,
                if i + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ],\n  \"microbench\": [\n");
        for (i, m) in self.micro.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"median_us\": {:.3}}}{}\n",
                json_string(&m.name),
                m.median_us,
                if i + 1 < self.micro.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"op_census\": [\n");
        for (i, c) in self.census.iter().enumerate() {
            let supers = c
                .static_
                .super_counts
                .iter()
                .map(|(k, n)| format!("{}: {}", json_string(k), n))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"name\": {}, \"unfused_ops\": {}, \"fused_ops\": {}, \
                 \"supers\": {{{}}}, \"instructions\": {}, \"dispatches\": {}, \
                 \"dispatch_reduction_pct\": {:.1}}}{}\n",
                json_string(&c.name),
                c.static_.unfused_ops,
                c.static_.fused_ops,
                supers,
                c.dynamic.instructions,
                c.dynamic.dispatches,
                c.dynamic.dispatch_reduction_pct(),
                if i + 1 < self.census.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"wire_codec\": [\n");
        for (i, c) in self.wire_codec.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"v1_ns\": {:.1}, \"v2_ns\": {:.1}, \
                 \"v1_bytes\": {}, \"v2_bytes\": {}}}{}\n",
                json_string(&c.name),
                c.v1_ns,
                c.v2_ns,
                c.v1_bytes,
                c.v2_bytes,
                if i + 1 < self.wire_codec.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ],\n  \"serving\": [\n");
        for (i, s) in self.serving.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"threads\": {}, \"concurrency\": {}, \
                 \"requests\": {}, \"ingress_us\": {}, \"requests_per_sec\": {:.1}, \
                 \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"messages\": {}, \
                 \"bytes\": {}, \"all_ok\": {}}}{}\n",
                json_string(&s.name),
                s.threads,
                s.concurrency,
                s.requests,
                s.ingress_us,
                s.requests_per_sec,
                s.p50_us,
                s.p99_us,
                s.messages,
                s.bytes,
                s.all_ok,
                if i + 1 < self.serving.len() { "," } else { "" }
            ));
        }
        let a = &self.adaptive_serving;
        out.push_str(&format!(
            "  ],\n  \"adaptive_serving\": {{\n    \"requests\": {}, \
             \"epoch_requests\": {}, \"comm_wait_us\": {},\n    \
             \"static_messages\": {}, \
             \"static_bytes\": {}, \"static_rps\": {:.1},\n    \
             \"adaptive_messages\": {}, \"adaptive_bytes\": {}, \
             \"adaptive_rps\": {:.1},\n    \"placement_swaps\": {}, \
             \"all_ok\": {}, \"checksums_match\": {}\n  }},\n",
            a.requests,
            a.epoch_requests,
            a.comm_wait_us,
            a.static_messages,
            a.static_bytes,
            a.static_rps,
            a.adaptive_messages,
            a.adaptive_bytes,
            a.adaptive_rps,
            a.placement_swaps,
            a.all_ok,
            a.checksums_match
        ));
        out.push_str("  \"fault_overhead\": [\n");
        for (i, a) in self.fault_overhead.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"off_wall_ms\": {:.4}, \"quiet_wall_ms\": {:.4}, \
                 \"overhead_pct\": {:.1}, \"virtual_identical\": {}, \
                 \"messages_identical\": {}}}{}\n",
                json_string(&a.name),
                a.off_wall_ms,
                a.quiet_wall_ms,
                a.overhead_pct,
                a.virtual_identical,
                a.messages_identical,
                if i + 1 < self.fault_overhead.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ],\n  \"totals\": {\n");
        out.push_str(&format!(
            "    \"centralized_wall_ms\": {:.4},\n    \"distributed_wall_ms\": {:.4},\n    \
             \"suite_wall_ms\": {:.4}\n  }}\n}}\n",
            self.total_centralized_ms(),
            self.total_distributed_ms(),
            self.total_suite_ms()
        ));
        out
    }
}

/// Escapes a string into a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
    }

    #[test]
    fn median_is_order_insensitive() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![5.0]), 5.0);
        assert_eq!(median(vec![4.0, 1.0]), 4.0, "upper median for even counts");
    }

    #[test]
    fn quick_report_measures_and_serialises() {
        let report = measure(1, 1).expect("measurement");
        assert_eq!(report.workloads.len(), 8, "all Table 1 workloads");
        assert!(report.workloads.iter().all(|w| w.checksum_matches));
        assert!(report.total_suite_ms() > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"schema_version\": 2"));
        assert!(json.contains("\"heapsort\""));
        assert!(json.contains("\"microbench\""));
        assert!(json.contains("\"message_delivery_256n\""));
        assert!(json.contains("\"wire_codec\""));
        assert!(json.contains("\"dep_invoke_1int\""));
        for c in &report.wire_codec {
            assert!(
                c.v2_bytes < c.v1_bytes,
                "{}: v2 frame ({} B) must be smaller than v1 ({} B)",
                c.name,
                c.v2_bytes,
                c.v1_bytes
            );
        }
        assert!(json.contains("\"serving\""));
        assert!(json.contains("\"pool_4\""));
        assert!(json.contains("\"requests_per_sec\""));
        assert!(json.contains("\"adaptive_serving\""));
        assert!(json.contains("\"static_messages\""));
        assert!(json.contains("\"placement_swaps\""));
        assert!(
            report.adaptive_serving.adaptive_messages < report.adaptive_serving.static_messages,
            "adaptation reduces cross-node message volume on the skewed workload"
        );
        assert!(report.adaptive_serving.all_ok);
        assert!(report.adaptive_serving.checksums_match);
        assert!(json.contains("\"fault_overhead\""));
        assert!(json.contains("\"virtual_identical\": true"));
        assert!(json.contains("\"suite_wall_ms\""));
    }

    /// The delivery probe measures cleanly at both fabric widths (the internal
    /// `delivered == PACKETS` assertion is the structural O(1)-path check: every
    /// packet arrives through a popped ready-queue entry). The *quantitative*
    /// node-count-independence claim is carried by the committed bench artifact's
    /// `message_delivery_16n` / `message_delivery_256n` areas — a wall-clock ratio
    /// assertion here would be flaky on loaded CI runners.
    #[test]
    fn message_delivery_probe_measures_at_both_fabric_widths() {
        assert!(measure_message_delivery(3, 16) > 0.0);
        assert!(measure_message_delivery(3, 256) > 0.0);
    }
}
