//! The closed-loop serving load generator behind the `serving` bench area.
//!
//! Turns the serving mode (`autodist_runtime::serve`) into a benchmark: a fixed,
//! deterministic mix of Table 1 programs is prepared once ([`serving_mix`] — the
//! layout interning is shared by every request), then driven as a closed loop at a
//! fixed admission window under each schedule of interest (`Inline`,
//! `Pool { threads: 1 | 4 | 16 }`). Each area reports requests/sec and p50/p99
//! request latency. This is the first bench area where the pool is *supposed* to
//! beat the inline scheduler on wall-clock, and for two compounding reasons:
//!
//! * **Ingress overlap.** Each admission pays the paper testbed's one-way wire
//!   latency as real wall-clock time (`ServeOptions::ingress_wait`, the
//!   blocking-ingress model: the admitting worker is "in `read(2)`" for the
//!   request bytes). The inline loop serialises those reads like any
//!   single-threaded blocking server; pool workers overlap them with
//!   interpretation, so the pool wins on any machine — including a single-core
//!   runner, where pure CPU work cannot parallelise.
//! * **Core scaling.** Requests are independent root computations, so on
//!   multi-core machines the interpretation itself also spreads across workers.
//!
//! The committed baseline's CI guard checks the hardware-independent half:
//! pool-4 requests/sec must stay above inline.

use autodist::{
    AdaptOptions, Distributor, DistributorConfig, PipelineResult, PlanReplanner, Replanner,
    ServeOptions, ServerApp,
};
use autodist_runtime::cluster::{ClusterConfig, Schedule};
use autodist_runtime::serve::{run_serving, ServingReport};
use autodist_workloads::GenConfig;
use std::sync::Arc;
use std::time::Duration;

/// Requests per serving area measurement.
pub const REQUESTS: usize = 48;
/// The closed-loop admission window (the acceptance comparison point is
/// concurrency >= 16).
pub const CONCURRENCY: usize = 16;
/// Modelled wire-read cost per admission, microseconds: the paper testbed's
/// one-way 100 Mb Ethernet latency (`NetworkConfig::paper_testbed().latency_us`),
/// paid in *wall-clock* by the admitting worker (see the module doc).
pub const INGRESS_US: u64 = 150;

/// One measured serving area.
#[derive(Clone, Debug)]
pub struct ServingArea {
    /// Area name: `inline`, `pool_1`, `pool_4`, `pool_16`.
    pub name: String,
    /// Worker threads the schedule used (1 for inline).
    pub threads: usize,
    /// Admission window.
    pub concurrency: usize,
    /// Requests served.
    pub requests: usize,
    /// Modelled per-request wire-read cost the admitting worker paid, microseconds.
    pub ingress_us: u64,
    /// Completed requests per wall-clock second (median run).
    pub requests_per_sec: f64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Total cross-node messages over the median run's requests (deterministic:
    /// identical across runs and schedules — the comm-volume metric the adaptive
    /// A/B diffs).
    pub messages: u64,
    /// Total cross-node bytes over the median run's requests (deterministic).
    pub bytes: u64,
    /// `true` when every request of the median run completed without a fault.
    pub all_ok: bool,
}

/// The deterministic workload mix the load generator cycles through: three Table 1
/// programs with distinct shapes (object-graph traffic, virtual dispatch, array
/// number crunching), sized so one request is a fraction of a millisecond — large
/// enough to dominate admission cost, small enough that a serving run stays in CI
/// smoke budget.
pub fn serving_mix(scale: usize) -> PipelineResult<Vec<ServerApp>> {
    let s = scale.max(1);
    let distributor = Distributor::new(DistributorConfig::default());
    let cluster = ClusterConfig::paper_testbed();
    let mut apps = Vec::new();
    for w in [
        autodist_workloads::bank(40 * s),
        autodist_workloads::method_bench(200 * s),
        autodist_workloads::crypt(400 * s),
    ] {
        let plan = distributor.try_distribute(&w.program)?;
        apps.push(plan.prepare_server(&cluster));
    }
    Ok(apps)
}

/// The request sequence: `requests` entries cycling round-robin over the mix, so
/// every run of every area serves the identical workload multiset in the identical
/// submission order.
pub fn round_robin_sequence(apps: usize, requests: usize) -> Vec<usize> {
    (0..requests).map(|i| i % apps.max(1)).collect()
}

/// Runs one serving area `repeats` times and keeps the run with the median
/// requests/sec, so the reported percentiles come from a single coherent run
/// rather than a mix of runs.
fn measure_area(
    name: &str,
    apps: &[ServerApp],
    sequence: &[usize],
    schedule: Schedule,
    repeats: usize,
) -> ServingArea {
    let opts = ServeOptions {
        concurrency: CONCURRENCY,
        schedule,
        ingress_wait: Duration::from_micros(INGRESS_US),
        ..ServeOptions::default()
    };
    let mut runs: Vec<ServingReport> = (0..repeats.max(1))
        .map(|_| run_serving(apps, sequence, &opts))
        .collect();
    runs.sort_by(|a, b| {
        a.requests_per_sec()
            .partial_cmp(&b.requests_per_sec())
            .expect("throughput is finite")
    });
    let median = runs.swap_remove(runs.len() / 2);
    ServingArea {
        name: name.to_string(),
        threads: median.threads,
        concurrency: median.concurrency,
        requests: median.requests.len(),
        ingress_us: INGRESS_US,
        requests_per_sec: median.requests_per_sec(),
        p50_us: median.latency_percentile_us(0.50),
        p99_us: median.latency_percentile_us(0.99),
        messages: median.total_messages(),
        bytes: median.total_bytes(),
        all_ok: median.is_ok(),
    }
}

/// The static-vs-adaptive A/B comparison on the affinity-skewed generated
/// workload: same requests, same admission order, same schedule — the only
/// difference is whether `ServeOptions::adapt` carries a [`PlanReplanner`].
#[derive(Clone, Debug)]
pub struct AdaptiveServingArea {
    /// Requests served by each arm.
    pub requests: usize,
    /// Epoch length the adaptive arm repartitions at.
    pub epoch_requests: usize,
    /// Modelled wall-clock wire-stall cost per cross-node message, microseconds
    /// (paid identically by both arms; see `ServeOptions::comm_wait`).
    pub comm_wait_us: u64,
    /// Cross-node messages under the static (build-time) placement.
    pub static_messages: u64,
    /// Cross-node bytes under the static placement.
    pub static_bytes: u64,
    /// Requests/sec of the static arm (median run).
    pub static_rps: f64,
    /// Cross-node messages with online adaptation enabled.
    pub adaptive_messages: u64,
    /// Cross-node bytes with online adaptation enabled.
    pub adaptive_bytes: u64,
    /// Requests/sec of the adaptive arm (median run).
    pub adaptive_rps: f64,
    /// Placement swaps the epoch controller committed during the adaptive run.
    pub placement_swaps: usize,
    /// `true` when every request of both arms completed without a fault.
    pub all_ok: bool,
    /// `true` when every adaptive request produced the same root checksum as the
    /// static request at the same sequence position (adaptation must never change
    /// results, only where they are computed).
    pub checksums_match: bool,
}

/// The canonical skewed workload the adaptive A/B serves: a generated app whose
/// call affinity concentrates on one hot chain (`affinity_skew: 8.0`), so the
/// build-time balanced placement pays 8 cross-node messages per request while the
/// profile-driven replan co-locates the chain down to 2.
pub fn adaptive_workload_config() -> GenConfig {
    GenConfig {
        width: 4,
        depth: 3,
        fan_out: 2,
        affinity_skew: 8.0,
        ..GenConfig::default()
    }
}

/// Requests per adaptive A/B arm.
pub const ADAPTIVE_REQUESTS: usize = 32;
/// Epoch length for the adaptive arm: the controller observes the first epoch
/// under the static placement, then repartitions for the remaining requests.
pub const ADAPTIVE_EPOCH: usize = 16;

/// Measures the adaptive-placement A/B: the skewed workload served twice under
/// `Schedule::Inline`, concurrency 1 (fully deterministic admission order, so the
/// message totals are exact and CI can guard on them), once with `adapt: None`
/// and once with a fresh [`PlanReplanner`] per run.
pub fn measure_adaptive_serving(repeats: usize) -> PipelineResult<AdaptiveServingArea> {
    let generated = autodist_workloads::generated(&adaptive_workload_config());
    let distributor = Distributor::new(DistributorConfig::default());
    let cluster = ClusterConfig::paper_testbed();
    let plan = distributor.try_distribute(&generated.workload.program)?;
    let apps = vec![plan.prepare_server(&cluster)];
    let sequence = vec![0usize; ADAPTIVE_REQUESTS];

    // No modelled ingress here (identical in both arms, it would only dilute the
    // signal); instead both arms pay the testbed's one-way wire latency per
    // cross-node message as wall-clock (`comm_wait`) — on the real cluster every
    // internode round-trip stalls the requesting node, so a placement that moves
    // fewer messages serves more requests per second. The per-message price is
    // identical in both arms; only the message counts differ.
    let base_opts = ServeOptions {
        concurrency: 1,
        schedule: Schedule::Inline,
        comm_wait: Duration::from_micros(INGRESS_US),
        ..ServeOptions::default()
    };
    let adaptive_opts = || {
        // A fresh replanner per run: the controller's learned placement must not
        // leak across repeats, so every adaptive run starts from the static plan.
        let mut planner = PlanReplanner::new();
        planner.add_plan(
            &distributor.config,
            &generated.workload.program,
            &plan,
            &cluster,
        );
        ServeOptions {
            adapt: Some(
                AdaptOptions::new(Arc::new(planner) as Arc<dyn Replanner>)
                    .with_epoch(ADAPTIVE_EPOCH),
            ),
            ..base_opts.clone()
        }
    };

    let run_arm = |mk_opts: &dyn Fn() -> ServeOptions| -> ServingReport {
        let mut runs: Vec<ServingReport> = (0..repeats.max(1))
            .map(|_| run_serving(&apps, &sequence, &mk_opts()))
            .collect();
        runs.sort_by(|a, b| {
            a.requests_per_sec()
                .partial_cmp(&b.requests_per_sec())
                .expect("throughput is finite")
        });
        runs.swap_remove(runs.len() / 2)
    };

    let static_run = run_arm(&|| base_opts.clone());
    let adaptive_run = run_arm(&adaptive_opts);
    let checksums_match = static_run.requests.len() == adaptive_run.requests.len()
        && static_run
            .requests
            .iter()
            .zip(adaptive_run.requests.iter())
            .all(|(s, a)| s.report.final_statics == a.report.final_statics);
    Ok(AdaptiveServingArea {
        requests: ADAPTIVE_REQUESTS,
        epoch_requests: ADAPTIVE_EPOCH,
        comm_wait_us: INGRESS_US,
        static_messages: static_run.total_messages(),
        static_bytes: static_run.total_bytes(),
        static_rps: static_run.requests_per_sec(),
        adaptive_messages: adaptive_run.total_messages(),
        adaptive_bytes: adaptive_run.total_bytes(),
        adaptive_rps: adaptive_run.requests_per_sec(),
        placement_swaps: adaptive_run.placement_swaps,
        all_ok: static_run.is_ok() && adaptive_run.is_ok(),
        checksums_match,
    })
}

/// Measures the full serving section: the same closed loop under `Inline` and
/// `Pool { threads: 1 | 4 | 16 }`.
pub fn measure_serving(scale: usize, repeats: usize) -> PipelineResult<Vec<ServingArea>> {
    measure_serving_sized(scale, repeats, REQUESTS)
}

/// [`measure_serving`] with an explicit request count (CI smoke uses a smaller
/// load than the committed baseline).
pub fn measure_serving_sized(
    scale: usize,
    repeats: usize,
    requests: usize,
) -> PipelineResult<Vec<ServingArea>> {
    let apps = serving_mix(scale)?;
    let sequence = round_robin_sequence(apps.len(), requests);
    let areas = [
        ("inline", Schedule::Inline),
        ("pool_1", Schedule::Pool { threads: 1 }),
        ("pool_4", Schedule::Pool { threads: 4 }),
        ("pool_16", Schedule::Pool { threads: 16 }),
    ];
    Ok(areas
        .iter()
        .map(|(name, schedule)| measure_area(name, &apps, &sequence, *schedule, repeats))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_covers_every_app() {
        let seq = round_robin_sequence(3, 7);
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(round_robin_sequence(1, 3), vec![0, 0, 0]);
    }

    #[test]
    fn serving_measurement_produces_all_areas() {
        let areas = measure_serving_sized(1, 1, 8).expect("serving bench");
        assert_eq!(areas.len(), 4);
        let names: Vec<&str> = areas.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, ["inline", "pool_1", "pool_4", "pool_16"]);
        for a in &areas {
            assert!(a.all_ok, "{}: every request completes", a.name);
            assert!(a.requests_per_sec > 0.0);
            assert!(a.p99_us >= a.p50_us);
            assert_eq!(a.requests, 8);
            assert_eq!(a.concurrency, CONCURRENCY);
        }
        assert_eq!(areas[0].threads, 1);
        assert_eq!(areas[2].threads, 4);
    }
}
