//! The closed-loop serving load generator behind the `serving` bench area.
//!
//! Turns the serving mode (`autodist_runtime::serve`) into a benchmark: a fixed,
//! deterministic mix of Table 1 programs is prepared once ([`serving_mix`] — the
//! layout interning is shared by every request), then driven as a closed loop at a
//! fixed admission window under each schedule of interest (`Inline`,
//! `Pool { threads: 1 | 4 | 16 }`). Each area reports requests/sec and p50/p99
//! request latency. This is the first bench area where the pool is *supposed* to
//! beat the inline scheduler on wall-clock, and for two compounding reasons:
//!
//! * **Ingress overlap.** Each admission pays the paper testbed's one-way wire
//!   latency as real wall-clock time (`ServeOptions::ingress_wait`, the
//!   blocking-ingress model: the admitting worker is "in `read(2)`" for the
//!   request bytes). The inline loop serialises those reads like any
//!   single-threaded blocking server; pool workers overlap them with
//!   interpretation, so the pool wins on any machine — including a single-core
//!   runner, where pure CPU work cannot parallelise.
//! * **Core scaling.** Requests are independent root computations, so on
//!   multi-core machines the interpretation itself also spreads across workers.
//!
//! The committed baseline's CI guard checks the hardware-independent half:
//! pool-4 requests/sec must stay above inline.

use autodist::{Distributor, DistributorConfig, PipelineResult, ServeOptions, ServerApp};
use autodist_runtime::cluster::{ClusterConfig, Schedule};
use autodist_runtime::serve::{run_serving, ServingReport};
use std::time::Duration;

/// Requests per serving area measurement.
pub const REQUESTS: usize = 48;
/// The closed-loop admission window (the acceptance comparison point is
/// concurrency >= 16).
pub const CONCURRENCY: usize = 16;
/// Modelled wire-read cost per admission, microseconds: the paper testbed's
/// one-way 100 Mb Ethernet latency (`NetworkConfig::paper_testbed().latency_us`),
/// paid in *wall-clock* by the admitting worker (see the module doc).
pub const INGRESS_US: u64 = 150;

/// One measured serving area.
#[derive(Clone, Debug)]
pub struct ServingArea {
    /// Area name: `inline`, `pool_1`, `pool_4`, `pool_16`.
    pub name: String,
    /// Worker threads the schedule used (1 for inline).
    pub threads: usize,
    /// Admission window.
    pub concurrency: usize,
    /// Requests served.
    pub requests: usize,
    /// Modelled per-request wire-read cost the admitting worker paid, microseconds.
    pub ingress_us: u64,
    /// Completed requests per wall-clock second (median run).
    pub requests_per_sec: f64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// `true` when every request of the median run completed without a fault.
    pub all_ok: bool,
}

/// The deterministic workload mix the load generator cycles through: three Table 1
/// programs with distinct shapes (object-graph traffic, virtual dispatch, array
/// number crunching), sized so one request is a fraction of a millisecond — large
/// enough to dominate admission cost, small enough that a serving run stays in CI
/// smoke budget.
pub fn serving_mix(scale: usize) -> PipelineResult<Vec<ServerApp>> {
    let s = scale.max(1);
    let distributor = Distributor::new(DistributorConfig::default());
    let cluster = ClusterConfig::paper_testbed();
    let mut apps = Vec::new();
    for w in [
        autodist_workloads::bank(40 * s),
        autodist_workloads::method_bench(200 * s),
        autodist_workloads::crypt(400 * s),
    ] {
        let plan = distributor.try_distribute(&w.program)?;
        apps.push(plan.prepare_server(&cluster));
    }
    Ok(apps)
}

/// The request sequence: `requests` entries cycling round-robin over the mix, so
/// every run of every area serves the identical workload multiset in the identical
/// submission order.
pub fn round_robin_sequence(apps: usize, requests: usize) -> Vec<usize> {
    (0..requests).map(|i| i % apps.max(1)).collect()
}

/// Runs one serving area `repeats` times and keeps the run with the median
/// requests/sec, so the reported percentiles come from a single coherent run
/// rather than a mix of runs.
fn measure_area(
    name: &str,
    apps: &[ServerApp],
    sequence: &[usize],
    schedule: Schedule,
    repeats: usize,
) -> ServingArea {
    let opts = ServeOptions {
        concurrency: CONCURRENCY,
        schedule,
        ingress_wait: Duration::from_micros(INGRESS_US),
        ..ServeOptions::default()
    };
    let mut runs: Vec<ServingReport> = (0..repeats.max(1))
        .map(|_| run_serving(apps, sequence, &opts))
        .collect();
    runs.sort_by(|a, b| {
        a.requests_per_sec()
            .partial_cmp(&b.requests_per_sec())
            .expect("throughput is finite")
    });
    let median = runs.swap_remove(runs.len() / 2);
    ServingArea {
        name: name.to_string(),
        threads: median.threads,
        concurrency: median.concurrency,
        requests: median.requests.len(),
        ingress_us: INGRESS_US,
        requests_per_sec: median.requests_per_sec(),
        p50_us: median.latency_percentile_us(0.50),
        p99_us: median.latency_percentile_us(0.99),
        all_ok: median.is_ok(),
    }
}

/// Measures the full serving section: the same closed loop under `Inline` and
/// `Pool { threads: 1 | 4 | 16 }`.
pub fn measure_serving(scale: usize, repeats: usize) -> PipelineResult<Vec<ServingArea>> {
    measure_serving_sized(scale, repeats, REQUESTS)
}

/// [`measure_serving`] with an explicit request count (CI smoke uses a smaller
/// load than the committed baseline).
pub fn measure_serving_sized(
    scale: usize,
    repeats: usize,
    requests: usize,
) -> PipelineResult<Vec<ServingArea>> {
    let apps = serving_mix(scale)?;
    let sequence = round_robin_sequence(apps.len(), requests);
    let areas = [
        ("inline", Schedule::Inline),
        ("pool_1", Schedule::Pool { threads: 1 }),
        ("pool_4", Schedule::Pool { threads: 4 }),
        ("pool_16", Schedule::Pool { threads: 16 }),
    ];
    Ok(areas
        .iter()
        .map(|(name, schedule)| measure_area(name, &apps, &sequence, *schedule, repeats))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_covers_every_app() {
        let seq = round_robin_sequence(3, 7);
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(round_robin_sequence(1, 3), vec![0, 0, 0]);
    }

    #[test]
    fn serving_measurement_produces_all_areas() {
        let areas = measure_serving_sized(1, 1, 8).expect("serving bench");
        assert_eq!(areas.len(), 4);
        let names: Vec<&str> = areas.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, ["inline", "pool_1", "pool_4", "pool_16"]);
        for a in &areas {
            assert!(a.all_ok, "{}: every request completes", a.name);
            assert!(a.requests_per_sec > 0.0);
            assert!(a.p99_us >= a.p50_us);
            assert_eq!(a.requests, 8);
            assert_eq!(a.concurrency, CONCURRENCY);
        }
        assert_eq!(areas[0].threads, 1);
        assert_eq!(areas[2].threads, 4);
    }
}
