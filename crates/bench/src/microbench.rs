//! The deep arithmetic / boolean / conditional-chain microbench family and the
//! op-pair **census** justifying the interpreter's superinstruction set.
//!
//! The Table 1 workloads exercise the interpreter through realistic object graphs;
//! this family instead maximises the density of the op *patterns* the fusion pass in
//! `autodist_ir::layout` targets — `Load Load Bin`, `Load Const Bin`, `Bin Store`,
//! compare-and-branch chains, and the `Load Const Add Store` increment idiom — so
//! the `arith_chain_deep` / `cond_chain_deep` bench areas measure the fused
//! dispatch loop's best case while `op_dispatch_1k_ops_nofuse` pins its A/B
//! baseline. The [`census`] half counts, per workload, (a) **statically** how many
//! superinstructions of each kind the fusion pass emits and (b) **dynamically** how
//! many dispatch-loop iterations fusion saves at run time (`instructions` counts
//! seed ops, `dispatches` counts loop trips, so `1 - dispatches/instructions` is the
//! dynamic win).

use autodist_ir::frontend::compile_source;
use autodist_ir::layout::{LayoutOptions, Op, ProgramLayout};
use autodist_ir::program::Program;
use autodist_runtime::interp::Interp;

/// Deep arithmetic chain: four accumulators rewritten from each other every
/// iteration. Almost every statement lowers to `Load Load Bin Store` or
/// `Load Const Bin Store`, the fusion pass's bread-and-butter windows.
pub const ARITH_CHAIN_DEEP: &str = "class Main {
    static int sink;
    static void main() {
        int a = 1;
        int b = 2;
        int c = 3;
        int d = 4;
        int i = 0;
        while (i < 6000) {
            a = b + c;
            b = c + d;
            c = d + a;
            d = a + b;
            a = a + 1;
            b = b - 2;
            c = c * 3;
            d = d % 65537;
            i = i + 1;
        }
        sink = a + b + c + d;
    }
}";

/// Deep conditional chain: a run of two-local and local-vs-constant compares per
/// iteration, exercising the fused compare-and-branch forms (`IfCmpFused`,
/// `LoadConstIfCmp`, `LoadIfCmp`) plus the increment idiom on every taken arm.
pub const COND_CHAIN_DEEP: &str = "class Main {
    static int sink;
    static void main() {
        int hits = 0;
        int i = 0;
        int j = 4000;
        while (i < 6000) {
            if (i < j) {
                hits = hits + 1;
            }
            if (hits > 100) {
                j = j - 1;
            }
            if (i == j) {
                hits = hits + 2;
            }
            if (j >= 2000) {
                hits = hits + 3;
            }
            i = i + 1;
        }
        sink = hits;
    }
}";

/// Compiles one of the chain sources (or any standalone `Main` program).
pub fn compile_chain(src: &str) -> Program {
    compile_source(src).expect("chain microbench source compiles")
}

/// Counts the seed ops one execution of `program` interprets (the normalisation
/// constant for per-1k-ops medians). `instructions` counts seed-op widths whether
/// or not the layout fused, so fused and unfused runs share the same constant.
pub fn executed_seed_ops(program: &Program) -> u64 {
    let mut interp = Interp::new(program);
    interp.run_entry().expect("chain program runs");
    interp.counters.instructions
}

/// Static fusion census of one program: how many ops the unfused decode yields,
/// how many the fused stream keeps, and how many superinstructions of each kind
/// the fusion pass emitted (kind names match the printer's mnemonic suffixes).
#[derive(Clone, Debug)]
pub struct StaticCensus {
    /// Decoded op count with `fuse: false` (one per bytecode insn).
    pub unfused_ops: usize,
    /// Op count of the fused stream.
    pub fused_ops: usize,
    /// `(kind, count)` per superinstruction kind, fixed order, zero counts kept.
    pub super_counts: Vec<(&'static str, usize)>,
}

/// Dynamic fusion census of one program: seed instructions executed vs dispatch
/// loop iterations taken (equal when fusion is off).
#[derive(Clone, Debug)]
pub struct DynamicCensus {
    /// Seed instructions interpreted (fusion-independent).
    pub instructions: u64,
    /// Dispatch-loop iterations with fusion on.
    pub dispatches: u64,
}

impl DynamicCensus {
    /// Percentage of dispatch-loop iterations fusion eliminated.
    pub fn dispatch_reduction_pct(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        (1.0 - self.dispatches as f64 / self.instructions as f64) * 100.0
    }
}

/// The census of one workload: static + dynamic halves under one name.
#[derive(Clone, Debug)]
pub struct OpCensus {
    /// Workload (or microbench) name.
    pub name: String,
    /// Static stream shape.
    pub static_: StaticCensus,
    /// Dynamic execution shape.
    pub dynamic: DynamicCensus,
}

/// Classifies a superinstruction for the census; `None` for plain seed ops.
fn super_kind(op: &Op) -> Option<&'static str> {
    match op {
        Op::LoadLoadBin(..) => Some("load_load_bin"),
        Op::LoadConstBin(..) => Some("load_const_bin"),
        Op::BinStore(..) => Some("bin_store"),
        Op::LoadIfCmp(..) => Some("load_if_cmp"),
        Op::IfCmpFused(..) => Some("if_cmp_fused"),
        Op::LoadConstIfCmp(..) => Some("load_const_if_cmp"),
        Op::IncLocal(..) => Some("inc_local"),
        Op::LoadFieldGet { .. } => Some("load_field_get"),
        Op::PutFieldPop { .. } => Some("put_field_pop"),
        _ => None,
    }
}

/// All census kinds in reporting order.
const KINDS: [&str; 9] = [
    "load_load_bin",
    "load_const_bin",
    "bin_store",
    "load_if_cmp",
    "if_cmp_fused",
    "load_const_if_cmp",
    "inc_local",
    "load_field_get",
    "put_field_pop",
];

/// Computes the static census over every method of `program`.
pub fn static_census(program: &Program) -> StaticCensus {
    let unfused = ProgramLayout::build_with(program, LayoutOptions { fuse: false });
    let fused = ProgramLayout::build_with(program, LayoutOptions { fuse: true });
    let mut counts = vec![0usize; KINDS.len()];
    let mut unfused_ops = 0usize;
    let mut fused_ops = 0usize;
    for (u, f) in unfused.method_ops.iter().zip(fused.method_ops.iter()) {
        unfused_ops += u.ops.len();
        fused_ops += f.ops.len();
        for op in &f.ops {
            if let Some(kind) = super_kind(op) {
                let i = KINDS.iter().position(|k| *k == kind).expect("known kind");
                counts[i] += 1;
            }
        }
    }
    StaticCensus {
        unfused_ops,
        fused_ops,
        super_counts: KINDS.iter().copied().zip(counts).collect(),
    }
}

/// Computes the dynamic census by running `program` centralized with fusion on.
pub fn dynamic_census(program: &Program) -> DynamicCensus {
    let mut interp = Interp::new_with_options(program, LayoutOptions { fuse: true });
    interp.run_entry().expect("census program runs");
    DynamicCensus {
        instructions: interp.counters.instructions,
        dispatches: interp.counters.dispatches,
    }
}

/// The full census of one named program.
pub fn census(name: &str, program: &Program) -> OpCensus {
    OpCensus {
        name: name.to_string(),
        static_: static_census(program),
        dynamic: dynamic_census(program),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_sources_compile_and_run() {
        for src in [ARITH_CHAIN_DEEP, COND_CHAIN_DEEP] {
            let p = compile_chain(src);
            assert!(executed_seed_ops(&p) > 10_000, "chains run deep");
        }
    }

    #[test]
    fn arith_chain_census_is_dominated_by_fused_arithmetic() {
        let p = compile_chain(ARITH_CHAIN_DEEP);
        let c = census("arith_chain_deep", &p);
        let count = |kind: &str| {
            c.static_
                .super_counts
                .iter()
                .find(|(k, _)| *k == kind)
                .map(|(_, n)| *n)
                .unwrap_or(0)
        };
        assert!(c.static_.fused_ops < c.static_.unfused_ops);
        assert!(count("load_load_bin") >= 4, "a = b + c family");
        assert!(count("inc_local") >= 1, "i = i + 1");
        // Fusion must pay off dynamically, not just in the listing.
        assert!(c.dynamic.dispatches < c.dynamic.instructions);
        assert!(c.dynamic.dispatch_reduction_pct() > 20.0);
    }

    #[test]
    fn cond_chain_census_contains_fused_compares() {
        let p = compile_chain(COND_CHAIN_DEEP);
        let c = census("cond_chain_deep", &p);
        let fused_compares: usize = c
            .static_
            .super_counts
            .iter()
            .filter(|(k, _)| matches!(*k, "if_cmp_fused" | "load_const_if_cmp" | "load_if_cmp"))
            .map(|(_, n)| n)
            .sum();
        assert!(fused_compares >= 4, "one per conditional in the chain");
        assert!(c.dynamic.dispatch_reduction_pct() > 10.0);
    }

    #[test]
    fn instructions_are_fusion_independent() {
        let p = compile_chain(ARITH_CHAIN_DEEP);
        let fused = dynamic_census(&p);
        let mut unfused = Interp::new_with_options(&p, LayoutOptions { fuse: false });
        unfused.run_entry().expect("runs");
        assert_eq!(fused.instructions, unfused.counters.instructions);
        assert_eq!(
            unfused.counters.instructions, unfused.counters.dispatches,
            "without fusion every seed op is one dispatch"
        );
    }
}
