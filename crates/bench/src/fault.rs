//! Fault-injection overhead areas: proof that the transport's fault wrapper is
//! free when faults are off and within noise when a *quiet* plan is attached.
//!
//! Two configurations per workload, both on the paper testbed under the inline
//! scheduler:
//!
//! * **off** — `ClusterConfig.faults = None`, the pre-fault-layer hot path (one
//!   `Option::is_some` branch per send).
//! * **quiet** — a seeded [`FaultPlan`] with every probability at zero: packets
//!   are sequenced, screened through the receive window and counted, but nothing
//!   is injected.
//!
//! The deterministic halves of the comparison are exact: `virtual_identical` and
//! `messages_identical` must be `true` (a quiet plan that shifts a virtual clock
//! or a message count is a correctness bug, and `tests/chaos.rs` fails before
//! this bench does). The wall-clock half (`overhead_pct`) is the measured price
//! of sequencing + screening; the committed artifact pins it near zero, the CI
//! smoke run only sanity-checks it (wall clocks wobble on shared runners).

use autodist::{Distributor, DistributorConfig, PipelineResult};
use autodist_runtime::cluster::ClusterConfig;
use autodist_runtime::net::FaultPlan;

use crate::report::median_wall_ms;

/// One workload's off-vs-quiet comparison.
#[derive(Clone, Debug)]
pub struct FaultOverheadArea {
    /// Workload name (Table 1 row).
    pub name: String,
    /// Median wall time with faults disabled, milliseconds.
    pub off_wall_ms: f64,
    /// Median wall time under a quiet plan, milliseconds.
    pub quiet_wall_ms: f64,
    /// `(quiet - off) / off`, percent (noise-level on a quiet runner).
    pub overhead_pct: f64,
    /// Virtual clocks byte-identical between the two runs (must be `true`).
    pub virtual_identical: bool,
    /// Message and byte counts identical between the two runs (must be `true`).
    pub messages_identical: bool,
}

/// Measures the off-vs-quiet pair for a chatty and a bulk-transfer Table 1
/// workload (the wrapper's cost scales with message count, so `method` is the
/// worst case and `crypt` the amortised one).
pub fn measure_fault_overhead(
    scale: usize,
    repeats: usize,
) -> PipelineResult<Vec<FaultOverheadArea>> {
    let distributor = Distributor::new(DistributorConfig::default());
    let workloads = vec![
        autodist_workloads::method_bench(300 * scale.max(1)),
        autodist_workloads::crypt(400 * scale.max(1)),
    ];
    let off_cluster = ClusterConfig::paper_testbed();
    let quiet_cluster = ClusterConfig {
        faults: Some(FaultPlan::quiet(0x000F_F1CE)),
        ..ClusterConfig::paper_testbed()
    };
    let mut areas = Vec::new();
    for w in workloads {
        let plan = distributor.try_distribute(&w.program)?;
        let off = plan.try_execute(&off_cluster)?;
        let quiet = plan.try_execute(&quiet_cluster)?;
        let off_wall_ms = median_wall_ms(repeats, || plan.execute(&off_cluster));
        let quiet_wall_ms = median_wall_ms(repeats, || plan.execute(&quiet_cluster));
        areas.push(FaultOverheadArea {
            name: w.name.clone(),
            off_wall_ms,
            quiet_wall_ms,
            overhead_pct: if off_wall_ms > 0.0 {
                (quiet_wall_ms - off_wall_ms) / off_wall_ms * 100.0
            } else {
                0.0
            },
            virtual_identical: off.virtual_time_us == quiet.virtual_time_us,
            messages_identical: off.total_messages() == quiet.total_messages()
                && off.total_bytes() == quiet.total_bytes(),
        });
    }
    Ok(areas)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plans_are_deterministically_invisible() {
        let areas = measure_fault_overhead(1, 1).expect("measurement");
        assert_eq!(areas.len(), 2);
        for a in &areas {
            assert!(
                a.virtual_identical,
                "{}: quiet plan moved a virtual clock",
                a.name
            );
            assert!(
                a.messages_identical,
                "{}: quiet plan changed traffic",
                a.name
            );
            assert!(a.off_wall_ms > 0.0 && a.quiet_wall_ms > 0.0);
        }
    }
}
