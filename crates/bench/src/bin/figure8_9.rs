//! Regenerates Figures 8 and 9: the bytecode transformations that the communication
//! generator applies to a remote method invocation (`account.getSavings()`) and to a
//! remote instantiation (`new Account(...)`).

use autodist::PipelineError;
use autodist_codegen::rewrite::{rewrite_for_node, ClassPlacement};
use autodist_ir::printer::print_bytecode;
use std::collections::BTreeMap;

fn class(
    program: &autodist_ir::Program,
    name: &str,
) -> Result<autodist_ir::ClassId, PipelineError> {
    program
        .class_by_name(name)
        .ok_or_else(|| PipelineError::Codegen(format!("workload is missing class {name}")))
}

fn main() -> Result<(), PipelineError> {
    let w = autodist_workloads::bank(10);
    let program = &w.program;
    let mut home = BTreeMap::new();
    home.insert(class(program, "Main")?, 0);
    home.insert(class(program, "Bank")?, 1);
    home.insert(class(program, "Account")?, 1);
    let placement = ClassPlacement { home, nparts: 2 };

    let main = program
        .entry
        .ok_or_else(|| PipelineError::Codegen("workload has no entry point".to_string()))?;
    println!("Original bytecode of Main.main (Account/Bank local):");
    println!("{}", print_bytecode(program, main));

    let rewritten = rewrite_for_node(program, &placement, 0);
    println!("Transformed bytecode of Main.main on node 0 (Account/Bank hosted on node 1):");
    let rewritten_entry = rewritten
        .program
        .entry
        .ok_or_else(|| PipelineError::Codegen("rewritten copy lost its entry point".to_string()))?;
    println!("{}", print_bytecode(&rewritten.program, rewritten_entry));
    println!(
        "rewrite statistics: {} allocations, {} invocations, {} field accesses in {} methods",
        rewritten.stats.rewritten_allocations,
        rewritten.stats.rewritten_invocations,
        rewritten.stats.rewritten_field_accesses,
        rewritten.stats.methods_transformed
    );
    Ok(())
}
