//! Regenerates Figures 8 and 9: the bytecode transformations that the communication
//! generator applies to a remote method invocation (`account.getSavings()`) and to a
//! remote instantiation (`new Account(...)`).

use autodist_codegen::rewrite::{rewrite_for_node, ClassPlacement};
use autodist_ir::printer::print_bytecode;
use std::collections::BTreeMap;

fn main() {
    let w = autodist_workloads::bank(10);
    let program = &w.program;
    let mut home = BTreeMap::new();
    home.insert(program.class_by_name("Main").unwrap(), 0);
    home.insert(program.class_by_name("Bank").unwrap(), 1);
    home.insert(program.class_by_name("Account").unwrap(), 1);
    let placement = ClassPlacement { home, nparts: 2 };

    let main = program.entry.unwrap();
    println!("Original bytecode of Main.main (Account/Bank local):");
    println!("{}", print_bytecode(program, main));

    let rewritten = rewrite_for_node(program, &placement, 0);
    println!("Transformed bytecode of Main.main on node 0 (Account/Bank hosted on node 1):");
    println!(
        "{}",
        print_bytecode(&rewritten.program, rewritten.program.entry.unwrap())
    );
    println!(
        "rewrite statistics: {} allocations, {} invocations, {} field accesses in {} methods",
        rewritten.stats.rewritten_allocations,
        rewritten.stats.rewritten_invocations,
        rewritten.stats.rewritten_field_accesses,
        rewritten.stats.methods_transformed
    );
}
