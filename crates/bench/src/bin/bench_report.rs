//! Machine-readable performance report: the Table 1 workload suite (centralized vs
//! distributed, median wall time + virtual time) plus the micro-bench areas —
//! including the op-dispatch probe of the explicit-stack interpreter and the
//! message-delivery probe of the transport's ready queue — and the serving areas
//! (closed-loop requests/sec + p50/p99 latency per schedule), written as JSON.
//!
//! This is the baseline artifact all perf PRs diff against: run it before and after a
//! change and compare `totals.suite_wall_ms`, the per-workload `*_virtual_us`
//! fields, which must be byte-identical across purely mechanical interpreter changes,
//! and the `serving` section's `requests_per_sec` per schedule (see the README's
//! "Performance" section for the schema and the committed `BENCH_pr3.json` …
//! `BENCH_pr9.json` baselines). The `adaptive_serving` section A/Bs static vs
//! adaptive placement on the skewed generated workload; its deterministic
//! `adaptive_messages < static_messages` comparison is the CI guard on the
//! online repartition loop.
//!
//! Usage: `cargo run --release -p autodist-bench --bin bench_report -- \
//!            [--repeats N] [--scale N] [--out FILE] [--quick]`

use autodist::PipelineError;
use autodist_bench::report::measure;

fn main() -> Result<(), PipelineError> {
    let mut repeats = 5usize;
    let mut scale = 1usize;
    let mut out = "BENCH_pr10.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--repeats" => repeats = parse_arg(args.next(), "--repeats")?,
            "--scale" => scale = parse_arg(args.next(), "--scale")?,
            "--out" => {
                out = args.next().ok_or_else(|| {
                    PipelineError::Config("--out requires a file path".to_string())
                })?
            }
            "--quick" => {
                // CI smoke configuration: fewest repeats on the smallest workloads.
                repeats = 2;
                scale = 1;
            }
            other => {
                return Err(PipelineError::Config(format!(
                    "unknown argument {other} (expected --repeats/--scale/--out/--quick)"
                )))
            }
        }
    }

    let report = measure(scale, repeats)?;
    println!(
        "{:<26} {:>12} {:>14} {:>12} {:>14} {:>9} {:>8}",
        "workload", "cent ms", "cent virt us", "dist ms", "dist virt us", "messages", "correct"
    );
    for w in &report.workloads {
        println!(
            "{:<26} {:>12.3} {:>14.0} {:>12.3} {:>14.0} {:>9} {:>8}",
            w.name,
            w.centralized_wall_ms,
            w.centralized_virtual_us,
            w.distributed_wall_ms,
            w.distributed_virtual_us,
            w.messages,
            w.checksum_matches
        );
    }
    println!();
    for m in &report.micro {
        println!("micro {:<28} {:>12.2} us", m.name, m.median_us);
    }
    println!();
    for c in &report.census {
        println!(
            "census {:<27} {:>6} -> {:>6} ops static, dispatch reduction {:>5.1}%",
            c.name,
            c.static_.unfused_ops,
            c.static_.fused_ops,
            c.dynamic.dispatch_reduction_pct()
        );
    }
    println!();
    for s in &report.serving {
        println!(
            "serving {:<10} threads {:>2} conc {:>3} reqs {:>4} ingress {:>3} us  {:>9.1} req/s  p50 {:>9.1} us  p99 {:>9.1} us  ok {}",
            s.name, s.threads, s.concurrency, s.requests, s.ingress_us, s.requests_per_sec, s.p50_us, s.p99_us, s.all_ok
        );
    }
    println!();
    let a = &report.adaptive_serving;
    println!(
        "adaptive_serving reqs {:>3} epoch {:>3}  static {:>5} msgs {:>9.1} req/s  adaptive {:>5} msgs {:>9.1} req/s  swaps {}  ok {}  checksums {}",
        a.requests, a.epoch_requests, a.static_messages, a.static_rps, a.adaptive_messages, a.adaptive_rps, a.placement_swaps, a.all_ok, a.checksums_match
    );
    println!();
    for a in &report.fault_overhead {
        println!(
            "fault_overhead {:<16} off {:>8.3} ms  quiet {:>8.3} ms  overhead {:>6.1}%  virt-identical {}  traffic-identical {}",
            a.name, a.off_wall_ms, a.quiet_wall_ms, a.overhead_pct, a.virtual_identical, a.messages_identical
        );
    }
    println!();
    println!(
        "totals: centralized {:.3} ms, distributed {:.3} ms, suite {:.3} ms",
        report.total_centralized_ms(),
        report.total_distributed_ms(),
        report.total_suite_ms()
    );

    std::fs::write(&out, report.to_json())
        .map_err(|e| PipelineError::Config(format!("cannot write {out}: {e}")))?;
    println!("wrote {out}");
    Ok(())
}

fn parse_arg(v: Option<String>, flag: &str) -> Result<usize, PipelineError> {
    v.and_then(|s| s.parse().ok())
        .ok_or_else(|| PipelineError::Config(format!("{flag} requires a positive integer")))
}
