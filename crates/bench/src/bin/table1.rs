//! Regenerates Table 1: benchmark sizes and the sizes/edge cuts of the class relation
//! graph and the object dependence graph for each benchmark.

use autodist::{DistributorConfig, PipelineError, Table1Row};
use autodist_bench::{scale_from_args, table1_row};

fn main() -> Result<(), PipelineError> {
    let scale = scale_from_args();
    println!("Table 1 — benchmark and graph sizes (scale = {scale})");
    println!("{}", Table1Row::header());
    for w in autodist_workloads::table1_workloads(scale) {
        let row = table1_row(&w, &DistributorConfig::default())?;
        println!("{}", row.render());
    }
    let bank = autodist_workloads::bank(100 * scale);
    println!(
        "{}",
        table1_row(&bank, &DistributorConfig::default())?.render()
    );
    Ok(())
}
