//! Regenerates Table 2: the execution-time breakdown of the code-distribution
//! transformation (CRG construction, ODG construction, partitioning, bytecode rewrite).

use autodist::{Distributor, DistributorConfig, PipelineError};
use autodist_bench::scale_from_args;

fn main() -> Result<(), PipelineError> {
    let scale = scale_from_args();
    println!("Table 2 — distribution transformation times in ms (scale = {scale})");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "construct", "ODG", "partition", "rewrite", "total"
    );
    let distributor = Distributor::new(DistributorConfig::default());
    for w in autodist_workloads::table1_workloads(scale) {
        let plan = distributor.try_distribute(&w.program)?;
        let t = plan.timings;
        println!(
            "{:<12} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            w.name,
            t.crg_ms,
            t.odg_ms,
            t.partition_ms,
            t.rewrite_ms,
            t.total_ms()
        );
    }
    Ok(())
}
