//! Regenerates Figures 3 and 4: the class relation graph and the object dependence
//! graph of the Bank/Account example, in VCG (aiSee) and Graphviz DOT formats.

use autodist::viz;
use autodist::{Distributor, DistributorConfig, PipelineError};
use std::fs;

fn io_err(e: std::io::Error) -> PipelineError {
    PipelineError::Config(format!("cannot write results: {e}"))
}

fn main() -> Result<(), PipelineError> {
    let w = autodist_workloads::bank(100);
    let distributor = Distributor::new(DistributorConfig::default());
    let plan = distributor.try_distribute(&w.program)?;

    let out_dir = std::path::Path::new("results");
    fs::create_dir_all(out_dir).map_err(io_err)?;
    let crg_vcg = viz::crg_to_vcg(&w.program, &plan.analysis.crg);
    let crg_dot = viz::crg_to_dot(&w.program, &plan.analysis.crg);
    let odg_vcg = viz::odg_to_vcg(&plan.analysis.odg, Some(&plan.partitioning.assignment));
    let odg_dot = viz::odg_to_dot(&plan.analysis.odg, Some(&plan.partitioning.assignment));
    fs::write(out_dir.join("figure3_crg.vcg"), &crg_vcg).map_err(io_err)?;
    fs::write(out_dir.join("figure3_crg.dot"), &crg_dot).map_err(io_err)?;
    fs::write(out_dir.join("figure4_odg.vcg"), &odg_vcg).map_err(io_err)?;
    fs::write(out_dir.join("figure4_odg.dot"), &odg_dot).map_err(io_err)?;
    fs::write(
        out_dir.join("placement.dot"),
        viz::placement_to_dot(&w.program, &plan.placement),
    )
    .map_err(io_err)?;

    println!(
        "Figure 3 — class relation graph ({} nodes, {} edges)",
        plan.analysis.crg.node_count(),
        plan.analysis.crg.edge_count()
    );
    println!("{crg_vcg}");
    println!(
        "Figure 4 — object dependence graph ({} nodes, {} edges)",
        plan.analysis.odg.node_count(),
        plan.analysis.odg.edge_count()
    );
    println!("{odg_vcg}");
    println!("written to results/figure3_crg.{{vcg,dot}} and results/figure4_odg.{{vcg,dot}}");
    Ok(())
}
