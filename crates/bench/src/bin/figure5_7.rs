//! Regenerates Figures 5–7: the quad listing, the AST and the x86 / StrongARM machine
//! code for the paper's `Example.ex(int b)` method.

use autodist::PipelineError;
use autodist_codegen::{ast, generate_method, Target};
use autodist_ir::bytecode::CmpOp;
use autodist_ir::lower::lower_method;
use autodist_ir::printer::print_quads;
use autodist_ir::{ProgramBuilder, Type};

fn main() -> Result<(), PipelineError> {
    // public class Example { int ex(int b) { b = 4; if (b > 2) { b++; } return b; } }
    let mut pb = ProgramBuilder::new();
    let example = pb.class("Example");
    let mut m = pb.method(example, "ex", vec![Type::Int], Type::Int);
    m.iconst(4).store(1);
    let skip = m.label();
    m.load(1).iconst(2).if_cmp(CmpOp::Le, skip);
    m.load(1).iconst(1).add().store(1);
    m.place(skip);
    m.load(1).ret_val();
    let id = m.finish();
    let program = pb.build();
    let qm = lower_method(&program, program.method(id))?;

    println!("Figure 5 — quad listing of Example.ex:");
    println!("{}", print_quads(&program, &qm));

    println!("Figure 6 — AST of the quads:");
    for (block, trees) in ast::build_method_forest(&program, &qm) {
        for t in trees {
            print!("{}", t.render(0));
        }
        let _ = block;
    }
    println!();

    println!("Figure 7 — x86 machine code:");
    for line in generate_method(&program, &qm, Target::X86) {
        println!("    {line}");
    }
    println!();
    println!("Figure 7 — StrongARM machine code:");
    for line in generate_method(&program, &qm, Target::StrongArm) {
        println!("    {line}");
    }
    Ok(())
}
