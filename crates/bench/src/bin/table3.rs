//! Regenerates Table 3: profiler overhead per metric over the Java Grande-style
//! workloads (baseline = profiling compiled in but not enabled).

use autodist_bench::scale_from_args;
use autodist_profiler::overhead::measure_overheads;
use autodist_profiler::Metric;

fn main() {
    let scale = scale_from_args();
    let workloads: Vec<(String, autodist_ir::Program)> =
        autodist_workloads::table3_workloads(scale)
            .into_iter()
            .map(|w| (w.name, w.program))
            .collect();
    println!("Table 3 — profiler overhead (wall-clock ms, scale = {scale})");
    let table = measure_overheads(&workloads, &Metric::all(), 3);
    print!("{}", table.render());
    println!(
        "average overhead across all profilers: {:.2}% (paper reports 21.94%)",
        table.average_overhead_pct()
    );
}
