//! Regenerates Figure 11: the performance comparison of centralized and distributed
//! executions (speedup percentage per benchmark).

use autodist::{DistributorConfig, PipelineError};
use autodist_bench::{measure_speedup, scale_from_args};

fn main() -> Result<(), PipelineError> {
    let scale = scale_from_args();
    println!("Figure 11 — centralized vs distributed execution (scale = {scale})");
    println!(
        "{:<12} {:>14} {:>14} {:>10} {:>10} {:>10} {:>9}",
        "benchmark", "central (us)", "distrib (us)", "speedup%", "messages", "bytes", "correct"
    );
    // Multilevel partitioning with the default resource model; pass a scale argument to
    // grow the workloads (larger compute-to-communication ratios favour distribution).
    let config = DistributorConfig::default();
    let mut rows = autodist_workloads::table1_workloads(scale);
    rows.push(autodist_workloads::bank(60 * scale));
    for w in rows {
        let row = measure_speedup(&w, &config)?;
        println!(
            "{:<12} {:>14.0} {:>14.0} {:>9.1}% {:>10} {:>10} {:>9}",
            row.benchmark,
            row.centralized_us,
            row.distributed_us,
            row.speedup_pct(),
            row.messages,
            row.bytes,
            row.checksum_matches
        );
    }
    println!();
    println!("paper range: 79.2% .. 175.2% with a naive partitioning on a 2-node testbed");
    Ok(())
}
