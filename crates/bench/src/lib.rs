//! # autodist-bench
//!
//! The experiment harness: one binary per table/figure of the paper's evaluation
//! (Section 7) plus criterion micro-benchmarks for the individual pipeline phases.
//!
//! | target | reproduces |
//! |---|---|
//! | `table1`    | Table 1 — benchmark sizes, CRG/ODG sizes and edge cuts |
//! | `table2`    | Table 2 — execution-time breakdown of the distribution transformation |
//! | `table3`    | Table 3 — profiler overhead per metric |
//! | `figure3_4` | Figures 3 & 4 — CRG and ODG of the Bank example (VCG + DOT files) |
//! | `figure5_7` | Figures 5–7 — quads, AST and x86/StrongARM code for `Example.ex` |
//! | `figure8_9` | Figures 8 & 9 — bytecode transformations for remote calls and `new` |
//! | `figure11`  | Figure 11 — centralized vs distributed execution speedup |
//!
//! Run any of them with `cargo run -p autodist-bench --bin <name> [-- scale]`.

use autodist::{Distributor, DistributorConfig, PipelineResult, Table1Row};
use autodist_runtime::cluster::ClusterConfig;
use autodist_workloads::Workload;

pub mod fault;
pub mod microbench;
pub mod report;
pub mod serving;

/// One row of the Figure 11 experiment.
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Sequential execution time on the slow node, virtual microseconds.
    pub centralized_us: f64,
    /// Distributed execution time, virtual microseconds.
    pub distributed_us: f64,
    /// Messages exchanged by the distributed run.
    pub messages: u64,
    /// Bytes exchanged by the distributed run.
    pub bytes: u64,
    /// `true` if the distributed run produced the same `Main.checksum` as the baseline.
    pub checksum_matches: bool,
}

impl SpeedupRow {
    /// The speedup percentage the paper plots (100 % = parity, >100 % = faster).
    pub fn speedup_pct(&self) -> f64 {
        if self.distributed_us <= 0.0 {
            0.0
        } else {
            self.centralized_us / self.distributed_us * 100.0
        }
    }
}

/// Runs the Figure 11 experiment for one workload: centralized baseline on the slow
/// node vs automatic distribution over the paper's two-node testbed. Pipeline and
/// execution failures surface as [`autodist::PipelineError`].
pub fn measure_speedup(
    workload: &Workload,
    config: &DistributorConfig,
) -> PipelineResult<SpeedupRow> {
    let distributor = Distributor::new(config.clone());
    let baseline = distributor.try_run_baseline(&workload.program)?;
    let plan = distributor.try_distribute(&workload.program)?;
    let report = plan.try_execute(&ClusterConfig::paper_testbed())?;
    let checksum_matches =
        report.final_statics.get("Main::checksum") == baseline.final_statics.get("Main::checksum");
    Ok(SpeedupRow {
        benchmark: workload.name.clone(),
        centralized_us: baseline.virtual_time_us,
        distributed_us: report.virtual_time_us,
        messages: report.total_messages(),
        bytes: report.total_bytes(),
        checksum_matches,
    })
}

/// Builds the Table 1 row for one workload.
pub fn table1_row(workload: &Workload, config: &DistributorConfig) -> PipelineResult<Table1Row> {
    let distributor = Distributor::new(config.clone());
    let plan = distributor.try_distribute(&workload.program)?;
    Ok(Table1Row::build(
        &workload.name,
        &workload.program,
        &plan.analysis,
        &plan.partitioning,
        &plan.placement,
    ))
}

/// Parses the optional `scale` argument used by the table/figure binaries.
pub fn scale_from_args() -> usize {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_row_for_bank_is_consistent() {
        let w = autodist_workloads::bank(10);
        let row = measure_speedup(&w, &DistributorConfig::default()).expect("pipeline");
        assert!(row.checksum_matches);
        assert!(row.centralized_us > 0.0);
        assert!(row.distributed_us > 0.0);
        assert!(row.speedup_pct() > 0.0);
    }

    #[test]
    fn table1_row_matches_workload_name() {
        let w = autodist_workloads::crypt(100);
        let row = table1_row(&w, &DistributorConfig::default()).expect("pipeline");
        assert_eq!(row.benchmark, "crypt");
        assert!(row.crg.nodes > 0 && row.odg.nodes > 0);
    }
}
