//! Criterion benchmark: communication generation (bytecode rewriting, Table 2's
//! "rewrite" column) and BURS code generation for both targets.

use autodist_codegen::rewrite::{rewrite_for_node, ClassPlacement};
use autodist_codegen::{generate_method, Target};
use autodist_ir::lower::lower_program;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;

fn two_way_placement(p: &autodist_ir::Program) -> ClassPlacement {
    let mut home = BTreeMap::new();
    for (i, class) in p.classes.iter().enumerate() {
        home.insert(class.id, i % 2);
    }
    if let Some(entry) = p.entry {
        home.insert(p.method(entry).class, 0);
    }
    ClassPlacement { home, nparts: 2 }
}

fn bench_rewrite(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewrite");
    group.sample_size(20);
    for w in autodist_workloads::table1_workloads(1) {
        let placement = two_way_placement(&w.program);
        group.bench_with_input(BenchmarkId::new("rewrite_node0", &w.name), &w, |b, w| {
            b.iter(|| rewrite_for_node(&w.program, &placement, 0))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("codegen");
    group.sample_size(20);
    let w = autodist_workloads::crypt(100);
    let quads = lower_program(&w.program).unwrap();
    group.bench_function("burs_x86", |b| {
        b.iter(|| {
            quads
                .iter()
                .map(|qm| generate_method(&w.program, qm, Target::X86).len())
                .sum::<usize>()
        })
    });
    group.bench_function("burs_strongarm", |b| {
        b.iter(|| {
            quads
                .iter()
                .map(|qm| generate_method(&w.program, qm, Target::StrongArm).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rewrite);
criterion_main!(benches);
