//! Criterion benchmark: multilevel vs naive partitioning of ODG-shaped graphs
//! (the ablation DESIGN.md calls out — the paper used naive partitioning and defers
//! smarter partitioning to future work).

use autodist_partition::{partition, GraphBuilder, Method, PartitionConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A clustered graph shaped like a large ODG: `clusters` dense groups of `size`
/// objects with sparse inter-cluster use edges.
fn clustered_graph(clusters: usize, size: usize) -> autodist_partition::Graph {
    let n = clusters * size;
    let mut b = GraphBuilder::new(n, 3);
    for v in 0..n {
        b.set_weight(v, &[16, 4, 2]);
    }
    for c in 0..clusters {
        let base = c * size;
        for i in 0..size {
            for j in (i + 1)..size.min(i + 4) {
                b.add_edge(base + i, base + j, 8);
            }
        }
        // light bridge to the next cluster
        b.add_edge(base, ((c + 1) % clusters) * size, 1);
    }
    b.build()
}

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioning");
    group.sample_size(20);
    for &n in &[8usize, 32, 64] {
        let g = clustered_graph(n, 16);
        group.bench_with_input(BenchmarkId::new("multilevel", n * 16), &g, |b, g| {
            b.iter(|| partition(g, &PartitionConfig::kway(4)))
        });
        group.bench_with_input(BenchmarkId::new("naive", n * 16), &g, |b, g| {
            b.iter(|| {
                partition(
                    g,
                    &PartitionConfig {
                        nparts: 4,
                        method: Method::RoundRobin,
                        ..Default::default()
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
