//! Criterion benchmark: the dependence-analysis phases (RTA + CRG, ODG construction)
//! that dominate Table 2's "construct" column.

use autodist_analysis::crg::build_crg;
use autodist_analysis::objects::collect_objects;
use autodist_analysis::odg::build_odg;
use autodist_analysis::rta::rapid_type_analysis;
use autodist_analysis::weights::WeightModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    group.sample_size(20);
    for w in autodist_workloads::table1_workloads(1) {
        group.bench_with_input(BenchmarkId::new("crg", &w.name), &w, |b, w| {
            b.iter(|| {
                let cg = rapid_type_analysis(&w.program);
                build_crg(&w.program, &cg)
            })
        });
        group.bench_with_input(BenchmarkId::new("odg", &w.name), &w, |b, w| {
            let cg = rapid_type_analysis(&w.program);
            let crg = build_crg(&w.program, &cg);
            let objects = collect_objects(&w.program, &cg);
            b.iter(|| build_odg(&w.program, &crg, &objects, &WeightModel::Uniform))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
