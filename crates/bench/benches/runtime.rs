//! Criterion benchmark: interpreter throughput, message-exchange round trips and the
//! end-to-end centralized vs distributed execution of the Bank example.

use autodist::{Distributor, DistributorConfig};
use autodist_ir::frontend::compile_source;
use autodist_runtime::cluster::{run_centralized, run_distributed, ClusterConfig, Schedule};
use autodist_runtime::wire::{Request, WireValue};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");
    group.sample_size(15);

    let crypt = autodist_workloads::crypt(400);
    group.bench_function("interpreter_crypt", |b| {
        b.iter(|| run_centralized(&crypt.program, 1.0))
    });

    // The slot-interning microbench: a loop that is nothing but field reads/writes
    // and virtual calls. Before the layout pass every iteration cloned field-name
    // strings and probed per-object maps; now it is pure slot indexing + vtable
    // dispatch (verify with `cargo bench -p autodist-bench --bench runtime`).
    let field_hot = compile_source(
        r#"
        class Acc {
            int a;
            int b;
            int get() { return this.a; }
        }
        class Main {
            static void main() {
                Acc acc = new Acc();
                int i = 0;
                while (i < 5000) {
                    acc.a = acc.a + 1;
                    acc.b = acc.b + acc.get();
                    i = i + 1;
                }
            }
        }
    "#,
    )
    .expect("microbench compiles");
    group.bench_function("field_access_hot_loop", |b| {
        b.iter(|| run_centralized(&field_hot, 1.0))
    });

    group.bench_function("wire_encode_decode", |b| {
        let req = Request::Dependence {
            target: 7,
            kind: autodist_runtime::wire::AccessKind::InvokeRet,
            member: "getSavings".into(),
            args: vec![WireValue::Int(1), WireValue::Str("x".into())],
        };
        b.iter(|| Request::decode(req.encode()))
    });

    let bank = autodist_workloads::bank(20);
    let plan = Distributor::new(DistributorConfig::default()).distribute(&bank.program);
    let programs = plan.programs();
    group.bench_function("distributed_bank_inline", |b| {
        b.iter(|| {
            run_distributed(
                &programs,
                &ClusterConfig {
                    schedule: Schedule::Inline,
                    ..ClusterConfig::paper_testbed()
                },
            )
        })
    });
    group.bench_function("distributed_bank_threaded", |b| {
        b.iter(|| {
            run_distributed(
                &programs,
                &ClusterConfig {
                    schedule: Schedule::Threaded,
                    ..ClusterConfig::paper_testbed()
                },
            )
        })
    });
    group.bench_function("centralized_bank", |b| {
        b.iter(|| run_centralized(&bank.program, 1.0))
    });
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
