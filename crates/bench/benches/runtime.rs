//! Criterion benchmark: interpreter throughput, message-exchange round trips and the
//! end-to-end centralized vs distributed execution of the Bank example.

use autodist::{Distributor, DistributorConfig};
use autodist_runtime::cluster::{run_centralized, run_distributed, ClusterConfig};
use autodist_runtime::wire::{Request, WireValue};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");
    group.sample_size(15);

    let crypt = autodist_workloads::crypt(400);
    group.bench_function("interpreter_crypt", |b| {
        b.iter(|| run_centralized(&crypt.program, 1.0))
    });

    group.bench_function("wire_encode_decode", |b| {
        let req = Request::Dependence {
            target: 7,
            kind: autodist_runtime::wire::AccessKind::InvokeRet,
            member: "getSavings".into(),
            args: vec![WireValue::Int(1), WireValue::Str("x".into())],
        };
        b.iter(|| Request::decode(req.encode()))
    });

    let bank = autodist_workloads::bank(20);
    let plan = Distributor::new(DistributorConfig::default()).distribute(&bank.program);
    let programs = plan.programs();
    group.bench_function("distributed_bank", |b| {
        b.iter(|| run_distributed(&programs, &ClusterConfig::paper_testbed()))
    });
    group.bench_function("centralized_bank", |b| {
        b.iter(|| run_centralized(&bank.program, 1.0))
    });
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
