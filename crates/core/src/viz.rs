//! Graph export in VCG and Graphviz DOT formats.
//!
//! The paper visualises the class relation graph and the object dependence graph with
//! the aiSee tool, which consumes the VCG (Visualising Compiler Graphs) format; these
//! exporters regenerate Figures 3 and 4. A DOT exporter is provided as well since
//! Graphviz is what most readers have installed today.

use std::fmt::Write as _;

use autodist_analysis::crg::{ClassPart, ClassRelationGraph, CrgEdgeKind};
use autodist_analysis::odg::{ObjectDependenceGraph, OdgEdgeKind};
use autodist_codegen::rewrite::ClassPlacement;
use autodist_ir::program::Program;

fn crg_node_label(program: &Program, class: autodist_ir::ClassId, part: ClassPart) -> String {
    let prefix = match part {
        ClassPart::Static => "ST",
        ClassPart::Dynamic => "DT",
    };
    format!("{prefix} {}", program.class(class).name)
}

fn crg_edge_style(kind: CrgEdgeKind) -> (&'static str, &'static str) {
    match kind {
        CrgEdgeKind::Use => ("use", "solid"),
        CrgEdgeKind::Export => ("export", "dashed"),
        CrgEdgeKind::Import => ("import", "dotted"),
    }
}

/// Renders the class relation graph in VCG format (Figure 3).
pub fn crg_to_vcg(program: &Program, crg: &ClassRelationGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph: {{ title: \"Class Relation Graph\"");
    let _ = writeln!(out, "  layoutalgorithm: minbackward");
    for node in &crg.nodes {
        let _ = writeln!(
            out,
            "  node: {{ title: \"{}\" label: \"{}\" }}",
            crg_node_label(program, node.class, node.part),
            crg_node_label(program, node.class, node.part)
        );
    }
    for edge in &crg.edges {
        let (label, _) = crg_edge_style(edge.kind);
        let _ = writeln!(
            out,
            "  edge: {{ sourcename: \"{}\" targetname: \"{}\" label: \"{}\" }}",
            crg_node_label(program, edge.from.class, edge.from.part),
            crg_node_label(program, edge.to.class, edge.to.part),
            label
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders the class relation graph in Graphviz DOT format.
pub fn crg_to_dot(program: &Program, crg: &ClassRelationGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph crg {{");
    let _ = writeln!(out, "  node [shape=box];");
    for node in &crg.nodes {
        let label = crg_node_label(program, node.class, node.part);
        let _ = writeln!(out, "  \"{label}\";");
    }
    for edge in &crg.edges {
        let (label, style) = crg_edge_style(edge.kind);
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{}\", style={}];",
            crg_node_label(program, edge.from.class, edge.from.part),
            crg_node_label(program, edge.to.class, edge.to.part),
            label,
            style
        );
    }
    let _ = writeln!(out, "}}");
    out
}

fn odg_node_label(odg: &ObjectDependenceGraph, idx: usize, assignment: Option<&[usize]>) -> String {
    let base = odg.labels[idx].clone();
    match assignment.and_then(|a| a.get(idx)) {
        Some(p) => format!("{base} [{p}]"),
        None => base,
    }
}

/// Renders the object dependence graph in VCG format. When `assignment` is provided,
/// each node label carries its partition number in square brackets, as Figure 4 does.
pub fn odg_to_vcg(odg: &ObjectDependenceGraph, assignment: Option<&[usize]>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph: {{ title: \"Object Dependence Graph\"");
    for i in 0..odg.node_count() {
        let label = odg_node_label(odg, i, assignment);
        let _ = writeln!(out, "  node: {{ title: \"n{i}\" label: \"{label}\" }}");
    }
    for edge in &odg.edges {
        let label = match edge.kind {
            OdgEdgeKind::Create => "create",
            OdgEdgeKind::Reference => "reference",
            OdgEdgeKind::Use => "use",
        };
        let _ = writeln!(
            out,
            "  edge: {{ sourcename: \"n{}\" targetname: \"n{}\" label: \"{label}\" }}",
            edge.from.0, edge.to.0
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders the object dependence graph in DOT format, with partition numbers when
/// `assignment` is provided and use-edges highlighted.
pub fn odg_to_dot(odg: &ObjectDependenceGraph, assignment: Option<&[usize]>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph odg {{");
    let _ = writeln!(out, "  node [shape=ellipse];");
    for i in 0..odg.node_count() {
        let label = odg_node_label(odg, i, assignment);
        let color = match assignment.and_then(|a| a.get(i)) {
            Some(0) => "lightblue",
            Some(1) => "lightyellow",
            Some(_) => "lightgrey",
            None => "white",
        };
        let _ = writeln!(
            out,
            "  n{i} [label=\"{label}\", style=filled, fillcolor={color}];"
        );
    }
    for edge in &odg.edges {
        let (label, style) = match edge.kind {
            OdgEdgeKind::Create => ("create", "solid"),
            OdgEdgeKind::Reference => ("reference", "dotted"),
            OdgEdgeKind::Use => ("use", "bold"),
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\", style={}];",
            edge.from.0, edge.to.0, label, style
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders the class placement as a small DOT cluster diagram (one subgraph per node),
/// a convenient way to inspect what the distribution decided.
pub fn placement_to_dot(program: &Program, placement: &ClassPlacement) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph placement {{");
    for node in 0..placement.nparts.max(1) {
        let _ = writeln!(out, "  subgraph cluster_{node} {{");
        let _ = writeln!(out, "    label=\"Node {node}\";");
        for (&class, &home) in &placement.home {
            if home == node {
                let _ = writeln!(out, "    \"{}\";", program.class(class).name);
            }
        }
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Distributor, DistributorConfig};
    use autodist_workloads as workloads;

    fn bank_plan() -> (autodist_ir::Program, crate::DistributionPlan) {
        let w = workloads::bank(8);
        let d = Distributor::new(DistributorConfig::default());
        let plan = d.distribute(&w.program);
        (w.program, plan)
    }

    #[test]
    fn crg_vcg_contains_st_dt_nodes_and_relation_labels() {
        let (p, plan) = bank_plan();
        let vcg = crg_to_vcg(&p, &plan.analysis.crg);
        assert!(vcg.starts_with("graph: {"));
        assert!(vcg.contains("ST Main"));
        assert!(vcg.contains("DT Bank"));
        assert!(vcg.contains("label: \"use\""));
        assert!(vcg.contains("label: \"export\"") || vcg.contains("label: \"import\""));
        assert!(vcg.trim_end().ends_with('}'));
    }

    #[test]
    fn odg_vcg_carries_partition_numbers() {
        let (_p, plan) = bank_plan();
        let vcg = odg_to_vcg(&plan.analysis.odg, Some(&plan.partitioning.assignment));
        assert!(vcg.contains("[0]") || vcg.contains("[1]"));
        assert!(vcg.contains("create"));
        assert!(vcg.contains("use"));
    }

    #[test]
    fn dot_outputs_are_valid_ish() {
        let (p, plan) = bank_plan();
        for text in [
            crg_to_dot(&p, &plan.analysis.crg),
            odg_to_dot(&plan.analysis.odg, Some(&plan.partitioning.assignment)),
            placement_to_dot(&p, &plan.placement),
        ] {
            assert!(text.starts_with("digraph"));
            assert_eq!(text.matches('{').count(), text.matches('}').count());
        }
    }

    #[test]
    fn odg_without_assignment_has_no_partition_brackets() {
        let (_p, plan) = bank_plan();
        let vcg = odg_to_vcg(&plan.analysis.odg, None);
        assert!(!vcg.contains(" [0]\""));
    }
}
