//! Statistics and timing records that back the paper's Table 1 and Table 2.

use autodist_ir::program::Program;
use autodist_partition::Partitioning;

use crate::Analysis;

/// Per-phase wall-clock timings of the distribution transformation (Table 2, ms).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimings {
    /// Class-relation-graph construction (includes RTA).
    pub crg_ms: f64,
    /// Object-dependence-graph construction.
    pub odg_ms: f64,
    /// Graph partitioning.
    pub partition_ms: f64,
    /// Bytecode rewriting (communication generation for every node copy).
    pub rewrite_ms: f64,
}

impl PhaseTimings {
    /// Total transformation time.
    pub fn total_ms(&self) -> f64 {
        self.crg_ms + self.odg_ms + self.partition_ms + self.rewrite_ms
    }
}

/// Node/edge/edgecut statistics for one graph (the CRG or ODG columns of Table 1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Number of edges straddling partitions.
    pub edgecut: usize,
}

/// One row of Table 1: benchmark size plus CRG and ODG statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table1Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Number of classes.
    pub classes: usize,
    /// Number of methods.
    pub methods: usize,
    /// Approximate static size in KB.
    pub kb: u64,
    /// Class relation graph statistics.
    pub crg: GraphStats,
    /// Object dependence graph statistics.
    pub odg: GraphStats,
}

impl Table1Row {
    /// Builds the row from a program, its analysis and the ODG partitioning.
    ///
    /// The CRG edgecut is computed by projecting the class placement implied by the
    /// ODG partitioning onto the CRG nodes (the paper's "currently we use the class
    /// relation graph partitioning" remark means its CRG and ODG cuts are reported for
    /// the same two-way split).
    pub fn build(
        benchmark: &str,
        program: &Program,
        analysis: &Analysis,
        partitioning: &Partitioning,
        placement: &autodist_codegen::rewrite::ClassPlacement,
    ) -> Table1Row {
        let odg_cut = analysis
            .odg
            .edges_of_kind(autodist_analysis::odg::OdgEdgeKind::Use)
            .filter(|e| {
                partitioning.assignment.get(e.from.0 as usize)
                    != partitioning.assignment.get(e.to.0 as usize)
            })
            .count();
        let crg_cut = analysis
            .crg
            .edges
            .iter()
            .filter(|e| placement.home_of(e.from.class) != placement.home_of(e.to.class))
            .count();
        Table1Row {
            benchmark: benchmark.to_string(),
            classes: program.class_count(),
            methods: program.method_count(),
            kb: program.size_kb(),
            crg: GraphStats {
                nodes: analysis.crg.node_count(),
                edges: analysis.crg.edge_count(),
                edgecut: crg_cut,
            },
            odg: GraphStats {
                nodes: analysis.odg.node_count(),
                edges: analysis.odg.edge_count(),
                edgecut: odg_cut,
            },
        }
    }

    /// Renders the header line of Table 1.
    pub fn header() -> String {
        format!(
            "{:<12} {:>4} {:>4} {:>5} | {:>5} {:>5} {:>4} | {:>5} {:>5} {:>4}",
            "benchmark", "#C", "#M", "KB", "crgN", "crgE", "EC", "odgN", "odgE", "EC"
        )
    }

    /// Renders the row in the Table 1 layout.
    pub fn render(&self) -> String {
        format!(
            "{:<12} {:>4} {:>4} {:>5} | {:>5} {:>5} {:>4} | {:>5} {:>5} {:>4}",
            self.benchmark,
            self.classes,
            self.methods,
            self.kb,
            self.crg.nodes,
            self.crg.edges,
            self.crg.edgecut,
            self.odg.nodes,
            self.odg.edges,
            self.odg.edgecut,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Distributor, DistributorConfig};
    use autodist_workloads as workloads;

    #[test]
    fn phase_timings_sum() {
        let t = PhaseTimings {
            crg_ms: 1.0,
            odg_ms: 2.0,
            partition_ms: 3.0,
            rewrite_ms: 4.0,
        };
        assert!((t.total_ms() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn table1_row_for_bank_has_consistent_counts() {
        let w = workloads::bank(10);
        let d = Distributor::new(DistributorConfig::default());
        let plan = d.distribute(&w.program);
        let row = Table1Row::build(
            &w.name,
            &w.program,
            &plan.analysis,
            &plan.partitioning,
            &plan.placement,
        );
        assert_eq!(row.benchmark, "bank");
        assert_eq!(row.classes, 3);
        assert!(row.methods >= 10);
        assert!(row.kb >= 1);
        assert!(row.crg.nodes >= 3);
        assert!(row.odg.nodes >= 4);
        assert!(row.odg.edges >= row.odg.edgecut);
        assert!(row.crg.edges >= row.crg.edgecut);
        let rendered = row.render();
        assert!(rendered.contains("bank"));
        assert!(Table1Row::header().contains("benchmark"));
    }

    #[test]
    fn rows_for_all_table1_workloads_have_nonempty_graphs() {
        let d = Distributor::new(DistributorConfig::default());
        for w in workloads::table1_workloads(1) {
            let plan = d.distribute(&w.program);
            let row = Table1Row::build(
                &w.name,
                &w.program,
                &plan.analysis,
                &plan.partitioning,
                &plan.placement,
            );
            assert!(row.classes >= 2, "{}", w.name);
            assert!(row.crg.nodes >= 2, "{}", w.name);
            assert!(row.odg.nodes >= 2, "{}", w.name);
        }
    }
}
