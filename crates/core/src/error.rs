//! The single error surface of the distribution pipeline.
//!
//! Every phase of the pipeline has its own precise error type where precision matters
//! (`ParseError` with source lines, `VerifyError` with method/pc coordinates,
//! `ExecError` with runtime faults), but callers driving the whole pipeline should not
//! have to know which crate a failure came from. [`PipelineError`] wraps each phase's
//! native error and tags it with the [`Phase`] that produced it, so `Distributor`,
//! the experiment harness and downstream tools report failures through one type.

use std::fmt;

use autodist_ir::frontend::ParseError;
use autodist_ir::lower::LowerError;
use autodist_ir::verify::VerifyError;
use autodist_runtime::cluster::ExecutionReport;
use autodist_runtime::interp::{ExecError, TransportStall};

/// Convenience alias used by the fallible pipeline entry points.
pub type PipelineResult<T> = Result<T, PipelineError>;

/// The pipeline phase a [`PipelineError`] originated in (the paper's Figure 1 stages).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Source parsing / bytecode construction (`autodist-ir`).
    Frontend,
    /// RTA / CRG / ODG construction (`autodist-analysis`).
    Analysis,
    /// Graph partitioning (`autodist-partition`).
    Partition,
    /// Bytecode rewriting and code generation (`autodist-codegen`).
    Codegen,
    /// Bytecode verification of program copies (`autodist-ir`).
    Verify,
    /// Distributed or centralized execution (`autodist-runtime`).
    Runtime,
    /// Pipeline configuration validation (before any phase runs).
    Config,
}

impl Phase {
    /// Stable lowercase name (used in diagnostics and logs).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Frontend => "frontend",
            Phase::Analysis => "analysis",
            Phase::Partition => "partition",
            Phase::Codegen => "codegen",
            Phase::Verify => "verify",
            Phase::Runtime => "runtime",
            Phase::Config => "config",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A failure anywhere in the distribution pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum PipelineError {
    /// The source program failed to parse or compile to bytecode.
    Parse(ParseError),
    /// Bytecode-to-quad lowering failed (codegen-side analyses need quads).
    Lower(LowerError),
    /// A program copy failed bytecode verification. `node` identifies the rewritten
    /// copy (`None` for the input program).
    Verify {
        /// Node whose program copy failed, if the failure is post-rewrite.
        node: Option<usize>,
        /// The individual verification failures.
        errors: Vec<VerifyError>,
    },
    /// The partitioner produced an unusable result for this input.
    Partition(String),
    /// Communication generation could not rewrite the program.
    Codegen(String),
    /// The interpreter faulted (centralized or on some node).
    Exec(ExecError),
    /// A distributed run failed: the launch node's report carried this typed fault.
    Runtime(ExecError),
    /// The transport layer stalled: messages were sent but never became
    /// deliverable, and the scheduler's diagnosis names the ranks with sequence
    /// gaps and the continuations parked on unanswered requests. Split out from
    /// [`PipelineError::Runtime`] so callers can distinguish "the program
    /// faulted" from "the network under it failed" without string matching.
    Transport(TransportStall),
    /// The pipeline configuration is invalid (e.g. zero nodes).
    Config(String),
}

impl PipelineError {
    /// The phase that produced this error.
    pub fn phase(&self) -> Phase {
        match self {
            PipelineError::Parse(_) => Phase::Frontend,
            PipelineError::Lower(_) | PipelineError::Codegen(_) => Phase::Codegen,
            PipelineError::Verify { .. } => Phase::Verify,
            PipelineError::Partition(_) => Phase::Partition,
            PipelineError::Exec(_) | PipelineError::Runtime(_) | PipelineError::Transport(_) => {
                Phase::Runtime
            }
            PipelineError::Config(_) => Phase::Config,
        }
    }

    /// Converts an execution report into a result, surfacing the report's error
    /// through the unified type.
    pub fn check_report(report: ExecutionReport) -> PipelineResult<ExecutionReport> {
        match report.error {
            Some(ExecError::Transport(ref stall)) => Err(PipelineError::Transport(stall.clone())),
            Some(ref e) => Err(PipelineError::Runtime(e.clone())),
            None => Ok(report),
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.phase())?;
        match self {
            PipelineError::Parse(e) => write!(f, "{e}"),
            PipelineError::Lower(e) => write!(f, "{e}"),
            PipelineError::Verify { node, errors } => {
                match node {
                    Some(n) => write!(f, "rewritten copy for node {n} failed verification")?,
                    None => write!(f, "program failed verification")?,
                }
                for e in errors {
                    write!(f, "; {e}")?;
                }
                Ok(())
            }
            PipelineError::Partition(m) => write!(f, "{m}"),
            PipelineError::Codegen(m) => write!(f, "{m}"),
            PipelineError::Exec(e) => write!(f, "{e}"),
            PipelineError::Runtime(e) => write!(f, "{e}"),
            PipelineError::Transport(stall) => write!(f, "{stall}"),
            PipelineError::Config(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Parse(e) => Some(e),
            PipelineError::Lower(e) => Some(e),
            PipelineError::Exec(e) | PipelineError::Runtime(e) => Some(e),
            PipelineError::Verify { errors, .. } => errors
                .first()
                .map(|e| e as &(dyn std::error::Error + 'static)),
            _ => None,
        }
    }
}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::Parse(e)
    }
}

impl From<LowerError> for PipelineError {
    fn from(e: LowerError) -> Self {
        PipelineError::Lower(e)
    }
}

impl From<Vec<VerifyError>> for PipelineError {
    fn from(errors: Vec<VerifyError>) -> Self {
        PipelineError::Verify { node: None, errors }
    }
}

impl From<ExecError> for PipelineError {
    fn from(e: ExecError) -> Self {
        PipelineError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_and_display_are_consistent() {
        let e = PipelineError::Config("nodes must be > 0".into());
        assert_eq!(e.phase(), Phase::Config);
        assert!(e.to_string().contains("invalid configuration"));

        let e = PipelineError::Runtime(ExecError::RemoteFailure("node 1 died".into()));
        assert_eq!(e.phase(), Phase::Runtime);
        assert_eq!(e.to_string(), "[runtime] remote failure: node 1 died");
    }

    #[test]
    fn native_errors_convert_and_keep_their_source() {
        use std::error::Error as _;
        let parse = ParseError {
            line: 3,
            message: "expected `{`".into(),
        };
        let e: PipelineError = parse.into();
        assert_eq!(e.phase(), Phase::Frontend);
        assert!(e.to_string().contains("line 3"));
        assert!(e.source().is_some());

        let verify: PipelineError = vec![VerifyError::NoEntryPoint].into();
        assert_eq!(verify.phase(), Phase::Verify);
        assert!(verify.source().is_some());

        let exec: PipelineError = ExecError::DivisionByZero.into();
        assert_eq!(exec.phase(), Phase::Runtime);
    }

    #[test]
    fn transport_stalls_surface_as_their_own_variant() {
        let stall = TransportStall {
            gapped: vec![1],
            parked: vec![(0, 7)],
        };
        let report = ExecutionReport {
            error: Some(ExecError::Transport(stall.clone())),
            ..Default::default()
        };
        match PipelineError::check_report(report) {
            Err(PipelineError::Transport(s)) => {
                assert_eq!(s, stall);
                let e = PipelineError::Transport(s);
                assert_eq!(e.phase(), Phase::Runtime);
                assert!(e.to_string().contains("transport"));
            }
            other => panic!("expected a transport error, got {other:?}"),
        }
    }

    #[test]
    fn check_report_splits_on_the_error_field() {
        let ok = ExecutionReport {
            virtual_time_us: 1.0,
            wall_time_ms: 1.0,
            error: None,
            ..Default::default()
        };
        assert!(PipelineError::check_report(ok).is_ok());
        let bad = ExecutionReport {
            virtual_time_us: 1.0,
            wall_time_ms: 1.0,
            error: Some(ExecError::UnknownMethod("f".into())),
            ..Default::default()
        };
        match PipelineError::check_report(bad) {
            Err(PipelineError::Runtime(e)) => {
                assert_eq!(e, ExecError::UnknownMethod("f".into()));
                assert!(e.to_string().contains("unknown method"));
            }
            other => panic!("expected runtime error, got {other:?}"),
        }
    }
}
