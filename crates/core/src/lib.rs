//! # autodist
//!
//! The paper's primary contribution assembled into one pipeline: a compiler and runtime
//! infrastructure for **automatic program distribution**. Given a monolithic program,
//! the [`Distributor`]:
//!
//! 1. runs rapid type analysis and builds the class relation graph and the object
//!    dependence graph (`autodist-analysis`),
//! 2. weights the ODG with a resource model and partitions it with the multilevel
//!    multi-constraint partitioner or a naive baseline (`autodist-partition`),
//! 3. derives a class-level placement and generates the per-node program copies with
//!    communication inserted for remote dependences (`autodist-codegen`),
//! 4. hands the copies to the distributed runtime for execution on the simulated
//!    cluster, or to the centralized runtime for the baseline (`autodist-runtime`).
//!
//! Phase timings are recorded (the paper's Table 2), graph statistics are exposed (the
//! paper's Table 1) and both graphs can be exported in VCG or DOT form (Figures 3/4).

pub mod adapt;
pub mod error;
pub mod stats;
pub mod viz;

use std::time::Instant;

use autodist_analysis::crg::{build_crg, ClassRelationGraph};
use autodist_analysis::objects::{collect_objects, ObjectSet};
use autodist_analysis::odg::{build_odg, ObjectDependenceGraph};
use autodist_analysis::rta::{rapid_type_analysis, CallGraph};
use autodist_analysis::weights::WeightModel;
use autodist_codegen::rewrite::{rewrite_for_node, ClassPlacement, RewrittenProgram};
use autodist_ir::program::Program;
use autodist_ir::verify::verify_program;
use autodist_partition::{partition, Graph, GraphBuilder, Method, PartitionConfig, Partitioning};
use autodist_runtime::cluster::{
    run_centralized, run_distributed_profiled, ClusterConfig, ExecutionReport, Schedule,
};
use autodist_runtime::serve::run_serving;

pub use adapt::PlanReplanner;
pub use autodist_runtime::adapt::{AdaptOptions, EpochProfile, Replanner};
pub use autodist_runtime::cluster::NodeProfiler;
pub use autodist_runtime::serve::{RequestReport, ServeOptions, ServerApp, ServingReport};
pub use error::{Phase, PipelineError, PipelineResult};
pub use stats::{GraphStats, PhaseTimings, Table1Row};

/// Configuration of the distribution pipeline.
#[derive(Clone, Debug)]
pub struct DistributorConfig {
    /// Number of nodes (virtual processors) to distribute over.
    pub nodes: usize,
    /// Partitioning algorithm.
    pub method: Method,
    /// Resource weight model for ODG nodes and edges.
    pub weights: WeightModel,
    /// Allowed partition imbalance.
    pub balance_tolerance: f64,
    /// Verify every rewritten program copy before execution.
    pub verify: bool,
    /// Seed for the partitioner's randomised choices.
    pub seed: u64,
}

impl Default for DistributorConfig {
    fn default() -> Self {
        DistributorConfig {
            nodes: 2,
            method: Method::Multilevel,
            weights: WeightModel::Uniform,
            balance_tolerance: 0.25,
            verify: true,
            seed: 0x5eed,
        }
    }
}

impl DistributorConfig {
    /// The paper's configuration: two nodes, the naive partitioning it reports using.
    pub fn paper_defaults() -> Self {
        DistributorConfig {
            method: Method::RoundRobin,
            ..Default::default()
        }
    }

    /// A `nodes`-way multilevel configuration.
    pub fn multilevel(nodes: usize) -> Self {
        DistributorConfig {
            nodes,
            ..Default::default()
        }
    }
}

/// The static analysis products for one program.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// RTA call graph.
    pub call_graph: CallGraph,
    /// Class relation graph (Figure 3).
    pub crg: ClassRelationGraph,
    /// Allocation-site object set.
    pub objects: ObjectSet,
    /// Object dependence graph (Figure 4).
    pub odg: ObjectDependenceGraph,
}

/// Everything produced by [`Distributor::distribute`].
#[derive(Debug)]
pub struct DistributionPlan {
    /// The analysis products.
    pub analysis: Analysis,
    /// The graph handed to the partitioner (built from ODG use edges).
    pub graph: Graph,
    /// The partitioning of the ODG.
    pub partitioning: Partitioning,
    /// The derived class-level placement.
    pub placement: ClassPlacement,
    /// One rewritten program copy per node.
    pub node_programs: Vec<RewrittenProgram>,
    /// Phase timings in milliseconds (Table 2).
    pub timings: PhaseTimings,
}

impl DistributionPlan {
    /// The per-node programs as plain [`Program`]s (what the runtime consumes).
    pub fn programs(&self) -> Vec<Program> {
        self.node_programs
            .iter()
            .map(|r| r.program.clone())
            .collect()
    }

    /// Executes the plan on the simulated cluster.
    ///
    /// [`Schedule::Auto`] resolves to the cooperative single-threaded scheduler
    /// ([`Schedule::Inline`]) for **every** placement: the continuation-based
    /// interpreter parks a node's frame stack while it awaits a remote response, so
    /// cyclic/re-entrant placements are scheduled on one OS thread just like acyclic
    /// ones. Thread-per-node execution survives as the [`Schedule::Threaded`]
    /// cross-check, and [`Schedule::Pool`] runs the same event-driven core on a
    /// work-stealing pool.
    pub fn execute(&self, cluster: &ClusterConfig) -> ExecutionReport {
        self.execute_profiled(cluster, Vec::new())
    }

    /// Executes the plan with per-node profiler sinks attached (`profilers[r]` goes
    /// to rank `r`; a shorter or empty vector leaves the remaining nodes
    /// unprofiled). The interpreter's call stack travels with each parked
    /// continuation, so sampling profilers see exact per-node stacks under every
    /// [`Schedule`] — cooperative and pooled distributed runs included.
    pub fn execute_profiled(
        &self,
        cluster: &ClusterConfig,
        profilers: Vec<Option<NodeProfiler>>,
    ) -> ExecutionReport {
        let programs = self.programs();
        let mut config = cluster.clone();
        if config.schedule == Schedule::Auto {
            config.schedule = Schedule::Inline;
        }
        run_distributed_profiled(&programs, &config, profilers)
    }

    /// `true` when no chain of inter-node dependences can revisit a node, i.e. the
    /// digraph over nodes induced by the CRG edges (an edge `home(A) -> home(B)` for
    /// every class relation `A -> B` crossing nodes) has no cycle. No longer a
    /// scheduling constraint (the continuation-based scheduler handles cycles);
    /// retained as a placement diagnostic — an acyclic placement is one whose remote
    /// calls can never re-enter a node that is awaiting a response.
    pub fn placement_digraph_is_acyclic(&self) -> bool {
        let n = self.placement.nparts.max(1);
        let mut adj = vec![vec![false; n]; n];
        for e in &self.analysis.crg.edges {
            let from = self.placement.home_of(e.from.class);
            let to = self.placement.home_of(e.to.class);
            if from != to && from < n && to < n {
                adj[from][to] = true;
            }
        }
        // Three-colour DFS over the (tiny) node digraph.
        const WHITE: u8 = 0;
        const GREY: u8 = 1;
        const BLACK: u8 = 2;
        fn has_cycle(v: usize, adj: &[Vec<bool>], colour: &mut [u8]) -> bool {
            colour[v] = GREY;
            for (u, &edge) in adj[v].iter().enumerate() {
                if !edge {
                    continue;
                }
                if colour[u] == GREY || (colour[u] == WHITE && has_cycle(u, adj, colour)) {
                    return true;
                }
            }
            colour[v] = BLACK;
            false
        }
        let mut colour = vec![WHITE; n];
        (0..n).all(|v| colour[v] != WHITE || !has_cycle(v, &adj, &mut colour))
    }

    /// Executes the plan and surfaces any execution failure as a [`PipelineError`]
    /// instead of an error field inside the report.
    pub fn try_execute(&self, cluster: &ClusterConfig) -> PipelineResult<ExecutionReport> {
        PipelineError::check_report(self.execute(cluster))
    }

    /// Prepares this plan for serving: the per-node programs are interned into
    /// shared layouts **once**, and every request the server admits instantiates
    /// its interpreters over them. Hand the result to [`run_serving`] — directly or
    /// via [`DistributionPlan::serve`] — possibly alongside apps prepared from
    /// other plans for a mixed workload.
    pub fn prepare_server(&self, cluster: &ClusterConfig) -> ServerApp {
        ServerApp::prepare(self.programs(), cluster.network.clone())
    }

    /// Serves `requests` root computations of this plan as a closed-loop server:
    /// up to `opts.concurrency` requests are in flight at once, each over its own
    /// request-scoped world (virtual clocks, channels, correlation ids), scheduled
    /// per `opts.schedule` (`Pool { threads }` for parallel serving, anything else
    /// drives the loop on the calling thread). The returned [`ServingReport`]
    /// carries one full per-request [`ExecutionReport`] per request plus the
    /// aggregate requests/sec and latency-percentile view; each request's virtual
    /// time, messages and final statics are byte-identical to
    /// [`DistributionPlan::execute`] on the same plan.
    pub fn serve(
        &self,
        cluster: &ClusterConfig,
        requests: usize,
        opts: &ServeOptions,
    ) -> ServingReport {
        let app = self.prepare_server(cluster);
        run_serving(std::slice::from_ref(&app), &vec![0; requests], opts)
    }

    /// Total number of program points rewritten across all node copies.
    pub fn total_rewritten_sites(&self) -> usize {
        self.node_programs
            .iter()
            .map(|r| r.stats.total_sites())
            .sum()
    }
}

/// Builds the partitioner input graph from an ODG: one vertex per ODG node with
/// its 3-constraint resource vector (each component floored at 1), one weighted
/// undirected edge per use relation. Shared by the offline pipeline
/// ([`Distributor::odg_graph`]) and the adaptive replanner, which calls it on a
/// re-weighted clone of the same ODG.
pub fn odg_partition_graph(odg: &ObjectDependenceGraph) -> Graph {
    let (weights, edges) = odg.partition_input();
    let mut gb = GraphBuilder::new(odg.node_count(), 3);
    for (i, w) in weights.iter().enumerate() {
        gb.set_weight(i, &w.as_array().map(|x| x.max(1)));
    }
    for (a, b, w) in edges {
        gb.add_edge(a, b, w);
    }
    gb.build()
}

/// The automatic distribution pipeline.
pub struct Distributor {
    /// Configuration.
    pub config: DistributorConfig,
}

impl Distributor {
    /// Creates a distributor with the given configuration.
    pub fn new(config: DistributorConfig) -> Self {
        Distributor { config }
    }

    /// Runs only the dependence analyses (Section 2).
    pub fn analyze(&self, program: &Program) -> Analysis {
        let call_graph = rapid_type_analysis(program);
        let crg = build_crg(program, &call_graph);
        let objects = collect_objects(program, &call_graph);
        let odg = build_odg(program, &crg, &objects, &self.config.weights);
        Analysis {
            call_graph,
            crg,
            objects,
            odg,
        }
    }

    /// Builds the partitioner input graph from an ODG.
    pub fn odg_graph(&self, odg: &ObjectDependenceGraph) -> Graph {
        odg_partition_graph(odg)
    }

    /// Compiles MiniJava-style source straight into a [`Program`], reporting parse
    /// failures through the unified error surface.
    pub fn compile(source: &str) -> PipelineResult<Program> {
        Ok(autodist_ir::frontend::compile_source(source)?)
    }

    /// Runs the full pipeline: analyse, partition, place, rewrite. Panics on invalid
    /// configurations or rewriter bugs; use [`Distributor::try_distribute`] to get a
    /// [`PipelineError`] instead.
    pub fn distribute(&self, program: &Program) -> DistributionPlan {
        self.try_distribute(program)
            .unwrap_or_else(|e| panic!("distribution pipeline failed: {e}"))
    }

    /// Runs the full pipeline, reporting failures from any phase through the shared
    /// [`PipelineError`] surface.
    pub fn try_distribute(&self, program: &Program) -> PipelineResult<DistributionPlan> {
        if self.config.nodes == 0 {
            return Err(PipelineError::Config(
                "cannot distribute over zero nodes".to_string(),
            ));
        }
        if self.config.balance_tolerance.is_nan() || self.config.balance_tolerance < 0.0 {
            return Err(PipelineError::Config(format!(
                "balance tolerance must be non-negative, got {}",
                self.config.balance_tolerance
            )));
        }
        // Phase 1: CRG construction (includes RTA, mirroring the paper's breakdown).
        let t0 = Instant::now();
        let call_graph = rapid_type_analysis(program);
        let crg = build_crg(program, &call_graph);
        let crg_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Phase 2: ODG construction.
        let t1 = Instant::now();
        let objects = collect_objects(program, &call_graph);
        let odg = build_odg(program, &crg, &objects, &self.config.weights);
        let odg_ms = t1.elapsed().as_secs_f64() * 1e3;

        let analysis = Analysis {
            call_graph,
            crg,
            objects,
            odg,
        };

        // Phase 3: graph partitioning.
        let t2 = Instant::now();
        let graph = self.odg_graph(&analysis.odg);
        let part_cfg = PartitionConfig {
            nparts: self.config.nodes,
            method: self.config.method,
            balance_tolerance: self.config.balance_tolerance,
            seed: self.config.seed,
            ..Default::default()
        };
        let partitioning = partition(&graph, &part_cfg);
        if partitioning.assignment.len() != analysis.odg.node_count() {
            return Err(PipelineError::Partition(format!(
                "assignment covers {} of {} ODG nodes",
                partitioning.assignment.len(),
                analysis.odg.node_count()
            )));
        }
        let partition_ms = t2.elapsed().as_secs_f64() * 1e3;

        // Phase 4: code and communication generation.
        let t3 = Instant::now();
        let placement = ClassPlacement::from_odg_partition(program, &analysis.odg, &partitioning);
        let node_programs: Vec<RewrittenProgram> = (0..self.config.nodes)
            .map(|n| rewrite_for_node(program, &placement, n))
            .collect();
        if self.config.verify {
            for rp in &node_programs {
                verify_program(&rp.program).map_err(|errors| PipelineError::Verify {
                    node: Some(rp.node),
                    errors,
                })?;
            }
        }
        let rewrite_ms = t3.elapsed().as_secs_f64() * 1e3;

        Ok(DistributionPlan {
            analysis,
            graph,
            partitioning,
            placement,
            node_programs,
            timings: PhaseTimings {
                crg_ms,
                odg_ms,
                partition_ms,
                rewrite_ms,
            },
        })
    }

    /// Runs the sequential baseline (everything on the slow node), as the paper does
    /// for its Figure 11 comparison.
    pub fn run_baseline(&self, program: &Program) -> ExecutionReport {
        run_centralized(program, 1.0)
    }

    /// Runs the sequential baseline, surfacing interpreter faults as [`PipelineError`].
    pub fn try_run_baseline(&self, program: &Program) -> PipelineResult<ExecutionReport> {
        PipelineError::check_report(self.run_baseline(program))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autodist_runtime::NetworkConfig;
    use autodist_workloads as workloads;

    #[test]
    fn pipeline_produces_a_complete_plan_for_the_bank_example() {
        let w = workloads::bank(20);
        let distributor = Distributor::new(DistributorConfig::default());
        let plan = distributor.distribute(&w.program);
        assert!(plan.analysis.crg.node_count() >= 3);
        assert!(plan.analysis.odg.node_count() >= 4);
        assert_eq!(plan.node_programs.len(), 2);
        assert_eq!(
            plan.partitioning.assignment.len(),
            plan.analysis.odg.node_count()
        );
        assert!(plan.timings.total_ms() > 0.0);
        // Node 0 must host the entry class.
        let main = w.program.class_by_name("Main").unwrap();
        assert_eq!(plan.placement.home_of(main), 0);
    }

    #[test]
    fn distributed_execution_of_plan_matches_baseline_checksum() {
        let w = workloads::bank(15);
        let distributor = Distributor::new(DistributorConfig::default());
        let baseline = distributor.run_baseline(&w.program);
        let plan = distributor.distribute(&w.program);
        let report = plan.execute(&ClusterConfig::paper_testbed());
        assert!(report.is_ok(), "{:?}", report.error);
        assert_eq!(
            report.final_statics.get("Main::checksum"),
            baseline.final_statics.get("Main::checksum"),
            "distribution preserves program behaviour"
        );
    }

    #[test]
    fn naive_and_multilevel_partitioning_both_work_end_to_end() {
        let w = workloads::db_bench(30, 60);
        for method in [Method::RoundRobin, Method::Multilevel] {
            let cfg = DistributorConfig {
                method,
                ..Default::default()
            };
            let distributor = Distributor::new(cfg);
            let plan = distributor.distribute(&w.program);
            let report = plan.execute(&ClusterConfig::paper_testbed());
            assert!(report.is_ok(), "{method:?}: {:?}", report.error);
        }
    }

    #[test]
    fn multilevel_cut_is_no_worse_than_naive_on_every_table1_workload() {
        for w in workloads::table1_workloads(1) {
            let ml = Distributor::new(DistributorConfig::default()).distribute(&w.program);
            let rr = Distributor::new(DistributorConfig {
                method: Method::RoundRobin,
                ..Default::default()
            })
            .distribute(&w.program);
            assert!(
                ml.partitioning.edgecut <= rr.partitioning.edgecut,
                "{}: multilevel {} vs naive {}",
                w.name,
                ml.partitioning.edgecut,
                rr.partitioning.edgecut
            );
        }
    }

    #[test]
    fn try_distribute_rejects_invalid_configurations() {
        let w = workloads::bank(5);
        for (config, needle) in [
            (
                DistributorConfig {
                    nodes: 0,
                    ..Default::default()
                },
                "zero nodes",
            ),
            (
                DistributorConfig {
                    balance_tolerance: f64::NAN,
                    ..Default::default()
                },
                "balance tolerance",
            ),
        ] {
            match Distributor::new(config).try_distribute(&w.program) {
                Err(PipelineError::Config(m)) => assert!(m.contains(needle), "{m}"),
                other => panic!("expected config error, got {other:?}"),
            }
        }
    }

    #[test]
    fn fallible_pipeline_matches_the_infallible_one() {
        let w = workloads::bank(10);
        let distributor = Distributor::new(DistributorConfig::default());
        let plan = distributor.try_distribute(&w.program).expect("pipeline");
        let report = plan
            .try_execute(&ClusterConfig::paper_testbed())
            .expect("execution");
        let baseline = distributor.try_run_baseline(&w.program).expect("baseline");
        assert_eq!(
            report.final_statics.get("Main::checksum"),
            baseline.final_statics.get("Main::checksum")
        );
    }

    #[test]
    fn runtime_faults_flow_through_the_unified_surface() {
        let src = "class Main {
            static int checksum;
            static void main() { int a = 1; int b = 0; checksum = a / b; }
        }";
        let program = Distributor::compile(src).expect("compiles");
        let distributor = Distributor::new(DistributorConfig::default());
        match distributor.try_run_baseline(&program) {
            Err(e @ PipelineError::Runtime(_)) => {
                assert_eq!(e.phase(), Phase::Runtime);
                assert!(e.to_string().contains("division by zero"), "{e}");
            }
            other => panic!("expected runtime error, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_flow_through_the_unified_surface() {
        match Distributor::compile("class Main { static void main() { int = ; } }") {
            Err(e @ PipelineError::Parse(_)) => assert_eq!(e.phase(), Phase::Frontend),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn serving_a_plan_matches_single_execution_per_request() {
        let w = workloads::bank(10);
        let distributor = Distributor::new(DistributorConfig::default());
        let plan = distributor.distribute(&w.program);
        let cluster = ClusterConfig::paper_testbed();
        let single = plan.execute(&cluster);
        assert!(single.is_ok(), "{:?}", single.error);
        let serving = plan.serve(
            &cluster,
            6,
            &ServeOptions {
                concurrency: 4,
                schedule: Schedule::Pool { threads: 2 },
                ..ServeOptions::default()
            },
        );
        assert!(serving.is_ok());
        assert_eq!(serving.requests.len(), 6);
        assert!(serving.requests_per_sec() > 0.0);
        for req in &serving.requests {
            assert_eq!(req.report.virtual_time_us, single.virtual_time_us);
            assert_eq!(
                req.report.final_statics.get("Main::checksum"),
                single.final_statics.get("Main::checksum")
            );
        }
    }

    #[test]
    fn four_node_distribution_still_correct() {
        let w = workloads::bank(12);
        let cfg = DistributorConfig {
            nodes: 4,
            ..Default::default()
        };
        let distributor = Distributor::new(cfg);
        let baseline = distributor.run_baseline(&w.program);
        let plan = distributor.distribute(&w.program);
        let cluster = ClusterConfig {
            network: NetworkConfig {
                node_speeds: vec![1.0, 2.1, 1.5, 1.5],
                ..NetworkConfig::paper_testbed()
            },
            ..Default::default()
        };
        let report = plan.execute(&cluster);
        assert!(report.is_ok(), "{:?}", report.error);
        assert_eq!(
            report.final_statics.get("Main::checksum"),
            baseline.final_statics.get("Main::checksum")
        );
    }
}
