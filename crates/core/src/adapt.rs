//! The pipeline side of adaptive placement: [`PlanReplanner`] implements the
//! runtime's [`Replanner`] hook by re-running phases 3–4 of the distribution
//! pipeline (partition + rewrite) on live serving profiles.
//!
//! The runtime's epoch controller (`autodist_runtime::adapt`) knows *when* to
//! repartition — every N completed requests, or early on comm-volume drift — but
//! not *how*: that is this module. Per served app the planner keeps the static
//! analysis products (the original program and its ODG — the expensive RTA/CRG
//! phases are **not** re-run), a shared [`AggregateProfile`] its per-request
//! [`AggregateSink`]s tally into, and the currently installed class placement.
//! On `replan` it:
//!
//! 1. drains the aggregate profile (declining if no instrumentation arrived),
//! 2. clones the ODG and [`reweigh_odg`]s it — live per-class invocation counts
//!    become node CPU weights, and use edges into hot classes become expensive
//!    to cut,
//! 3. warm-starts the multilevel partitioner with the incumbent assignment
//!    ([`repartition`]), under a **relaxed balance tolerance**: splitting a hot
//!    call chain across nodes to balance CPU maximises the very round-trips
//!    adaptation is meant to remove, so the replanner is comm-first and leaves
//!    load balance to the partitioner's `min_parallelism` floor,
//! 4. derives the class placement and declines unless it strictly improves the
//!    live-weighted cut of the incumbent — the installed placement can only get
//!    better, never churn sideways,
//! 5. rewrites the per-node program copies and prepares them as a fresh
//!    [`ServerApp`] for the controller to swap in.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::sync::Mutex;

use autodist_analysis::odg::{ObjectDependenceGraph, OdgEdgeKind};
use autodist_analysis::weights::{reweigh_odg, ProfileData};
use autodist_codegen::rewrite::{rewrite_for_node, ClassPlacement};
use autodist_ir::program::{ClassId, Program};
use autodist_partition::{repartition, Method, PartitionConfig};
use autodist_profiler::{aggregate_handle, method_table, AggregateHandle, AggregateSink};
use autodist_runtime::adapt::{EpochProfile, Replanner};
use autodist_runtime::cluster::ClusterConfig;
use autodist_runtime::interp::ProfilerSink;
use autodist_runtime::net::NetworkConfig;
use autodist_runtime::serve::ServerApp;

use crate::{DistributionPlan, DistributorConfig};

/// Everything the planner keeps per served app.
struct AppState {
    /// The original (pre-rewrite) program; placements are rewritten from it.
    program: Program,
    /// The statically analysed ODG — shape reused, weights replaced per epoch.
    odg: ObjectDependenceGraph,
    /// Partitioner configuration for replans (comm-first, see module docs).
    part_cfg: PartitionConfig,
    /// Cost model the prepared server apps carry.
    network: NetworkConfig,
    /// Method → owning class table for the profiling sinks.
    method_class: Arc<Vec<ClassId>>,
    /// Original class count (sinks ignore rewrite-appended synthetic classes).
    class_count: usize,
    /// The live profile all of this app's sinks tally into.
    profile: AggregateHandle,
    /// The currently installed class placement (starts as the plan's).
    home: Mutex<BTreeMap<ClassId, usize>>,
    /// The static plan's own estimate of cut use-edge weight — the baseline the
    /// drift trigger compares observed traffic against, normalised per request.
    predicted_cut: f64,
}

/// Live-weighted cut of `home`: total weight of ODG use edges whose endpoint
/// classes live on different nodes. The replanner's improvement metric.
fn placement_cut(odg: &ObjectDependenceGraph, home: &BTreeMap<ClassId, usize>) -> u64 {
    let home_of = |c: ClassId| home.get(&c).copied().unwrap_or(0);
    odg.edges
        .iter()
        .filter(|e| e.kind == OdgEdgeKind::Use)
        .filter(|e| {
            home_of(odg.nodes[e.from.0 as usize].class())
                != home_of(odg.nodes[e.to.0 as usize].class())
        })
        .map(|e| e.weight)
        .sum()
}

/// [`Replanner`] over one or more [`DistributionPlan`]s: the object to hand to
/// `AdaptOptions::new` when serving those plans. Apps must be registered in the
/// same order as the `apps` slice passed to `run_serving` — the epoch
/// controller addresses the planner by app index.
#[derive(Default)]
pub struct PlanReplanner {
    apps: Vec<AppState>,
}

impl PlanReplanner {
    /// An empty planner; register each served plan with
    /// [`add_plan`](Self::add_plan) in serving-app order.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the app at the next index: `plan` must be the plan whose
    /// `prepare_server` output sits at the same position in `run_serving`'s
    /// `apps`, `program` the original program it distributed, and `config` the
    /// distributor configuration that produced it. Returns the app index.
    pub fn add_plan(
        &mut self,
        config: &DistributorConfig,
        program: &Program,
        plan: &DistributionPlan,
        cluster: &ClusterConfig,
    ) -> usize {
        let part_cfg = PartitionConfig {
            nparts: config.nodes,
            // Replans always use the multilevel partitioner (warm-started), even
            // when the seed plan was naive: the naive methods ignore weights
            // entirely, so they cannot act on a profile.
            method: Method::Multilevel,
            // Comm-first: live CPU weights concentrate on the hot chain, and a
            // tight balance constraint would force that chain apart — paying
            // round-trips to balance a load the cluster can absorb. Relax to at
            // least 100% imbalance; `min_parallelism` still guarantees a real
            // distribution.
            balance_tolerance: config.balance_tolerance.max(1.0),
            seed: config.seed,
            ..PartitionConfig::default()
        };
        let home = plan.placement.home.clone();
        let predicted_cut = placement_cut(&plan.analysis.odg, &home) as f64;
        self.apps.push(AppState {
            program: program.clone(),
            odg: plan.analysis.odg.clone(),
            part_cfg,
            network: cluster.network.clone(),
            method_class: method_table(program),
            class_count: program.class_count(),
            profile: aggregate_handle(),
            home: Mutex::new(home),
            predicted_cut,
        });
        self.apps.len() - 1
    }

    /// The currently installed home node of `class` for app `app` (diagnostics
    /// and tests).
    pub fn current_home(&self, app: usize, class: ClassId) -> usize {
        self.apps[app]
            .home
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&class)
            .copied()
            .unwrap_or(0)
    }
}

impl Replanner for PlanReplanner {
    fn replan(&self, profile: &EpochProfile) -> Option<ServerApp> {
        let app = self.apps.get(profile.app)?;
        let live = app.profile.lock().take();
        if live.is_empty() {
            return None;
        }
        let data = ProfileData {
            alloc_bytes: live.alloc_bytes,
            invocation_counts: live.invocations,
        };
        let mut odg = app.odg.clone();
        reweigh_odg(&mut odg, &data);
        let graph = crate::odg_partition_graph(&odg);
        let incumbent = app.home.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let hint: Vec<usize> = odg
            .nodes
            .iter()
            .map(|n| incumbent.get(&n.class()).copied().unwrap_or(0))
            .collect();
        let partitioning = repartition(&graph, &app.part_cfg, &hint);
        let placement = ClassPlacement::from_odg_partition(&app.program, &odg, &partitioning);
        // Install only strict improvements of the *live-weighted* cut: a
        // balanced profile, or one the incumbent already serves optimally,
        // changes nothing (and the controller reports no swap).
        if placement.home == incumbent
            || placement_cut(&odg, &placement.home) >= placement_cut(&odg, &incumbent)
        {
            return None;
        }
        let programs: Vec<Program> = (0..app.part_cfg.nparts.max(1))
            .map(|n| rewrite_for_node(&app.program, &placement, n).program)
            .collect();
        let server = ServerApp::prepare(programs, app.network.clone());
        *app.home.lock().unwrap_or_else(|e| e.into_inner()) = placement.home;
        Some(server)
    }

    fn profiler(&self, app: usize, _rank: usize) -> Option<(Box<dyn ProfilerSink>, u64)> {
        let state = self.apps.get(app)?;
        let sink = AggregateSink::new(
            Arc::clone(&state.method_class),
            state.class_count,
            Arc::clone(&state.profile),
        );
        // Instrumentation-only: per-class tallies need exact enter counts, and
        // the sampling machinery would add nothing.
        Some((Box::new(sink), 0))
    }

    fn predicted_bytes_per_request(&self, app: usize) -> Option<f64> {
        // The ODG's use-edge weights estimate communication volume, so the cut
        // weight under the installed placement is the plan's own per-request
        // traffic prediction (in model units; the drift factor absorbs the
        // scale difference to observed wire bytes).
        self.apps.get(app).map(|a| a.predicted_cut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Distributor, DistributorConfig, ServeOptions};
    use autodist_runtime::adapt::AdaptOptions;
    use autodist_runtime::cluster::{ClusterConfig, Schedule};
    use autodist_runtime::serve::run_serving;
    use autodist_workloads::GenConfig;

    /// An affinity-skewed generated workload whose hot chain the static Uniform
    /// plan splits across nodes (same shape as the `adaptive_serving` bench).
    fn skewed() -> autodist_workloads::GeneratedWorkload {
        autodist_workloads::generated(&GenConfig {
            width: 4,
            depth: 3,
            fan_out: 2,
            affinity_skew: 8.0,
            ..GenConfig::default()
        })
    }

    #[test]
    fn replanner_coalesces_the_hot_chain_and_drift_triggers_early() {
        let g = skewed();
        let config = DistributorConfig::default();
        let distributor = Distributor::new(config.clone());
        let plan = distributor.distribute(&g.workload.program);
        let cluster = ClusterConfig::paper_testbed();
        let solo = plan.execute(&cluster);
        assert!(
            solo.total_messages() > 0,
            "the static plan must actually split the workload"
        );
        let mut planner = PlanReplanner::new();
        assert_eq!(
            planner.add_plan(&config, &g.workload.program, &plan, &cluster),
            0
        );
        let planner = Arc::new(planner);
        // Huge epoch, tight drift bound: only the drift trigger can fire the
        // swap. The observed wire bytes of even a few requests dwarf the model's
        // cut estimate, so adaptation kicks in well before request 1000.
        let report = run_serving(
            std::slice::from_ref(&plan.prepare_server(&cluster)),
            &[0usize; 24],
            &ServeOptions {
                concurrency: 1,
                schedule: Schedule::Inline,
                adapt: Some(
                    AdaptOptions::new(planner.clone() as Arc<dyn Replanner>)
                        .with_epoch(1000)
                        .with_drift(1.0, 4),
                ),
                ..ServeOptions::default()
            },
        );
        assert!(report.is_ok());
        assert_eq!(report.placement_swaps, 1, "drift fires exactly one replan");
        let last = report.requests.last().unwrap();
        assert!(
            last.report.total_messages() < solo.total_messages(),
            "post-swap requests message less: {} vs static {}",
            last.report.total_messages(),
            solo.total_messages()
        );
        // The hot chain funnels into the level-1 class 0; after the replan it
        // lives with Main on node 0.
        let hot = g.workload.program.class_by_name("G1_0").unwrap();
        assert_eq!(planner.current_home(0, hot), 0);
    }

    #[test]
    fn balanced_placement_declines_to_replan() {
        // Two classes on two nodes: min_parallelism pins one class per node no
        // matter the weights, so the live profile cannot improve the cut and the
        // planner must decline — reports stay byte-identical throughout.
        let src = r#"
            class Worker { int bounce(int x) { return x * 2 + 1; } }
            class Main {
                static int checksum;
                static void main() {
                    Worker w = new Worker();
                    int acc = 0;
                    int i = 0;
                    while (i < 10) { acc = acc + w.bounce(i); i = i + 1; }
                    checksum = acc;
                }
            }
        "#;
        let program = Distributor::compile(src).unwrap();
        let config = DistributorConfig::default();
        let distributor = Distributor::new(config.clone());
        let plan = distributor.distribute(&program);
        let cluster = ClusterConfig::paper_testbed();
        let solo = plan.execute(&cluster);
        let mut planner = PlanReplanner::new();
        planner.add_plan(&config, &program, &plan, &cluster);
        let report = run_serving(
            std::slice::from_ref(&plan.prepare_server(&cluster)),
            &[0usize; 12],
            &ServeOptions {
                concurrency: 1,
                schedule: Schedule::Inline,
                adapt: Some(AdaptOptions::new(Arc::new(planner)).with_epoch(4)),
                ..ServeOptions::default()
            },
        );
        assert!(report.is_ok());
        assert_eq!(report.placement_swaps, 0, "nothing to improve, no swap");
        for req in &report.requests {
            assert_eq!(req.report.virtual_time_us, solo.virtual_time_us);
            assert_eq!(req.report.total_messages(), solo.total_messages());
            assert_eq!(req.report.total_bytes(), solo.total_bytes());
        }
    }

    #[test]
    fn replan_without_any_profile_declines() {
        let g = skewed();
        let config = DistributorConfig::default();
        let plan = Distributor::new(config.clone()).distribute(&g.workload.program);
        let cluster = ClusterConfig::paper_testbed();
        let mut planner = PlanReplanner::new();
        planner.add_plan(&config, &g.workload.program, &plan, &cluster);
        // No sinks ever ran: the aggregate is empty and the planner declines.
        let none = planner.replan(&EpochProfile {
            app: 0,
            requests: 16,
            messages: 128,
            bytes: 4096,
        });
        assert!(none.is_none());
        // Unknown app indices are not an error either.
        assert!(planner.profiler(7, 0).is_none());
        assert!(planner.predicted_bytes_per_request(7).is_none());
        assert!(planner.predicted_bytes_per_request(0).unwrap() > 0.0);
    }
}
