//! The cluster driver: runs a program centralized or distributed and reports timings.
//!
//! Node 0 plays the paper's launch node (the 800 MHz machine where the user starts the
//! program), runs the Execution Starter and finally broadcasts a shutdown; every other
//! node answers `NEW`/`DEPENDENCE` requests. Each node keeps a virtual clock fed by the
//! instruction and network cost model, so the reported *virtual time* reproduces the
//! shape of the paper's Figure 11 even though everything actually executes on one
//! machine; wall-clock time is reported as well.
//!
//! Two schedulers are available (see [`Schedule`]):
//!
//! * **Cooperative** ([`Schedule::Inline`]) — all virtual nodes are multiplexed onto a
//!   single OS thread. Because the paper's communication style is synchronous
//!   request/response, exactly one node is runnable at any moment; a node waiting for
//!   a response runs its callee's message loop inline instead of parking a thread.
//!   This removes every context switch from the simulation and makes sweeps over
//!   hundreds of virtual nodes practical. It requires the placement's inter-node
//!   dependence digraph to be acyclic (no callbacks into a node that is awaiting a
//!   response) — the pipeline checks this from the class relation graph and falls back
//!   otherwise.
//! * **Threaded** ([`Schedule::Threaded`]) — the original thread-per-node execution,
//!   which supports arbitrary re-entrant placements.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use autodist_ir::program::Program;

use crate::interp::{ClusterPump, DistState, Interp, ProfilerSink};
use crate::net::NetworkConfig;
use crate::services::{ExecutionStarter, MessageExchange, MpiService};
use crate::value::Value;

/// How the simulated nodes are scheduled onto OS threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Schedule {
    /// Defer the choice to the caller's knowledge of the placement: `run_distributed`
    /// itself resolves `Auto` to [`Schedule::Threaded`] (always safe); the pipeline's
    /// `DistributionPlan::execute` resolves it to [`Schedule::Inline`] when the
    /// placement's inter-node dependence digraph is acyclic.
    #[default]
    Auto,
    /// Cooperative single-threaded scheduling: virtual nodes are multiplexed on one
    /// OS thread; a waiting node runs its callee inline. Requires an acyclic
    /// inter-node dependence digraph.
    Inline,
    /// One OS thread per node (the pre-pool behaviour; handles re-entrant placements).
    Threaded,
}

/// Configuration of a distributed run.
#[derive(Clone, Debug, Default)]
pub struct ClusterConfig {
    /// The network / CPU cost model. The number of nodes is `network.nodes()`.
    pub network: NetworkConfig,
    /// Node-to-thread scheduling policy.
    pub schedule: Schedule,
}

impl ClusterConfig {
    /// The paper's two-node testbed.
    pub fn paper_testbed() -> Self {
        ClusterConfig {
            network: NetworkConfig::paper_testbed(),
            schedule: Schedule::Auto,
        }
    }
}

/// Per-node execution statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeStats {
    /// Node rank.
    pub node: usize,
    /// Instructions interpreted.
    pub instructions: u64,
    /// Objects/arrays allocated.
    pub allocations: u64,
    /// Bytes allocated.
    pub allocated_bytes: u64,
    /// Method invocations.
    pub method_invocations: u64,
    /// Remote requests issued by this node.
    pub remote_requests: u64,
    /// Requests served for other nodes.
    pub requests_served: u64,
    /// Messages sent.
    pub messages_sent: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Final virtual clock of the node in microseconds.
    pub clock_us: f64,
}

/// The result of a (centralized or distributed) execution.
#[derive(Clone, Debug, Default)]
pub struct ExecutionReport {
    /// Virtual execution time in microseconds (the launch node's final clock).
    pub virtual_time_us: f64,
    /// Wall-clock time of the simulation in milliseconds.
    pub wall_time_ms: f64,
    /// Per-node statistics (a single entry for centralized runs).
    pub per_node: Vec<NodeStats>,
    /// Final values of static fields on the launch node (used to check that the
    /// distributed execution computes the same answers as the centralized one).
    pub final_statics: BTreeMap<String, Value>,
    /// The error message if execution failed.
    pub error: Option<String>,
}

impl ExecutionReport {
    /// Total messages exchanged.
    pub fn total_messages(&self) -> u64 {
        self.per_node.iter().map(|n| n.messages_sent).sum()
    }

    /// Total bytes exchanged.
    pub fn total_bytes(&self) -> u64 {
        self.per_node.iter().map(|n| n.bytes_sent).sum()
    }

    /// Speedup of `self` relative to `baseline` in virtual time (values above 1.0 mean
    /// `self` is faster). This is the quantity plotted in Figure 11 (as a percentage).
    pub fn speedup_over(&self, baseline: &ExecutionReport) -> f64 {
        if self.virtual_time_us <= 0.0 {
            return 0.0;
        }
        baseline.virtual_time_us / self.virtual_time_us
    }

    /// `true` if execution completed without an error.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

fn stats_of(interp: &Interp<'_>, node: usize) -> NodeStats {
    let (messages_sent, bytes_sent) = interp
        .dist
        .as_ref()
        .map(|d| (d.endpoint.messages_sent, d.endpoint.bytes_sent))
        .unwrap_or((0, 0));
    NodeStats {
        node,
        instructions: interp.counters.instructions,
        allocations: interp.counters.allocations,
        allocated_bytes: interp.counters.allocated_bytes,
        method_invocations: interp.counters.method_invocations,
        remote_requests: interp.counters.remote_requests,
        requests_served: interp.counters.requests_served,
        messages_sent,
        bytes_sent,
        clock_us: interp.clock_us,
    }
}

/// Runs `program` on a single node with the given relative CPU speed (1.0 = the paper's
/// 800 MHz computation node). This is the sequential baseline of Figure 11.
pub fn run_centralized(program: &Program, speed: f64) -> ExecutionReport {
    run_centralized_profiled(program, speed, None, 0)
}

/// Centralized run with an optional profiler sink attached (used by the Table 3
/// harness). `sample_interval` is in interpreted instructions; 0 disables sampling.
pub fn run_centralized_profiled(
    program: &Program,
    speed: f64,
    profiler: Option<Box<dyn ProfilerSink>>,
    sample_interval: u64,
) -> ExecutionReport {
    let start = Instant::now();
    let mut interp = Interp::new(program).with_speed(speed);
    interp.instr_cost_us = NetworkConfig::paper_testbed().instr_cost_us;
    if let Some(p) = profiler {
        interp = interp.with_profiler(p, sample_interval);
    }
    let result = ExecutionStarter::start(&mut interp);
    let wall = start.elapsed();
    ExecutionReport {
        virtual_time_us: interp.clock_us,
        wall_time_ms: wall.as_secs_f64() * 1e3,
        per_node: vec![stats_of(&interp, 0)],
        final_statics: interp.statics_snapshot(),
        error: result.err().map(|e| e.to_string()),
    }
}

/// Runs the per-node program copies distributed over `config.network.nodes()` nodes.
///
/// `programs[r]` is the (rewritten) program copy executed by rank `r`; `programs.len()`
/// must equal the node count of the network configuration. [`Schedule::Auto`] resolves
/// to the always-safe threaded scheduler here; callers that know the placement's
/// dependence digraph is acyclic (the pipeline does) should request
/// [`Schedule::Inline`] to get the cooperative scheduler.
pub fn run_distributed(programs: &[Program], config: &ClusterConfig) -> ExecutionReport {
    let nodes = programs.len();
    assert!(nodes >= 1, "at least one node required");
    assert_eq!(
        nodes,
        config.network.nodes(),
        "one program copy per configured node"
    );
    match config.schedule {
        Schedule::Inline => run_distributed_inline(programs, config),
        Schedule::Auto | Schedule::Threaded => run_distributed_threaded(programs, config),
    }
}

/// One virtual node held by the cooperative scheduler: its interpreter while idle, or
/// its final outcome once it has processed the shutdown broadcast.
enum CoopSlot<'p> {
    Idle(Box<Interp<'p>>),
    Done(NodeStats),
    /// Checked out by a (possibly nested) `pump` frame, or never populated (rank 0).
    Empty,
}

/// The cooperative scheduler: all virtual nodes multiplexed onto the calling thread.
/// `pump(rank)` — invoked by an interpreter waiting for a response — checks the callee
/// out of its slot, drains its mailbox (running nested round trips recursively), and
/// checks it back in.
struct CoopCluster<'p> {
    slots: Vec<Mutex<CoopSlot<'p>>>,
}

impl<'p> CoopCluster<'p> {
    fn new(nodes: usize) -> Self {
        CoopCluster {
            slots: (0..nodes).map(|_| Mutex::new(CoopSlot::Empty)).collect(),
        }
    }
}

impl ClusterPump for CoopCluster<'_> {
    fn pump(&self, rank: usize) -> bool {
        let Some(slot) = self.slots.get(rank) else {
            return false;
        };
        let taken = {
            let mut guard = slot.lock().expect("coop slot poisoned");
            match std::mem::replace(&mut *guard, CoopSlot::Empty) {
                CoopSlot::Idle(interp) => interp,
                other => {
                    *guard = other;
                    return false;
                }
            }
        };
        let mut interp = taken;
        let shutdown = interp.drain_mailbox();
        let mut guard = slot.lock().expect("coop slot poisoned");
        *guard = if shutdown {
            // Dropping the interpreter here releases its Arc back-reference to the
            // scheduler, so the cluster is freed when the run ends.
            CoopSlot::Done(stats_of(&interp, rank))
        } else {
            CoopSlot::Idle(interp)
        };
        true
    }
}

/// Cooperative single-threaded distributed execution (see [`Schedule::Inline`]).
fn run_distributed_inline(programs: &[Program], config: &ClusterConfig) -> ExecutionReport {
    let nodes = programs.len();
    let start = Instant::now();
    let mut mpi = MpiService::init(nodes, config.network.clone());
    let cluster = Arc::new(CoopCluster::new(nodes));
    for (rank, program) in programs.iter().enumerate().skip(1) {
        let pump: Arc<dyn ClusterPump + '_> = cluster.clone();
        let interp =
            Interp::new(program).with_dist(DistState::new(mpi.endpoint(rank)).with_pump(pump));
        *cluster.slots[rank].lock().expect("coop slot") = CoopSlot::Idle(Box::new(interp));
    }
    let pump: Arc<dyn ClusterPump + '_> = cluster.clone();
    let mut driver =
        Interp::new(&programs[0]).with_dist(DistState::new(mpi.endpoint(0)).with_pump(pump));

    // The whole simulation runs on one dedicated thread with a deep stack: nested
    // cross-node call chains unwind on a single stack under cooperative scheduling.
    let driver_cluster = cluster.clone();
    let (stats0, statics0, error) = std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("coop-cluster".to_string())
            .stack_size(64 * 1024 * 1024)
            .spawn_scoped(scope, move || {
                let error = ExecutionStarter::start(&mut driver)
                    .err()
                    .map(|e| e.to_string());
                // Execution ends when main returns on the launch node; the shutdown
                // broadcast is bookkeeping and not part of the measured execution.
                let stats = stats_of(&driver, 0);
                let statics = driver.statics_snapshot();
                MessageExchange::broadcast_shutdown(&mut driver);
                for rank in 1..nodes {
                    driver_cluster.pump(rank);
                }
                (stats, statics, error)
            })
            .expect("spawn cooperative cluster thread")
            .join()
            .expect("cooperative cluster thread panicked")
    });

    let wall = start.elapsed();
    let mut per_node = vec![stats0];
    let final_statics = statics0;
    for rank in 1..nodes {
        let slot = std::mem::replace(
            &mut *cluster.slots[rank].lock().expect("coop slot"),
            CoopSlot::Empty,
        );
        match slot {
            CoopSlot::Done(stats) => per_node.push(stats),
            CoopSlot::Idle(interp) => per_node.push(stats_of(&interp, rank)),
            CoopSlot::Empty => per_node.push(NodeStats {
                node: rank,
                ..NodeStats::default()
            }),
        }
    }
    // The distributed execution ends when the launch node finishes `main`; its clock
    // has already absorbed every synchronous round trip (the communication style is
    // request/response), so it is the execution time the paper measures.
    let virtual_time_us = per_node.first().map(|s| s.clock_us).unwrap_or(0.0);
    ExecutionReport {
        virtual_time_us,
        wall_time_ms: wall.as_secs_f64() * 1e3,
        per_node,
        final_statics,
        error,
    }
}

/// Thread-per-node distributed execution (see [`Schedule::Threaded`]).
fn run_distributed_threaded(programs: &[Program], config: &ClusterConfig) -> ExecutionReport {
    let nodes = programs.len();
    let start = Instant::now();
    let mut mpi = MpiService::init(nodes, config.network.clone());

    let mut endpoints: Vec<_> = (0..nodes).map(|r| Some(mpi.endpoint(r))).collect();

    let results: Vec<(NodeStats, BTreeMap<String, Value>, Option<String>)> =
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (rank, program) in programs.iter().enumerate() {
                let endpoint = endpoints[rank].take().expect("endpoint");
                let builder = std::thread::Builder::new()
                    .name(format!("node-{rank}"))
                    .stack_size(32 * 1024 * 1024);
                let handle = builder
                    .spawn_scoped(scope, move || {
                        let mut interp = Interp::new(program).with_dist(DistState::new(endpoint));
                        let mut error = None;
                        let stats;
                        if rank == 0 {
                            if let Err(e) = ExecutionStarter::start(&mut interp) {
                                error = Some(e.to_string());
                            }
                            // Execution ends when main returns on the launch node; the
                            // shutdown broadcast is bookkeeping and not part of the
                            // measured execution.
                            stats = stats_of(&interp, rank);
                            MessageExchange::broadcast_shutdown(&mut interp);
                        } else {
                            MessageExchange::serve(&mut interp);
                            stats = stats_of(&interp, rank);
                        }
                        (stats, interp.statics_snapshot(), error)
                    })
                    .expect("spawn node thread");
                handles.push(handle);
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("node thread panicked"))
                .collect()
        });

    let wall = start.elapsed();
    let error = results.iter().find_map(|(_, _, e)| e.clone());
    let final_statics = results
        .first()
        .map(|(_, s, _)| s.clone())
        .unwrap_or_default();
    // The distributed execution ends when the launch node finishes `main`; its clock
    // has already absorbed every synchronous round trip (the communication style is
    // request/response), so it is the execution time the paper measures.
    let virtual_time_us = results.first().map(|(s, _, _)| s.clock_us).unwrap_or(0.0);
    ExecutionReport {
        virtual_time_us,
        wall_time_ms: wall.as_secs_f64() * 1e3,
        per_node: results.into_iter().map(|(s, _, _)| s).collect(),
        final_statics,
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autodist_codegen::rewrite::{rewrite_for_node, ClassPlacement};
    use autodist_ir::frontend::compile_source;
    use std::collections::BTreeMap as Map;

    const BANK_SRC: &str = r#"
        class Account {
            int id;
            int savings;
            Account(int id, int savings) { this.id = id; this.savings = savings; }
            int getSavings() { return this.savings; }
            void setBalance(int b) { this.savings = b; }
        }
        class Bank {
            Account[] accounts;
            int count;
            Bank(int n) {
                this.accounts = new Account[100];
                this.count = 0;
                int i = 0;
                while (i < n) {
                    this.openAccount(new Account(i, 1000));
                    i = i + 1;
                }
            }
            void openAccount(Account a) {
                this.accounts[this.count] = a;
                this.count = this.count + 1;
            }
            Account getCustomer(int id) { return this.accounts[id]; }
            int totalSavings() {
                int t = 0;
                int i = 0;
                while (i < this.count) {
                    t = t + this.accounts[i].getSavings();
                    i = i + 1;
                }
                return t;
            }
        }
        class Main {
            static int result;
            static void main() {
                Bank merchants = new Bank(10);
                Account a4 = new Account(100, 50000);
                merchants.openAccount(a4);
                Account a = merchants.getCustomer(2);
                a.setBalance(a.getSavings() - 900);
                result = merchants.totalSavings();
            }
        }
    "#;

    fn split_placement(p: &autodist_ir::Program) -> ClassPlacement {
        let mut home = Map::new();
        home.insert(p.class_by_name("Main").unwrap(), 0);
        home.insert(p.class_by_name("Bank").unwrap(), 1);
        home.insert(p.class_by_name("Account").unwrap(), 1);
        ClassPlacement { home, nparts: 2 }
    }

    #[test]
    fn centralized_bank_run_produces_expected_total() {
        let p = compile_source(BANK_SRC).unwrap();
        let report = run_centralized(&p, 1.0);
        assert!(report.is_ok(), "{:?}", report.error);
        assert_eq!(
            report.final_statics.get("Main::result"),
            Some(&Value::Int(10 * 1000 + 50000 - 900))
        );
        assert!(report.virtual_time_us > 0.0);
        assert_eq!(report.total_messages(), 0);
    }

    #[test]
    fn distributed_bank_run_matches_centralized_result() {
        let p = compile_source(BANK_SRC).unwrap();
        let centralized = run_centralized(&p, 1.0);

        let placement = split_placement(&p);
        let copies: Vec<autodist_ir::Program> = (0..2)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let report = run_distributed(&copies, &ClusterConfig::paper_testbed());
        assert!(report.is_ok(), "{:?}", report.error);
        assert_eq!(
            report.final_statics.get("Main::result"),
            centralized.final_statics.get("Main::result"),
            "distributed execution computes the same answer"
        );
        assert!(report.total_messages() > 0, "communication happened");
        assert!(report.total_bytes() > 0);
        assert!(report.per_node[1].requests_served > 0);
        assert!(report.virtual_time_us > 0.0);
    }

    #[test]
    fn single_node_distributed_run_behaves_like_centralized() {
        let p = compile_source(BANK_SRC).unwrap();
        let placement = ClassPlacement::centralized(1);
        let copy = rewrite_for_node(&p, &placement, 0).program;
        let config = ClusterConfig {
            network: NetworkConfig::uniform(1),
            ..Default::default()
        };
        let report = run_distributed(std::slice::from_ref(&copy), &config);
        assert!(report.is_ok(), "{:?}", report.error);
        assert_eq!(report.total_messages(), 0);
        assert_eq!(
            report.final_statics.get("Main::result"),
            Some(&Value::Int(10 * 1000 + 50000 - 900))
        );
    }

    #[test]
    fn offloading_work_to_a_faster_node_can_give_speedup() {
        // A compute-heavy class placed on the fast node: distribution should beat the
        // slow-node-only baseline in virtual time (this is the Figure 11 effect).
        let src = r#"
            class Worker {
                int crunch(int n) {
                    int acc = 0;
                    int i = 0;
                    while (i < n) {
                        acc = acc + (i * i) % 1000;
                        i = i + 1;
                    }
                    return acc;
                }
            }
            class Main {
                static int result;
                static void main() {
                    Worker w = new Worker();
                    result = w.crunch(20000);
                }
            }
        "#;
        let p = compile_source(src).unwrap();
        let baseline = run_centralized(&p, 1.0);

        let mut home = Map::new();
        home.insert(p.class_by_name("Main").unwrap(), 0);
        home.insert(p.class_by_name("Worker").unwrap(), 1);
        let placement = ClassPlacement { home, nparts: 2 };
        let copies: Vec<autodist_ir::Program> = (0..2)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let dist = run_distributed(&copies, &ClusterConfig::paper_testbed());
        assert!(dist.is_ok(), "{:?}", dist.error);
        assert_eq!(
            dist.final_statics.get("Main::result"),
            baseline.final_statics.get("Main::result")
        );
        let speedup = dist.speedup_over(&baseline);
        assert!(
            speedup > 1.2,
            "offloading the hot loop to the 2.1x node should win (speedup {speedup:.2})"
        );
    }

    #[test]
    fn inline_schedule_matches_threaded_results_and_virtual_time() {
        let p = compile_source(BANK_SRC).unwrap();
        let placement = split_placement(&p);
        let copies: Vec<autodist_ir::Program> = (0..2)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let threaded = run_distributed(
            &copies,
            &ClusterConfig {
                schedule: Schedule::Threaded,
                ..ClusterConfig::paper_testbed()
            },
        );
        let inline = run_distributed(
            &copies,
            &ClusterConfig {
                schedule: Schedule::Inline,
                ..ClusterConfig::paper_testbed()
            },
        );
        assert!(inline.is_ok(), "{:?}", inline.error);
        assert_eq!(inline.final_statics, threaded.final_statics);
        assert_eq!(inline.total_messages(), threaded.total_messages());
        assert_eq!(inline.total_bytes(), threaded.total_bytes());
        assert!(
            (inline.virtual_time_us - threaded.virtual_time_us).abs() < 1e-6,
            "virtual clocks must agree: inline {} vs threaded {}",
            inline.virtual_time_us,
            threaded.virtual_time_us
        );
        for (a, b) in inline.per_node.iter().zip(threaded.per_node.iter()) {
            assert_eq!(a.requests_served, b.requests_served);
            assert_eq!(a.instructions, b.instructions);
        }
    }

    #[test]
    fn inline_schedule_scales_to_many_virtual_nodes() {
        // 64 virtual nodes on one OS thread: the pre-pool design would have spawned 64
        // threads with 32 MB stacks for this.
        let p = compile_source(BANK_SRC).unwrap();
        let nodes = 64;
        let mut home = Map::new();
        home.insert(p.class_by_name("Main").unwrap(), 0);
        home.insert(p.class_by_name("Bank").unwrap(), 1);
        home.insert(p.class_by_name("Account").unwrap(), 2);
        let placement = ClassPlacement {
            home,
            nparts: nodes,
        };
        let copies: Vec<autodist_ir::Program> = (0..nodes)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let config = ClusterConfig {
            network: NetworkConfig::uniform(nodes),
            schedule: Schedule::Inline,
        };
        let report = run_distributed(&copies, &config);
        assert!(report.is_ok(), "{:?}", report.error);
        assert_eq!(report.per_node.len(), nodes);
        assert_eq!(
            report.final_statics.get("Main::result"),
            Some(&Value::Int(10 * 1000 + 50000 - 900))
        );
        assert!(report.total_messages() > 0);
    }

    /// A placement whose inter-node digraph is cyclic: node 1's method calls back into
    /// an object living on node 0. The threaded scheduler must handle this (the waiting
    /// launch node serves the callback from its own mailbox).
    #[test]
    fn threaded_schedule_supports_reentrant_callbacks() {
        let src = r#"
            class Cell {
                int v;
                int bump() { this.v = this.v + 1; return this.v; }
            }
            class Relay {
                int poke(Cell c) { return c.bump() + c.bump(); }
            }
            class Main {
                static int result;
                static void main() {
                    Cell c = new Cell();
                    Relay r = new Relay();
                    result = r.poke(c);
                }
            }
        "#;
        let p = compile_source(src).unwrap();
        let baseline = run_centralized(&p, 1.0);
        let mut home = Map::new();
        home.insert(p.class_by_name("Main").unwrap(), 0);
        home.insert(p.class_by_name("Cell").unwrap(), 0);
        home.insert(p.class_by_name("Relay").unwrap(), 1);
        let placement = ClassPlacement { home, nparts: 2 };
        let copies: Vec<autodist_ir::Program> = (0..2)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let report = run_distributed(
            &copies,
            &ClusterConfig {
                schedule: Schedule::Threaded,
                ..ClusterConfig::paper_testbed()
            },
        );
        assert!(report.is_ok(), "{:?}", report.error);
        assert_eq!(
            report.final_statics.get("Main::result"),
            baseline.final_statics.get("Main::result")
        );
        assert!(
            report.per_node[0].requests_served > 0,
            "the launch node served the callback"
        );
    }

    #[test]
    fn communication_heavy_distribution_shows_overhead() {
        // Fine-grained remote field access with almost no compute: distribution should
        // be slower than the baseline (the sub-100% cases of Figure 11).
        let src = r#"
            class Cell {
                int v;
                int get() { return this.v; }
                void set(int x) { this.v = x; }
            }
            class Main {
                static int result;
                static void main() {
                    Cell c = new Cell();
                    int i = 0;
                    while (i < 200) {
                        c.set(c.get() + 1);
                        i = i + 1;
                    }
                    result = c.get();
                }
            }
        "#;
        let p = compile_source(src).unwrap();
        let baseline = run_centralized(&p, 1.0);
        let mut home = Map::new();
        home.insert(p.class_by_name("Main").unwrap(), 0);
        home.insert(p.class_by_name("Cell").unwrap(), 1);
        let placement = ClassPlacement { home, nparts: 2 };
        let copies: Vec<autodist_ir::Program> = (0..2)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let dist = run_distributed(&copies, &ClusterConfig::paper_testbed());
        assert!(dist.is_ok(), "{:?}", dist.error);
        assert_eq!(
            dist.final_statics.get("Main::result"),
            baseline.final_statics.get("Main::result")
        );
        assert!(
            dist.speedup_over(&baseline) < 1.0,
            "chatty fine-grained access should pay communication overhead"
        );
        assert!(dist.total_messages() >= 400, "two messages per round trip");
    }
}
