//! The cluster driver: runs a program centralized or distributed and reports timings.
//!
//! Node 0 plays the paper's launch node (the 800 MHz machine where the user starts the
//! program), runs the Execution Starter and finally broadcasts a shutdown; every other
//! node answers `NEW`/`DEPENDENCE` requests. Each node keeps a virtual clock fed by the
//! instruction and network cost model, so the reported *virtual time* reproduces the
//! shape of the paper's Figure 11 even though everything actually executes on one
//! machine; wall-clock time is reported as well.
//!
//! Two schedulers are available (see [`Schedule`]):
//!
//! * **Cooperative** ([`Schedule::Inline`]) — all virtual nodes are multiplexed onto a
//!   single OS thread. The interpreter's explicit-stack machine makes every in-flight
//!   computation plain data: when a node hits a remote operation it sends the request
//!   and *parks* its frame stack as a continuation keyed by the request id; the
//!   scheduler then runs whichever node has a deliverable message. Because serving a
//!   request spawns a fresh continuation (instead of recursing on a native stack), a
//!   node can serve callbacks *while one of its own computations is parked* — cyclic /
//!   re-entrant placements run on one OS thread just like acyclic ones, so this is
//!   the default for every placement.
//! * **Threaded** ([`Schedule::Threaded`]) — the original thread-per-node execution,
//!   kept as an opt-in cross-check: its virtual clocks, message counts and results
//!   must be identical to the cooperative scheduler's.

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

use autodist_ir::program::Program;

use crate::interp::{
    Continuation, DistState, ExecError, Interp, ProfilerSink, ServeOutcome, TaskOutcome,
};
use crate::net::{NetworkConfig, PacketKind};
use crate::services::{ExecutionStarter, MessageExchange, MpiService};
use crate::value::Value;
use crate::wire::Response;

/// How the simulated nodes are scheduled onto OS threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Schedule {
    /// Resolves to [`Schedule::Inline`]: the continuation-based cooperative scheduler
    /// handles every placement, including cyclic/re-entrant ones.
    #[default]
    Auto,
    /// Cooperative single-threaded scheduling: virtual nodes are multiplexed on one
    /// OS thread; a node waiting on a remote operation parks its frame stack as a
    /// continuation and any node with a deliverable message runs.
    Inline,
    /// One OS thread per node (the pre-pool behaviour, kept as an opt-in cross-check
    /// of the cooperative scheduler).
    Threaded,
}

/// Configuration of a distributed run.
#[derive(Clone, Debug, Default)]
pub struct ClusterConfig {
    /// The network / CPU cost model. The number of nodes is `network.nodes()`.
    pub network: NetworkConfig,
    /// Node-to-thread scheduling policy.
    pub schedule: Schedule,
}

impl ClusterConfig {
    /// The paper's two-node testbed.
    pub fn paper_testbed() -> Self {
        ClusterConfig {
            network: NetworkConfig::paper_testbed(),
            schedule: Schedule::Auto,
        }
    }
}

/// Per-node execution statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeStats {
    /// Node rank.
    pub node: usize,
    /// Instructions interpreted.
    pub instructions: u64,
    /// Objects/arrays allocated.
    pub allocations: u64,
    /// Bytes allocated.
    pub allocated_bytes: u64,
    /// Method invocations.
    pub method_invocations: u64,
    /// Remote requests issued by this node.
    pub remote_requests: u64,
    /// Requests served for other nodes.
    pub requests_served: u64,
    /// Messages sent.
    pub messages_sent: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Final virtual clock of the node in microseconds.
    pub clock_us: f64,
}

/// The result of a (centralized or distributed) execution.
#[derive(Clone, Debug, Default)]
pub struct ExecutionReport {
    /// Virtual execution time in microseconds (the launch node's final clock).
    pub virtual_time_us: f64,
    /// Wall-clock time of the simulation in milliseconds.
    pub wall_time_ms: f64,
    /// Per-node statistics (a single entry for centralized runs).
    pub per_node: Vec<NodeStats>,
    /// Final values of static fields on the launch node (used to check that the
    /// distributed execution computes the same answers as the centralized one).
    pub final_statics: BTreeMap<String, Value>,
    /// The typed runtime fault if execution failed.
    pub error: Option<ExecError>,
}

impl ExecutionReport {
    /// Total messages exchanged.
    pub fn total_messages(&self) -> u64 {
        self.per_node.iter().map(|n| n.messages_sent).sum()
    }

    /// Total bytes exchanged.
    pub fn total_bytes(&self) -> u64 {
        self.per_node.iter().map(|n| n.bytes_sent).sum()
    }

    /// Speedup of `self` relative to `baseline` in virtual time (values above 1.0 mean
    /// `self` is faster). This is the quantity plotted in Figure 11 (as a percentage).
    pub fn speedup_over(&self, baseline: &ExecutionReport) -> f64 {
        if self.virtual_time_us <= 0.0 {
            return 0.0;
        }
        baseline.virtual_time_us / self.virtual_time_us
    }

    /// `true` if execution completed without an error.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

fn stats_of(interp: &Interp<'_>, node: usize) -> NodeStats {
    let (messages_sent, bytes_sent) = interp
        .dist
        .as_ref()
        .map(|d| (d.endpoint.messages_sent, d.endpoint.bytes_sent))
        .unwrap_or((0, 0));
    NodeStats {
        node,
        instructions: interp.counters.instructions,
        allocations: interp.counters.allocations,
        allocated_bytes: interp.counters.allocated_bytes,
        method_invocations: interp.counters.method_invocations,
        remote_requests: interp.counters.remote_requests,
        requests_served: interp.counters.requests_served,
        messages_sent,
        bytes_sent,
        clock_us: interp.clock_us,
    }
}

/// Runs `program` on a single node with the given relative CPU speed (1.0 = the paper's
/// 800 MHz computation node). This is the sequential baseline of Figure 11.
pub fn run_centralized(program: &Program, speed: f64) -> ExecutionReport {
    run_centralized_profiled(program, speed, None, 0)
}

/// Centralized run with an optional profiler sink attached (used by the Table 3
/// harness). `sample_interval` is in interpreted instructions; 0 disables sampling.
pub fn run_centralized_profiled(
    program: &Program,
    speed: f64,
    profiler: Option<Box<dyn ProfilerSink>>,
    sample_interval: u64,
) -> ExecutionReport {
    let start = Instant::now();
    let mut interp = Interp::new(program).with_speed(speed);
    interp.instr_cost_us = NetworkConfig::paper_testbed().instr_cost_us;
    if let Some(p) = profiler {
        interp = interp.with_profiler(p, sample_interval);
    }
    let result = ExecutionStarter::start(&mut interp);
    let wall = start.elapsed();
    ExecutionReport {
        virtual_time_us: interp.clock_us,
        wall_time_ms: wall.as_secs_f64() * 1e3,
        per_node: vec![stats_of(&interp, 0)],
        final_statics: interp.statics_snapshot(),
        error: result.err(),
    }
}

/// Runs the per-node program copies distributed over `config.network.nodes()` nodes.
///
/// `programs[r]` is the (rewritten) program copy executed by rank `r`; `programs.len()`
/// must equal the node count of the network configuration. [`Schedule::Auto`] resolves
/// to the cooperative scheduler, which handles every placement — request
/// [`Schedule::Threaded`] explicitly to cross-check against thread-per-node execution.
pub fn run_distributed(programs: &[Program], config: &ClusterConfig) -> ExecutionReport {
    let nodes = programs.len();
    assert!(nodes >= 1, "at least one node required");
    assert_eq!(
        nodes,
        config.network.nodes(),
        "one program copy per configured node"
    );
    match config.schedule {
        Schedule::Auto | Schedule::Inline => run_distributed_inline(programs, config),
        Schedule::Threaded => run_distributed_threaded(programs, config),
    }
}

/// What to do with a cooperative task's result once its bottom frame returns.
enum TaskDone {
    /// The Execution Starter's `main` on the launch node: its result ends the run.
    Root,
    /// A serving computation: reply to `to` for request `req_id`. `reply_override`
    /// carries the freshly created object reference for `NEW` requests (the
    /// constructor's return value is discarded, as in the synchronous serve path).
    Reply {
        to: usize,
        req_id: u64,
        reply_override: Option<Value>,
    },
}

/// A cooperative computation: the interpreter-level continuation plus its completion
/// action.
struct CoopTask {
    cont: Continuation,
    done: TaskDone,
}

/// One virtual node of the cooperative scheduler: its interpreter plus every
/// continuation currently parked on an outstanding remote request, keyed by the
/// request id the response will echo.
struct CoopNode<'p> {
    interp: Interp<'p>,
    parked: HashMap<u64, CoopTask>,
}

impl CoopNode<'_> {
    /// Drives `task` until it parks or completes; completions either finish the run
    /// (root) or send the response for the request being served.
    fn run(&mut self, mut task: CoopTask, root_result: &mut Option<Result<Value, ExecError>>) {
        let outcome = self.interp.run_task(&mut task.cont);
        self.settle(task, outcome, root_result);
    }

    fn settle(
        &mut self,
        task: CoopTask,
        outcome: TaskOutcome,
        root_result: &mut Option<Result<Value, ExecError>>,
    ) {
        match outcome {
            TaskOutcome::Parked { req_id } => {
                self.parked.insert(req_id, task);
            }
            TaskOutcome::Done(res) => match task.done {
                TaskDone::Root => *root_result = Some(res),
                TaskDone::Reply {
                    to,
                    req_id,
                    reply_override,
                } => {
                    let result = res.map(|v| reply_override.unwrap_or(v));
                    self.interp.send_reply(to, req_id, result);
                }
            },
        }
    }
}

/// Cooperative single-threaded distributed execution (see [`Schedule::Inline`]): the
/// continuation-based scheduler. All virtual nodes run on the calling thread; the
/// explicit-stack machine never recurses, so no oversized stack is needed and a node
/// can serve re-entrant callbacks while its own computation is parked.
fn run_distributed_inline(programs: &[Program], config: &ClusterConfig) -> ExecutionReport {
    let node_count = programs.len();
    let start = Instant::now();
    let mut mpi = MpiService::init(node_count, config.network.clone());
    let mut nodes: Vec<CoopNode<'_>> = programs
        .iter()
        .enumerate()
        .map(|(rank, program)| CoopNode {
            interp: Interp::new(program).with_dist(DistState::new(mpi.endpoint(rank)).with_coop()),
            parked: HashMap::new(),
        })
        .collect();

    // The Execution Starter: launch `main` as the root continuation on node 0.
    let mut root_result: Option<Result<Value, ExecError>> = None;
    match nodes[0].interp.program.entry {
        None => root_result = Some(Err(ExecError::NoEntry)),
        Some(entry) => match nodes[0].interp.task_for(entry, Vec::new()) {
            None => root_result = Some(Ok(Value::Null)),
            Some(cont) => {
                let task = CoopTask {
                    cont,
                    done: TaskDone::Root,
                };
                nodes[0].run(task, &mut root_result);
            }
        },
    }

    // The scheduler proper: deliver messages to any node that has one, resuming the
    // parked continuation (responses) or spawning a serving task (requests), until
    // the root computation completes. Exactly one logical control flow exists at any
    // moment (the communication style is synchronous request/response), so every
    // sweep either delivers a message or the run is complete.
    while root_result.is_none() {
        let mut progress = false;
        for node in nodes.iter_mut() {
            while let Some(pkt) = node.interp.poll_packet() {
                progress = true;
                match pkt.kind {
                    PacketKind::Request => {
                        match node.interp.accept_request(pkt.from, pkt.req_id, pkt.data) {
                            ServeOutcome::Handled => {}
                            ServeOutcome::Spawned {
                                task,
                                reply_override,
                            } => {
                                let task = CoopTask {
                                    cont: task,
                                    done: TaskDone::Reply {
                                        to: pkt.from,
                                        req_id: pkt.req_id,
                                        reply_override,
                                    },
                                };
                                node.run(task, &mut root_result);
                            }
                        }
                    }
                    PacketKind::Response => {
                        // The response for a parked continuation: resume it.
                        let Some(mut task) = node.parked.remove(&pkt.req_id) else {
                            continue; // stray response (cannot happen): ignore
                        };
                        let resp = match Response::decode(pkt.data) {
                            Response::Value(v) => Ok(v),
                            Response::Error(e) => Err(e),
                        };
                        let outcome = node.interp.resume_task(&mut task.cont, resp);
                        node.settle(task, outcome, &mut root_result);
                    }
                }
                if root_result.is_some() {
                    break;
                }
            }
            if root_result.is_some() {
                break;
            }
        }
        if !progress && root_result.is_none() {
            // Only reachable through a scheduler bug: surface it instead of hanging.
            root_result = Some(Err(ExecError::RemoteFailure(
                "cooperative scheduler stalled: no runnable node and no deliverable message".into(),
            )));
        }
    }

    // Execution ends when main returns on the launch node; the shutdown broadcast is
    // bookkeeping and not part of the measured execution.
    let error = root_result.expect("root completed").err();
    let stats0 = stats_of(&nodes[0].interp, 0);
    let final_statics = nodes[0].interp.statics_snapshot();
    MessageExchange::broadcast_shutdown(&mut nodes[0].interp);
    for node in nodes.iter_mut().skip(1) {
        // Deliver the shutdown (advancing each node's clock to its arrival, exactly
        // like the threaded serve loop does before exiting).
        while let Some(pkt) = node.interp.poll_packet() {
            if pkt.kind == PacketKind::Request {
                let _ = node.interp.accept_request(pkt.from, pkt.req_id, pkt.data);
            }
        }
    }

    let wall = start.elapsed();
    let mut per_node = vec![stats0];
    for (rank, node) in nodes.iter().enumerate().skip(1) {
        per_node.push(stats_of(&node.interp, rank));
    }
    // The distributed execution ends when the launch node finishes `main`; its clock
    // has already absorbed every synchronous round trip (the communication style is
    // request/response), so it is the execution time the paper measures.
    let virtual_time_us = per_node.first().map(|s| s.clock_us).unwrap_or(0.0);
    ExecutionReport {
        virtual_time_us,
        wall_time_ms: wall.as_secs_f64() * 1e3,
        per_node,
        final_statics,
        error,
    }
}

/// Thread-per-node distributed execution (see [`Schedule::Threaded`]).
fn run_distributed_threaded(programs: &[Program], config: &ClusterConfig) -> ExecutionReport {
    let nodes = programs.len();
    let start = Instant::now();
    let mut mpi = MpiService::init(nodes, config.network.clone());

    let mut endpoints: Vec<_> = (0..nodes).map(|r| Some(mpi.endpoint(r))).collect();

    let results: Vec<(NodeStats, BTreeMap<String, Value>, Option<ExecError>)> =
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (rank, program) in programs.iter().enumerate() {
                let endpoint = endpoints[rank].take().expect("endpoint");
                let builder = std::thread::Builder::new()
                    .name(format!("node-{rank}"))
                    .stack_size(32 * 1024 * 1024);
                let handle = builder
                    .spawn_scoped(scope, move || {
                        let mut interp = Interp::new(program).with_dist(DistState::new(endpoint));
                        let mut error = None;
                        let stats;
                        if rank == 0 {
                            if let Err(e) = ExecutionStarter::start(&mut interp) {
                                error = Some(e);
                            }
                            // Execution ends when main returns on the launch node; the
                            // shutdown broadcast is bookkeeping and not part of the
                            // measured execution.
                            stats = stats_of(&interp, rank);
                            MessageExchange::broadcast_shutdown(&mut interp);
                        } else {
                            MessageExchange::serve(&mut interp);
                            stats = stats_of(&interp, rank);
                        }
                        (stats, interp.statics_snapshot(), error)
                    })
                    .expect("spawn node thread");
                handles.push(handle);
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("node thread panicked"))
                .collect()
        });

    let wall = start.elapsed();
    let error = results.iter().find_map(|(_, _, e)| e.clone());
    let final_statics = results
        .first()
        .map(|(_, s, _)| s.clone())
        .unwrap_or_default();
    // The distributed execution ends when the launch node finishes `main`; its clock
    // has already absorbed every synchronous round trip (the communication style is
    // request/response), so it is the execution time the paper measures.
    let virtual_time_us = results.first().map(|(s, _, _)| s.clock_us).unwrap_or(0.0);
    ExecutionReport {
        virtual_time_us,
        wall_time_ms: wall.as_secs_f64() * 1e3,
        per_node: results.into_iter().map(|(s, _, _)| s).collect(),
        final_statics,
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autodist_codegen::rewrite::{rewrite_for_node, ClassPlacement};
    use autodist_ir::frontend::compile_source;
    use std::collections::BTreeMap as Map;

    const BANK_SRC: &str = r#"
        class Account {
            int id;
            int savings;
            Account(int id, int savings) { this.id = id; this.savings = savings; }
            int getSavings() { return this.savings; }
            void setBalance(int b) { this.savings = b; }
        }
        class Bank {
            Account[] accounts;
            int count;
            Bank(int n) {
                this.accounts = new Account[100];
                this.count = 0;
                int i = 0;
                while (i < n) {
                    this.openAccount(new Account(i, 1000));
                    i = i + 1;
                }
            }
            void openAccount(Account a) {
                this.accounts[this.count] = a;
                this.count = this.count + 1;
            }
            Account getCustomer(int id) { return this.accounts[id]; }
            int totalSavings() {
                int t = 0;
                int i = 0;
                while (i < this.count) {
                    t = t + this.accounts[i].getSavings();
                    i = i + 1;
                }
                return t;
            }
        }
        class Main {
            static int result;
            static void main() {
                Bank merchants = new Bank(10);
                Account a4 = new Account(100, 50000);
                merchants.openAccount(a4);
                Account a = merchants.getCustomer(2);
                a.setBalance(a.getSavings() - 900);
                result = merchants.totalSavings();
            }
        }
    "#;

    fn split_placement(p: &autodist_ir::Program) -> ClassPlacement {
        let mut home = Map::new();
        home.insert(p.class_by_name("Main").unwrap(), 0);
        home.insert(p.class_by_name("Bank").unwrap(), 1);
        home.insert(p.class_by_name("Account").unwrap(), 1);
        ClassPlacement { home, nparts: 2 }
    }

    #[test]
    fn centralized_bank_run_produces_expected_total() {
        let p = compile_source(BANK_SRC).unwrap();
        let report = run_centralized(&p, 1.0);
        assert!(report.is_ok(), "{:?}", report.error);
        assert_eq!(
            report.final_statics.get("Main::result"),
            Some(&Value::Int(10 * 1000 + 50000 - 900))
        );
        assert!(report.virtual_time_us > 0.0);
        assert_eq!(report.total_messages(), 0);
    }

    #[test]
    fn distributed_bank_run_matches_centralized_result() {
        let p = compile_source(BANK_SRC).unwrap();
        let centralized = run_centralized(&p, 1.0);

        let placement = split_placement(&p);
        let copies: Vec<autodist_ir::Program> = (0..2)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let report = run_distributed(&copies, &ClusterConfig::paper_testbed());
        assert!(report.is_ok(), "{:?}", report.error);
        assert_eq!(
            report.final_statics.get("Main::result"),
            centralized.final_statics.get("Main::result"),
            "distributed execution computes the same answer"
        );
        assert!(report.total_messages() > 0, "communication happened");
        assert!(report.total_bytes() > 0);
        assert!(report.per_node[1].requests_served > 0);
        assert!(report.virtual_time_us > 0.0);
    }

    #[test]
    fn single_node_distributed_run_behaves_like_centralized() {
        let p = compile_source(BANK_SRC).unwrap();
        let placement = ClassPlacement::centralized(1);
        let copy = rewrite_for_node(&p, &placement, 0).program;
        let config = ClusterConfig {
            network: NetworkConfig::uniform(1),
            ..Default::default()
        };
        let report = run_distributed(std::slice::from_ref(&copy), &config);
        assert!(report.is_ok(), "{:?}", report.error);
        assert_eq!(report.total_messages(), 0);
        assert_eq!(
            report.final_statics.get("Main::result"),
            Some(&Value::Int(10 * 1000 + 50000 - 900))
        );
    }

    #[test]
    fn offloading_work_to_a_faster_node_can_give_speedup() {
        // A compute-heavy class placed on the fast node: distribution should beat the
        // slow-node-only baseline in virtual time (this is the Figure 11 effect).
        let src = r#"
            class Worker {
                int crunch(int n) {
                    int acc = 0;
                    int i = 0;
                    while (i < n) {
                        acc = acc + (i * i) % 1000;
                        i = i + 1;
                    }
                    return acc;
                }
            }
            class Main {
                static int result;
                static void main() {
                    Worker w = new Worker();
                    result = w.crunch(20000);
                }
            }
        "#;
        let p = compile_source(src).unwrap();
        let baseline = run_centralized(&p, 1.0);

        let mut home = Map::new();
        home.insert(p.class_by_name("Main").unwrap(), 0);
        home.insert(p.class_by_name("Worker").unwrap(), 1);
        let placement = ClassPlacement { home, nparts: 2 };
        let copies: Vec<autodist_ir::Program> = (0..2)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let dist = run_distributed(&copies, &ClusterConfig::paper_testbed());
        assert!(dist.is_ok(), "{:?}", dist.error);
        assert_eq!(
            dist.final_statics.get("Main::result"),
            baseline.final_statics.get("Main::result")
        );
        let speedup = dist.speedup_over(&baseline);
        assert!(
            speedup > 1.2,
            "offloading the hot loop to the 2.1x node should win (speedup {speedup:.2})"
        );
    }

    #[test]
    fn inline_schedule_matches_threaded_results_and_virtual_time() {
        let p = compile_source(BANK_SRC).unwrap();
        let placement = split_placement(&p);
        let copies: Vec<autodist_ir::Program> = (0..2)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let threaded = run_distributed(
            &copies,
            &ClusterConfig {
                schedule: Schedule::Threaded,
                ..ClusterConfig::paper_testbed()
            },
        );
        let inline = run_distributed(
            &copies,
            &ClusterConfig {
                schedule: Schedule::Inline,
                ..ClusterConfig::paper_testbed()
            },
        );
        assert!(inline.is_ok(), "{:?}", inline.error);
        assert_eq!(inline.final_statics, threaded.final_statics);
        assert_eq!(inline.total_messages(), threaded.total_messages());
        assert_eq!(inline.total_bytes(), threaded.total_bytes());
        assert!(
            (inline.virtual_time_us - threaded.virtual_time_us).abs() < 1e-6,
            "virtual clocks must agree: inline {} vs threaded {}",
            inline.virtual_time_us,
            threaded.virtual_time_us
        );
        for (a, b) in inline.per_node.iter().zip(threaded.per_node.iter()) {
            assert_eq!(a.requests_served, b.requests_served);
            assert_eq!(a.instructions, b.instructions);
        }
    }

    #[test]
    fn inline_schedule_scales_to_many_virtual_nodes() {
        // 64 virtual nodes on one OS thread: the pre-pool design would have spawned 64
        // threads with 32 MB stacks for this.
        let p = compile_source(BANK_SRC).unwrap();
        let nodes = 64;
        let mut home = Map::new();
        home.insert(p.class_by_name("Main").unwrap(), 0);
        home.insert(p.class_by_name("Bank").unwrap(), 1);
        home.insert(p.class_by_name("Account").unwrap(), 2);
        let placement = ClassPlacement {
            home,
            nparts: nodes,
        };
        let copies: Vec<autodist_ir::Program> = (0..nodes)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let config = ClusterConfig {
            network: NetworkConfig::uniform(nodes),
            schedule: Schedule::Inline,
        };
        let report = run_distributed(&copies, &config);
        assert!(report.is_ok(), "{:?}", report.error);
        assert_eq!(report.per_node.len(), nodes);
        assert_eq!(
            report.final_statics.get("Main::result"),
            Some(&Value::Int(10 * 1000 + 50000 - 900))
        );
        assert!(report.total_messages() > 0);
    }

    /// A placement whose inter-node digraph is cyclic: node 1's method calls back into
    /// an object living on node 0. The threaded scheduler must handle this (the waiting
    /// launch node serves the callback from its own mailbox).
    #[test]
    fn threaded_schedule_supports_reentrant_callbacks() {
        let src = r#"
            class Cell {
                int v;
                int bump() { this.v = this.v + 1; return this.v; }
            }
            class Relay {
                int poke(Cell c) { return c.bump() + c.bump(); }
            }
            class Main {
                static int result;
                static void main() {
                    Cell c = new Cell();
                    Relay r = new Relay();
                    result = r.poke(c);
                }
            }
        "#;
        let p = compile_source(src).unwrap();
        let baseline = run_centralized(&p, 1.0);
        let mut home = Map::new();
        home.insert(p.class_by_name("Main").unwrap(), 0);
        home.insert(p.class_by_name("Cell").unwrap(), 0);
        home.insert(p.class_by_name("Relay").unwrap(), 1);
        let placement = ClassPlacement { home, nparts: 2 };
        let copies: Vec<autodist_ir::Program> = (0..2)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let report = run_distributed(
            &copies,
            &ClusterConfig {
                schedule: Schedule::Threaded,
                ..ClusterConfig::paper_testbed()
            },
        );
        assert!(report.is_ok(), "{:?}", report.error);
        assert_eq!(
            report.final_statics.get("Main::result"),
            baseline.final_statics.get("Main::result")
        );
        assert!(
            report.per_node[0].requests_served > 0,
            "the launch node served the callback"
        );
    }

    /// The same cyclic placement as `threaded_schedule_supports_reentrant_callbacks`,
    /// but on the cooperative scheduler: node 0's main parks while node 1 serves
    /// `poke`, which calls back into node 0 — the callback runs as a fresh
    /// continuation on node 0 while its root computation stays parked. Results,
    /// traffic and virtual clocks must be identical to thread-per-node execution.
    #[test]
    fn inline_schedule_supports_reentrant_callbacks() {
        let src = r#"
            class Cell {
                int v;
                int bump() { this.v = this.v + 1; return this.v; }
            }
            class Relay {
                int poke(Cell c) { return c.bump() + c.bump(); }
            }
            class Main {
                static int result;
                static void main() {
                    Cell c = new Cell();
                    Relay r = new Relay();
                    result = r.poke(c);
                }
            }
        "#;
        let p = compile_source(src).unwrap();
        let mut home = Map::new();
        home.insert(p.class_by_name("Main").unwrap(), 0);
        home.insert(p.class_by_name("Cell").unwrap(), 0);
        home.insert(p.class_by_name("Relay").unwrap(), 1);
        let placement = ClassPlacement { home, nparts: 2 };
        let copies: Vec<autodist_ir::Program> = (0..2)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let threaded = run_distributed(
            &copies,
            &ClusterConfig {
                schedule: Schedule::Threaded,
                ..ClusterConfig::paper_testbed()
            },
        );
        let inline = run_distributed(
            &copies,
            &ClusterConfig {
                schedule: Schedule::Inline,
                ..ClusterConfig::paper_testbed()
            },
        );
        assert!(inline.is_ok(), "{:?}", inline.error);
        assert_eq!(
            inline.final_statics.get("Main::result"),
            Some(&Value::Int(3))
        );
        assert_eq!(inline.final_statics, threaded.final_statics);
        assert_eq!(inline.total_messages(), threaded.total_messages());
        assert_eq!(inline.total_bytes(), threaded.total_bytes());
        assert!(
            (inline.virtual_time_us - threaded.virtual_time_us).abs() < 1e-9,
            "virtual clocks must agree: inline {} vs threaded {}",
            inline.virtual_time_us,
            threaded.virtual_time_us
        );
        assert!(
            inline.per_node[0].requests_served > 0,
            "the launch node served the callback while parked"
        );
        for (a, b) in inline.per_node.iter().zip(threaded.per_node.iter()) {
            assert_eq!(a.requests_served, b.requests_served);
            assert_eq!(a.instructions, b.instructions);
        }
    }

    #[test]
    fn communication_heavy_distribution_shows_overhead() {
        // Fine-grained remote field access with almost no compute: distribution should
        // be slower than the baseline (the sub-100% cases of Figure 11).
        let src = r#"
            class Cell {
                int v;
                int get() { return this.v; }
                void set(int x) { this.v = x; }
            }
            class Main {
                static int result;
                static void main() {
                    Cell c = new Cell();
                    int i = 0;
                    while (i < 200) {
                        c.set(c.get() + 1);
                        i = i + 1;
                    }
                    result = c.get();
                }
            }
        "#;
        let p = compile_source(src).unwrap();
        let baseline = run_centralized(&p, 1.0);
        let mut home = Map::new();
        home.insert(p.class_by_name("Main").unwrap(), 0);
        home.insert(p.class_by_name("Cell").unwrap(), 1);
        let placement = ClassPlacement { home, nparts: 2 };
        let copies: Vec<autodist_ir::Program> = (0..2)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let dist = run_distributed(&copies, &ClusterConfig::paper_testbed());
        assert!(dist.is_ok(), "{:?}", dist.error);
        assert_eq!(
            dist.final_statics.get("Main::result"),
            baseline.final_statics.get("Main::result")
        );
        assert!(
            dist.speedup_over(&baseline) < 1.0,
            "chatty fine-grained access should pay communication overhead"
        );
        assert!(dist.total_messages() >= 400, "two messages per round trip");
    }
}
