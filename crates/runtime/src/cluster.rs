//! The cluster driver: runs a program centralized or distributed and reports timings.
//!
//! Node 0 plays the paper's launch node (the 800 MHz machine where the user starts the
//! program), runs the Execution Starter and finally broadcasts a shutdown; every other
//! node answers `NEW`/`DEPENDENCE` requests. Each node keeps a virtual clock fed by the
//! instruction and network cost model, so the reported *virtual time* reproduces the
//! shape of the paper's Figure 11 even though everything actually executes on one
//! machine; wall-clock time is reported as well.
//!
//! This module holds the run configuration ([`ClusterConfig`], [`Schedule`]) and the
//! reporting surface ([`ExecutionReport`], [`NodeStats`]); the schedulers themselves —
//! the event-driven cooperative core, the work-stealing pool and the thread-per-node
//! cross-check — live in [`crate::sched`].

use std::collections::BTreeMap;
use std::time::Instant;

use autodist_ir::program::Program;

use crate::interp::{ExecError, Interp, ProfilerSink};
use crate::net::{FaultPlan, FaultSummary, NetworkConfig};
use crate::sched;
use crate::services::ExecutionStarter;
use crate::value::Value;

/// How the simulated nodes are scheduled onto OS threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Schedule {
    /// Resolves to [`Schedule::Inline`]: the continuation-based cooperative scheduler
    /// handles every placement, including cyclic/re-entrant ones.
    #[default]
    Auto,
    /// Cooperative single-threaded scheduling: virtual nodes are multiplexed on one
    /// OS thread; a node waiting on a remote operation parks its frame stack as a
    /// continuation and the scheduler pops the next ready rank off the transport's
    /// shared ready queue (O(1) delivery per packet).
    Inline,
    /// One OS thread per node (the pre-pool behaviour, kept as an opt-in cross-check
    /// of the cooperative scheduler).
    Threaded,
    /// A work-stealing pool of `threads` OS threads over the parked continuations'
    /// home ranks: workers pop ready ranks from per-worker run queues, refill from
    /// the transport's shared ready queue and steal from siblings when idle. Virtual
    /// times and message counts stay deterministic; the extra threads pay off for
    /// workloads with several root computations in flight.
    Pool {
        /// Worker thread count (clamped to at least 1).
        threads: usize,
    },
}

/// Configuration of a distributed run.
#[derive(Clone, Debug, Default)]
pub struct ClusterConfig {
    /// The network / CPU cost model. The number of nodes is `network.nodes()`.
    pub network: NetworkConfig,
    /// Node-to-thread scheduling policy.
    pub schedule: Schedule,
    /// Optional deterministic fault-injection plan wrapping the transport (see
    /// [`FaultPlan`]). `None` — the default — leaves the hot path untouched.
    pub faults: Option<FaultPlan>,
    /// Disables per-link ready-key coalescing in the cooperative schedulers.
    /// Coalescing is a transport detail — virtual times, message counts, and
    /// checksums are identical either way — so this exists for the A/B parity
    /// tests pinning exactly that, not for tuning.
    pub no_coalesce: bool,
    /// Disables per-link encode-buffer recycling. Like [`Self::no_coalesce`]
    /// this is an A/B control for the parity suites, not a tuning knob — the
    /// pool only changes wall-clock allocation behaviour.
    pub no_buffer_pool: bool,
}

impl ClusterConfig {
    /// The paper's two-node testbed.
    pub fn paper_testbed() -> Self {
        ClusterConfig {
            network: NetworkConfig::paper_testbed(),
            schedule: Schedule::Auto,
            faults: None,
            no_coalesce: false,
            no_buffer_pool: false,
        }
    }

    /// This configuration with a fault plan attached.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// Per-node execution statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeStats {
    /// Node rank.
    pub node: usize,
    /// Instructions interpreted.
    pub instructions: u64,
    /// Objects/arrays allocated.
    pub allocations: u64,
    /// Bytes allocated.
    pub allocated_bytes: u64,
    /// Method invocations.
    pub method_invocations: u64,
    /// Remote requests issued by this node.
    pub remote_requests: u64,
    /// Requests served for other nodes.
    pub requests_served: u64,
    /// Messages sent.
    pub messages_sent: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Final virtual clock of the node in microseconds.
    pub clock_us: f64,
}

/// The result of a (centralized or distributed) execution.
#[derive(Clone, Debug, Default)]
pub struct ExecutionReport {
    /// Virtual execution time in microseconds (the launch node's final clock).
    pub virtual_time_us: f64,
    /// Wall-clock time of the simulation in milliseconds.
    pub wall_time_ms: f64,
    /// Per-node statistics (a single entry for centralized runs).
    pub per_node: Vec<NodeStats>,
    /// Final values of static fields on the launch node (used to check that the
    /// distributed execution computes the same answers as the centralized one).
    pub final_statics: BTreeMap<String, Value>,
    /// The typed runtime fault if execution failed.
    pub error: Option<ExecError>,
    /// Fault-layer activity of the run, when a [`FaultPlan`] was attached (`None`
    /// for fault-free runs — the report stays byte-identical to the pre-fault
    /// surface).
    pub faults: Option<FaultSummary>,
}

impl ExecutionReport {
    /// Total messages exchanged.
    pub fn total_messages(&self) -> u64 {
        self.per_node.iter().map(|n| n.messages_sent).sum()
    }

    /// Total bytes exchanged.
    pub fn total_bytes(&self) -> u64 {
        self.per_node.iter().map(|n| n.bytes_sent).sum()
    }

    /// Speedup of `self` relative to `baseline` in virtual time (values above 1.0 mean
    /// `self` is faster). This is the quantity plotted in Figure 11 (as a percentage).
    pub fn speedup_over(&self, baseline: &ExecutionReport) -> f64 {
        if self.virtual_time_us <= 0.0 {
            return 0.0;
        }
        baseline.virtual_time_us / self.virtual_time_us
    }

    /// `true` if execution completed without an error.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

pub(crate) fn stats_of(interp: &Interp<'_>, node: usize) -> NodeStats {
    let (messages_sent, bytes_sent) = interp
        .dist
        .as_ref()
        .map(|d| (d.endpoint.messages_sent, d.endpoint.bytes_sent))
        .unwrap_or((0, 0));
    NodeStats {
        node,
        instructions: interp.counters.instructions,
        allocations: interp.counters.allocations,
        allocated_bytes: interp.counters.allocated_bytes,
        method_invocations: interp.counters.method_invocations,
        remote_requests: interp.counters.remote_requests,
        requests_served: interp.counters.requests_served,
        messages_sent,
        bytes_sent,
        clock_us: interp.clock_us,
    }
}

/// Runs `program` on a single node with the given relative CPU speed (1.0 = the paper's
/// 800 MHz computation node). This is the sequential baseline of Figure 11.
pub fn run_centralized(program: &Program, speed: f64) -> ExecutionReport {
    run_centralized_profiled(program, speed, None, 0)
}

/// Centralized run with an optional profiler sink attached (used by the Table 3
/// harness). `sample_interval` is in interpreted instructions; 0 disables sampling.
pub fn run_centralized_profiled(
    program: &Program,
    speed: f64,
    profiler: Option<Box<dyn ProfilerSink>>,
    sample_interval: u64,
) -> ExecutionReport {
    let start = Instant::now();
    let mut interp = Interp::new(program).with_speed(speed);
    interp.instr_cost_us = NetworkConfig::paper_testbed().instr_cost_us;
    if let Some(p) = profiler {
        interp = interp.with_profiler(p, sample_interval);
    }
    let result = ExecutionStarter::start(&mut interp);
    let wall = start.elapsed();
    ExecutionReport {
        virtual_time_us: interp.clock_us,
        wall_time_ms: wall.as_secs_f64() * 1e3,
        per_node: vec![stats_of(&interp, 0)],
        final_statics: interp.statics_snapshot(),
        error: result.err(),
        faults: None,
    }
}

/// A profiler sink to attach to one node of a distributed run (see
/// [`run_distributed_profiled`]).
pub struct NodeProfiler {
    /// The sink collecting this node's measurements.
    pub sink: Box<dyn ProfilerSink>,
    /// Sampling quantum in interpreted instructions; 0 disables sampling.
    pub sample_interval: u64,
}

impl NodeProfiler {
    /// Pairs a sink with its sampling quantum.
    pub fn new(sink: Box<dyn ProfilerSink>, sample_interval: u64) -> Self {
        NodeProfiler {
            sink,
            sample_interval,
        }
    }
}

/// Runs the per-node program copies distributed over `config.network.nodes()` nodes.
///
/// `programs[r]` is the (rewritten) program copy executed by rank `r`; `programs.len()`
/// must equal the node count of the network configuration. [`Schedule::Auto`] resolves
/// to the cooperative scheduler, which handles every placement — request
/// [`Schedule::Threaded`] explicitly to cross-check against thread-per-node execution,
/// or [`Schedule::Pool`] for the work-stealing pool.
pub fn run_distributed(programs: &[Program], config: &ClusterConfig) -> ExecutionReport {
    run_distributed_profiled(programs, config, Vec::new())
}

/// [`run_distributed`] with per-node profiler sinks attached. `profilers[r]`, when
/// present, is handed to rank `r`'s interpreter; a shorter (or empty) vector leaves
/// the remaining nodes unprofiled. Works under every [`Schedule`] — the call stack
/// lives on each [`crate::interp::Continuation`], so sampling attribution is exact on
/// the cooperative and pool schedulers too.
pub fn run_distributed_profiled(
    programs: &[Program],
    config: &ClusterConfig,
    profilers: Vec<Option<NodeProfiler>>,
) -> ExecutionReport {
    let nodes = programs.len();
    assert!(nodes >= 1, "at least one node required");
    assert_eq!(
        nodes,
        config.network.nodes(),
        "one program copy per configured node"
    );
    match config.schedule {
        Schedule::Auto | Schedule::Inline => sched::run_inline(programs, config, profilers),
        Schedule::Threaded => sched::run_threaded(programs, config, profilers),
        Schedule::Pool { threads } => sched::run_pool(programs, config, profilers, threads),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autodist_codegen::rewrite::{rewrite_for_node, ClassPlacement};
    use autodist_ir::frontend::compile_source;
    use std::collections::BTreeMap as Map;

    const BANK_SRC: &str = r#"
        class Account {
            int id;
            int savings;
            Account(int id, int savings) { this.id = id; this.savings = savings; }
            int getSavings() { return this.savings; }
            void setBalance(int b) { this.savings = b; }
        }
        class Bank {
            Account[] accounts;
            int count;
            Bank(int n) {
                this.accounts = new Account[100];
                this.count = 0;
                int i = 0;
                while (i < n) {
                    this.openAccount(new Account(i, 1000));
                    i = i + 1;
                }
            }
            void openAccount(Account a) {
                this.accounts[this.count] = a;
                this.count = this.count + 1;
            }
            Account getCustomer(int id) { return this.accounts[id]; }
            int totalSavings() {
                int t = 0;
                int i = 0;
                while (i < this.count) {
                    t = t + this.accounts[i].getSavings();
                    i = i + 1;
                }
                return t;
            }
        }
        class Main {
            static int result;
            static void main() {
                Bank merchants = new Bank(10);
                Account a4 = new Account(100, 50000);
                merchants.openAccount(a4);
                Account a = merchants.getCustomer(2);
                a.setBalance(a.getSavings() - 900);
                result = merchants.totalSavings();
            }
        }
    "#;

    fn split_placement(p: &autodist_ir::Program) -> ClassPlacement {
        let mut home = Map::new();
        home.insert(p.class_by_name("Main").unwrap(), 0);
        home.insert(p.class_by_name("Bank").unwrap(), 1);
        home.insert(p.class_by_name("Account").unwrap(), 1);
        ClassPlacement { home, nparts: 2 }
    }

    #[test]
    fn centralized_bank_run_produces_expected_total() {
        let p = compile_source(BANK_SRC).unwrap();
        let report = run_centralized(&p, 1.0);
        assert!(report.is_ok(), "{:?}", report.error);
        assert_eq!(
            report.final_statics.get("Main::result"),
            Some(&Value::Int(10 * 1000 + 50000 - 900))
        );
        assert!(report.virtual_time_us > 0.0);
        assert_eq!(report.total_messages(), 0);
    }

    #[test]
    fn distributed_bank_run_matches_centralized_result() {
        let p = compile_source(BANK_SRC).unwrap();
        let centralized = run_centralized(&p, 1.0);

        let placement = split_placement(&p);
        let copies: Vec<autodist_ir::Program> = (0..2)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let report = run_distributed(&copies, &ClusterConfig::paper_testbed());
        assert!(report.is_ok(), "{:?}", report.error);
        assert_eq!(
            report.final_statics.get("Main::result"),
            centralized.final_statics.get("Main::result"),
            "distributed execution computes the same answer"
        );
        assert!(report.total_messages() > 0, "communication happened");
        assert!(report.total_bytes() > 0);
        assert!(report.per_node[1].requests_served > 0);
        assert!(report.virtual_time_us > 0.0);
    }

    #[test]
    fn single_node_distributed_run_behaves_like_centralized() {
        let p = compile_source(BANK_SRC).unwrap();
        let placement = ClassPlacement::centralized(1);
        let copy = rewrite_for_node(&p, &placement, 0).program;
        let config = ClusterConfig {
            network: NetworkConfig::uniform(1),
            ..Default::default()
        };
        let report = run_distributed(std::slice::from_ref(&copy), &config);
        assert!(report.is_ok(), "{:?}", report.error);
        assert_eq!(report.total_messages(), 0);
        assert_eq!(
            report.final_statics.get("Main::result"),
            Some(&Value::Int(10 * 1000 + 50000 - 900))
        );
    }

    #[test]
    fn offloading_work_to_a_faster_node_can_give_speedup() {
        // A compute-heavy class placed on the fast node: distribution should beat the
        // slow-node-only baseline in virtual time (this is the Figure 11 effect).
        let src = r#"
            class Worker {
                int crunch(int n) {
                    int acc = 0;
                    int i = 0;
                    while (i < n) {
                        acc = acc + (i * i) % 1000;
                        i = i + 1;
                    }
                    return acc;
                }
            }
            class Main {
                static int result;
                static void main() {
                    Worker w = new Worker();
                    result = w.crunch(20000);
                }
            }
        "#;
        let p = compile_source(src).unwrap();
        let baseline = run_centralized(&p, 1.0);

        let mut home = Map::new();
        home.insert(p.class_by_name("Main").unwrap(), 0);
        home.insert(p.class_by_name("Worker").unwrap(), 1);
        let placement = ClassPlacement { home, nparts: 2 };
        let copies: Vec<autodist_ir::Program> = (0..2)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let dist = run_distributed(&copies, &ClusterConfig::paper_testbed());
        assert!(dist.is_ok(), "{:?}", dist.error);
        assert_eq!(
            dist.final_statics.get("Main::result"),
            baseline.final_statics.get("Main::result")
        );
        let speedup = dist.speedup_over(&baseline);
        assert!(
            speedup > 1.2,
            "offloading the hot loop to the 2.1x node should win (speedup {speedup:.2})"
        );
    }

    #[test]
    fn inline_schedule_matches_threaded_results_and_virtual_time() {
        let p = compile_source(BANK_SRC).unwrap();
        let placement = split_placement(&p);
        let copies: Vec<autodist_ir::Program> = (0..2)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let threaded = run_distributed(
            &copies,
            &ClusterConfig {
                schedule: Schedule::Threaded,
                ..ClusterConfig::paper_testbed()
            },
        );
        let inline = run_distributed(
            &copies,
            &ClusterConfig {
                schedule: Schedule::Inline,
                ..ClusterConfig::paper_testbed()
            },
        );
        assert!(inline.is_ok(), "{:?}", inline.error);
        assert_eq!(inline.final_statics, threaded.final_statics);
        assert_eq!(inline.total_messages(), threaded.total_messages());
        assert_eq!(inline.total_bytes(), threaded.total_bytes());
        assert!(
            (inline.virtual_time_us - threaded.virtual_time_us).abs() < 1e-6,
            "virtual clocks must agree: inline {} vs threaded {}",
            inline.virtual_time_us,
            threaded.virtual_time_us
        );
        for (a, b) in inline.per_node.iter().zip(threaded.per_node.iter()) {
            assert_eq!(a.requests_served, b.requests_served);
            assert_eq!(a.instructions, b.instructions);
        }
    }

    /// The work-stealing pool must be indistinguishable from the inline scheduler:
    /// same results, same traffic, same virtual clocks — and deterministic across
    /// repeated runs (per-node clocks depend only on per-node packet order, which
    /// the FIFO transport fixes regardless of worker interleaving).
    #[test]
    fn pool_schedule_matches_inline_and_is_deterministic() {
        let p = compile_source(BANK_SRC).unwrap();
        let placement = split_placement(&p);
        let copies: Vec<autodist_ir::Program> = (0..2)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let inline = run_distributed(
            &copies,
            &ClusterConfig {
                schedule: Schedule::Inline,
                ..ClusterConfig::paper_testbed()
            },
        );
        let pool_config = ClusterConfig {
            schedule: Schedule::Pool { threads: 3 },
            ..ClusterConfig::paper_testbed()
        };
        let first = run_distributed(&copies, &pool_config);
        let second = run_distributed(&copies, &pool_config);
        for pool in [&first, &second] {
            assert!(pool.is_ok(), "{:?}", pool.error);
            assert_eq!(pool.final_statics, inline.final_statics);
            assert_eq!(pool.total_messages(), inline.total_messages());
            assert_eq!(pool.total_bytes(), inline.total_bytes());
            assert!(
                (pool.virtual_time_us - inline.virtual_time_us).abs() < 1e-9,
                "virtual clocks must agree: pool {} vs inline {}",
                pool.virtual_time_us,
                inline.virtual_time_us
            );
            for (a, b) in pool.per_node.iter().zip(inline.per_node.iter()) {
                assert_eq!(a.instructions, b.instructions);
                assert_eq!(a.requests_served, b.requests_served);
            }
        }
    }

    /// A run whose root computation never parks (single node, no messages) must not
    /// spin up pool workers at all — the seeded root completes on the calling thread.
    #[test]
    fn pool_schedule_handles_single_node_runs() {
        let p = compile_source(BANK_SRC).unwrap();
        let placement = ClassPlacement::centralized(1);
        let copy = rewrite_for_node(&p, &placement, 0).program;
        let config = ClusterConfig {
            network: NetworkConfig::uniform(1),
            schedule: Schedule::Pool { threads: 4 },
            ..Default::default()
        };
        let report = run_distributed(std::slice::from_ref(&copy), &config);
        assert!(report.is_ok(), "{:?}", report.error);
        assert_eq!(report.total_messages(), 0);
        assert_eq!(
            report.final_statics.get("Main::result"),
            Some(&Value::Int(10 * 1000 + 50000 - 900))
        );
    }

    #[test]
    fn inline_schedule_scales_to_many_virtual_nodes() {
        // 64 virtual nodes on one OS thread: the pre-pool design would have spawned 64
        // threads with 32 MB stacks for this.
        let p = compile_source(BANK_SRC).unwrap();
        let nodes = 64;
        let mut home = Map::new();
        home.insert(p.class_by_name("Main").unwrap(), 0);
        home.insert(p.class_by_name("Bank").unwrap(), 1);
        home.insert(p.class_by_name("Account").unwrap(), 2);
        let placement = ClassPlacement {
            home,
            nparts: nodes,
        };
        let copies: Vec<autodist_ir::Program> = (0..nodes)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let config = ClusterConfig {
            network: NetworkConfig::uniform(nodes),
            schedule: Schedule::Inline,
            ..Default::default()
        };
        let report = run_distributed(&copies, &config);
        assert!(report.is_ok(), "{:?}", report.error);
        assert_eq!(report.per_node.len(), nodes);
        assert_eq!(
            report.final_statics.get("Main::result"),
            Some(&Value::Int(10 * 1000 + 50000 - 900))
        );
        assert!(report.total_messages() > 0);
    }

    /// A placement whose inter-node digraph is cyclic: node 1's method calls back into
    /// an object living on node 0. The threaded scheduler must handle this (the waiting
    /// launch node serves the callback from its own mailbox).
    #[test]
    fn threaded_schedule_supports_reentrant_callbacks() {
        let src = r#"
            class Cell {
                int v;
                int bump() { this.v = this.v + 1; return this.v; }
            }
            class Relay {
                int poke(Cell c) { return c.bump() + c.bump(); }
            }
            class Main {
                static int result;
                static void main() {
                    Cell c = new Cell();
                    Relay r = new Relay();
                    result = r.poke(c);
                }
            }
        "#;
        let p = compile_source(src).unwrap();
        let baseline = run_centralized(&p, 1.0);
        let mut home = Map::new();
        home.insert(p.class_by_name("Main").unwrap(), 0);
        home.insert(p.class_by_name("Cell").unwrap(), 0);
        home.insert(p.class_by_name("Relay").unwrap(), 1);
        let placement = ClassPlacement { home, nparts: 2 };
        let copies: Vec<autodist_ir::Program> = (0..2)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let report = run_distributed(
            &copies,
            &ClusterConfig {
                schedule: Schedule::Threaded,
                ..ClusterConfig::paper_testbed()
            },
        );
        assert!(report.is_ok(), "{:?}", report.error);
        assert_eq!(
            report.final_statics.get("Main::result"),
            baseline.final_statics.get("Main::result")
        );
        assert!(
            report.per_node[0].requests_served > 0,
            "the launch node served the callback"
        );
    }

    /// The same cyclic placement as `threaded_schedule_supports_reentrant_callbacks`,
    /// but on the cooperative scheduler: node 0's main parks while node 1 serves
    /// `poke`, which calls back into node 0 — the callback runs as a fresh
    /// continuation on node 0 while its root computation stays parked. Results,
    /// traffic and virtual clocks must be identical to thread-per-node execution.
    #[test]
    fn inline_schedule_supports_reentrant_callbacks() {
        let src = r#"
            class Cell {
                int v;
                int bump() { this.v = this.v + 1; return this.v; }
            }
            class Relay {
                int poke(Cell c) { return c.bump() + c.bump(); }
            }
            class Main {
                static int result;
                static void main() {
                    Cell c = new Cell();
                    Relay r = new Relay();
                    result = r.poke(c);
                }
            }
        "#;
        let p = compile_source(src).unwrap();
        let mut home = Map::new();
        home.insert(p.class_by_name("Main").unwrap(), 0);
        home.insert(p.class_by_name("Cell").unwrap(), 0);
        home.insert(p.class_by_name("Relay").unwrap(), 1);
        let placement = ClassPlacement { home, nparts: 2 };
        let copies: Vec<autodist_ir::Program> = (0..2)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let threaded = run_distributed(
            &copies,
            &ClusterConfig {
                schedule: Schedule::Threaded,
                ..ClusterConfig::paper_testbed()
            },
        );
        let inline = run_distributed(
            &copies,
            &ClusterConfig {
                schedule: Schedule::Inline,
                ..ClusterConfig::paper_testbed()
            },
        );
        assert!(inline.is_ok(), "{:?}", inline.error);
        assert_eq!(
            inline.final_statics.get("Main::result"),
            Some(&Value::Int(3))
        );
        assert_eq!(inline.final_statics, threaded.final_statics);
        assert_eq!(inline.total_messages(), threaded.total_messages());
        assert_eq!(inline.total_bytes(), threaded.total_bytes());
        assert!(
            (inline.virtual_time_us - threaded.virtual_time_us).abs() < 1e-9,
            "virtual clocks must agree: inline {} vs threaded {}",
            inline.virtual_time_us,
            threaded.virtual_time_us
        );
        assert!(
            inline.per_node[0].requests_served > 0,
            "the launch node served the callback while parked"
        );
        for (a, b) in inline.per_node.iter().zip(threaded.per_node.iter()) {
            assert_eq!(a.requests_served, b.requests_served);
            assert_eq!(a.instructions, b.instructions);
        }
    }

    #[test]
    fn communication_heavy_distribution_shows_overhead() {
        // Fine-grained remote field access with almost no compute: distribution should
        // be slower than the baseline (the sub-100% cases of Figure 11).
        let src = r#"
            class Cell {
                int v;
                int get() { return this.v; }
                void set(int x) { this.v = x; }
            }
            class Main {
                static int result;
                static void main() {
                    Cell c = new Cell();
                    int i = 0;
                    while (i < 200) {
                        c.set(c.get() + 1);
                        i = i + 1;
                    }
                    result = c.get();
                }
            }
        "#;
        let p = compile_source(src).unwrap();
        let baseline = run_centralized(&p, 1.0);
        let mut home = Map::new();
        home.insert(p.class_by_name("Main").unwrap(), 0);
        home.insert(p.class_by_name("Cell").unwrap(), 1);
        let placement = ClassPlacement { home, nparts: 2 };
        let copies: Vec<autodist_ir::Program> = (0..2)
            .map(|n| rewrite_for_node(&p, &placement, n).program)
            .collect();
        let dist = run_distributed(&copies, &ClusterConfig::paper_testbed());
        assert!(dist.is_ok(), "{:?}", dist.error);
        assert_eq!(
            dist.final_statics.get("Main::result"),
            baseline.final_statics.get("Main::result")
        );
        assert!(
            dist.speedup_over(&baseline) < 1.0,
            "chatty fine-grained access should pay communication overhead"
        );
        assert!(dist.total_messages() >= 400, "two messages per round trip");
    }
}
