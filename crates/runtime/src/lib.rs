//! # autodist-runtime
//!
//! The distributed execution runtime (Section 5 of the paper), built as an in-process
//! simulated cluster:
//!
//! * [`value`] — runtime values, the heap, objects and arrays.
//! * [`wire`] — the streamed message format exchanged between nodes (`NEW` and
//!   `DEPENDENCE` messages, marshalled values).
//! * [`net`] — the simulated MPI transport: one endpoint per node over crossbeam
//!   channels, with a configurable latency / bandwidth / CPU-speed cost model standing
//!   in for the paper's two-machine 100 Mb Ethernet testbed.
//! * [`interp`] — the bytecode interpreter (the JVM's role in the paper's experiments),
//!   including the interception of `rt/DependentObject` operations that turns rewritten
//!   call sites into message exchanges, and the profiler hook surface.
//! * [`services`] — the three per-node services of Figure 10: the MPI service, the
//!   Execution Starter and the Message Exchange service.
//! * [`sched`] — the event-driven scheduler core: the cooperative inline scheduler
//!   and the work-stealing pool pop ready ranks off the transport's shared ready
//!   queue (O(1) delivery per packet); thread-per-node execution survives as a
//!   cross-check.
//! * [`cluster`] — the driver configuration and reporting surface: runs a distributed
//!   (or centralized) execution and reports virtual time, wall time and traffic
//!   statistics.
//! * [`serve`] — serving mode: the cluster as a server admitting N concurrent root
//!   computations, each over its own request-scoped world (clocks, channels,
//!   correlation ids) while all requests share one ready queue and worker pool.
//! * [`adapt`] — adaptive placement: an epoch controller that feeds live serving
//!   profiles back into a caller-supplied [`adapt::Replanner`] and swaps better
//!   placements in for subsequently admitted requests.

pub mod adapt;
pub mod cluster;
pub mod interp;
pub mod net;
pub mod sched;
pub mod serve;
pub mod services;
pub mod value;
pub mod wire;

pub use adapt::{AdaptOptions, EpochProfile, Replanner};
pub use cluster::{
    run_centralized, run_distributed, run_distributed_profiled, ClusterConfig, ExecutionReport,
    NodeProfiler, NodeStats, Schedule,
};
pub use interp::{
    Continuation, ExecCounters, ExecError, Interp, ProfilerSink, TaskOutcome, TransportStall,
};
pub use net::{
    FaultPlan, FaultState, FaultSummary, KillNode, LinkProbs, LossReason, LostPacket, MpiEndpoint,
    MpiWorld, NetworkConfig, ReadyQueue, RecvStall,
};
pub use serve::{run_serving, RequestReport, ServeOptions, ServerApp, ServingReport};
pub use value::{HeapObject, ObjRef, Value};
pub use wire::{AccessKind, Request, Response, WireValue};
