//! The per-node runtime services of Figure 10.
//!
//! Each node of the distributed execution environment runs three supporting services:
//!
//! * the **MPI service** sets up the communication world (groups, communicators and the
//!   communication context — here: the [`MpiWorld`] and its per-rank endpoints);
//! * the **Execution Starter** invokes the `main()` method of the application class on
//!   the one node where the user launches the program;
//! * the **Message Exchange** service processes all the send/receive communication
//!   generated from the object dependence information (`NEW` and `DEPENDENCE`
//!   messages), using the `DependentObject` and `Message` structures.
//!
//! These types are thin, named façades over [`MpiWorld`] / [`Interp`] so that the
//! runtime's structure matches the paper's; the heavy lifting lives in
//! [`crate::interp`] and [`crate::net`].

use crate::interp::{ExecError, Interp};
use crate::net::{FaultPlan, FaultState, MpiWorld, NetworkConfig, PacketKind};
use crate::value::Value;
use crate::wire::Request;
use std::sync::Arc;

/// The MPI service: owns the simulated communication world.
pub struct MpiService {
    world: MpiWorld,
}

impl MpiService {
    /// Initialises the MPI working environment for `nodes` ranks.
    pub fn init(nodes: usize, config: NetworkConfig) -> Self {
        MpiService {
            world: MpiWorld::new(nodes, config),
        }
    }

    /// Initialises the MPI working environment with an optional fault plan wrapping
    /// every endpoint's correlated sends.
    pub fn init_with_faults(nodes: usize, config: NetworkConfig, plan: Option<FaultPlan>) -> Self {
        let mut world = MpiWorld::new(nodes, config);
        if let Some(plan) = plan {
            world = world.with_fault_plan(plan);
        }
        MpiService { world }
    }

    /// The world's shared fault state, when a plan is attached.
    pub fn fault_state(&self) -> Option<Arc<FaultState>> {
        self.world.fault_state()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.world.size()
    }

    /// Hands the endpoint for `rank` to that node's thread.
    pub fn endpoint(&mut self, rank: usize) -> crate::net::MpiEndpoint {
        self.world.take_endpoint(rank)
    }

    /// The transport's shared ready queue: the ranks with undelivered packets, in
    /// send order. The event-driven schedulers pop it for O(1) delivery per packet.
    pub fn ready_queue(&self) -> std::sync::Arc<crate::net::ReadyQueue> {
        self.world.ready_queue()
    }
}

/// The Execution Starter: invokes the application entry point on the launch node.
pub struct ExecutionStarter;

impl ExecutionStarter {
    /// Starts the application by invoking `main()` through the given interpreter.
    pub fn start(interp: &mut Interp<'_>) -> Result<Value, ExecError> {
        interp.run_entry()
    }
}

/// The Message Exchange service: serves incoming `NEW` / `DEPENDENCE` requests until a
/// shutdown message arrives.
pub struct MessageExchange;

impl MessageExchange {
    /// Runs the serve loop on this node.
    pub fn serve(interp: &mut Interp<'_>) {
        interp.serve_loop();
    }

    /// Broadcasts an orderly shutdown to every other rank (called by the launch node
    /// once `main` returns).
    pub fn broadcast_shutdown(interp: &mut Interp<'_>) {
        let clock = interp.clock_us;
        if let Some(dist) = interp.dist.as_mut() {
            let me = dist.endpoint.rank;
            let size = dist.endpoint.size;
            for rank in 0..size {
                if rank != me {
                    dist.endpoint.send(
                        rank,
                        PacketKind::Request,
                        Request::Shutdown.encode(),
                        clock,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autodist_ir::frontend::compile_source;

    #[test]
    fn mpi_service_hands_out_each_rank_once() {
        let mut svc = MpiService::init(3, NetworkConfig::uniform(3));
        assert_eq!(svc.size(), 3);
        let e0 = svc.endpoint(0);
        let e2 = svc.endpoint(2);
        assert_eq!(e0.rank, 0);
        assert_eq!(e2.rank, 2);
        assert_eq!(e0.size, 3);
    }

    #[test]
    fn execution_starter_runs_main() {
        let p = compile_source(
            r#"class C { static void main() { int i = 0; while (i < 5) { i = i + 1; } } }"#,
        )
        .unwrap();
        let mut interp = Interp::new(&p);
        let v = ExecutionStarter::start(&mut interp).unwrap();
        assert_eq!(v, Value::Null);
        assert!(interp.counters.instructions > 10);
    }

    #[test]
    fn broadcast_shutdown_without_dist_is_a_noop() {
        let p = compile_source(r#"class C { static void main() { } }"#).unwrap();
        let mut interp = Interp::new(&p);
        MessageExchange::broadcast_shutdown(&mut interp);
        assert_eq!(interp.counters.remote_requests, 0);
    }
}
