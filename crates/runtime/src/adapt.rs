//! Adaptive placement: the online profile → repartition loop for serving mode.
//!
//! The pipeline's placement is computed once, offline, from static estimates; when
//! live traffic concentrates on objects the static plan happened to pin to the wrong
//! rank, every request pays cross-node round-trips that a better-informed placement
//! would not. This module closes the loop **between requests**: an epoch controller
//! ([`AdaptState`], owned by `run_serving`) accumulates per-request observations —
//! cross-node message and byte counts from each completed
//! [`ExecutionReport`](crate::cluster::ExecutionReport), plus whatever per-class
//! profile the planner's sinks gather — and at every epoch boundary asks a
//! [`Replanner`] for a better placement. When the planner returns one, the
//! controller swaps it in for **subsequently admitted** requests.
//!
//! Two triggers close an epoch:
//!
//! * **Request count** — every [`AdaptOptions::epoch_requests`] completed requests
//!   of an app.
//! * **Drift** — early, when the observed cross-node byte volume exceeds
//!   [`AdaptOptions::drift_factor`] × the plan's own prediction
//!   ([`Replanner::predicted_bytes_per_request`]): live traffic has diverged from
//!   the model the current placement was computed from, so waiting out the epoch
//!   just burns more round-trips.
//!
//! **In-flight requests are never migrated.** A request's world (channels, virtual
//! clocks, interpreters over the placed programs) is instantiated at admission and
//! sealed; moving a live object graph between ranks mid-computation would require
//! distributed state transfer the paper's runtime does not have, and would destroy
//! the per-request determinism the serving mode is pinned to. Instead a swap only
//! changes what the *next* admission instantiates — every request's report stays
//! byte-identical to a solo run under the placement it started with.
//!
//! The runtime deliberately does not know how to repartition (that is the analysis/
//! partition/codegen pipeline, which sits *above* this crate): the [`Replanner`]
//! trait inverts the dependency, and `autodist`'s `PlanReplanner` implements it by
//! re-weighting the plan's ODG with the live profile and re-running the multilevel
//! partitioner. Placements produced mid-run are kept alive in a [`SnapshotArena`]
//! (append-only, so admitted interpreters can borrow placed programs for the rest
//! of the serving run).

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::cluster::ExecutionReport;
use crate::interp::ProfilerSink;
use crate::serve::ServerApp;

/// What the epoch controller observed about one app since its last repartition,
/// handed to [`Replanner::replan`] when an epoch closes.
#[derive(Clone, Debug)]
pub struct EpochProfile {
    /// Index of the app (into `run_serving`'s `apps` slice) the epoch belongs to.
    pub app: usize,
    /// Completed requests of this app in the epoch.
    pub requests: usize,
    /// Cross-node messages those requests exchanged (virtual-time deterministic).
    pub messages: u64,
    /// Cross-node bytes those requests exchanged.
    pub bytes: u64,
}

impl EpochProfile {
    /// Observed cross-node bytes per completed request.
    pub fn bytes_per_request(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.bytes as f64 / self.requests as f64
    }
}

/// The half of the adaptation loop the runtime cannot provide itself: turning a
/// live profile into a better placement. Implemented above the runtime (by
/// `autodist::PlanReplanner`, which owns the ODG and the partitioner) and by tests.
pub trait Replanner: Send + Sync {
    /// Computes a new prepared placement for `profile.app` from the epoch's live
    /// profile, or `None` when the current placement should be kept (balanced
    /// profile, no strictly better cut). A returned app must span the same number
    /// of virtual nodes as the one it replaces.
    fn replan(&self, profile: &EpochProfile) -> Option<ServerApp>;

    /// A profiler sink to attach to node `rank` of a newly admitted request of
    /// `app`, plus its sampling interval (0 for instrumentation-only sinks). This
    /// is the planner's side channel for per-class hot-method weights — the epoch
    /// controller itself only sees per-request traffic totals. Returning `None`
    /// (the default) admits the request unprofiled.
    fn profiler(&self, app: usize, rank: usize) -> Option<(Box<dyn ProfilerSink>, u64)> {
        let _ = (app, rank);
        None
    }

    /// The plan's own prediction of cross-node bytes one request of `app` moves
    /// (the drift trigger's baseline). `None` (the default) disables the drift
    /// trigger for the app.
    fn predicted_bytes_per_request(&self, app: usize) -> Option<f64> {
        let _ = app;
        None
    }
}

/// Configuration of the adaptive-placement epoch controller
/// (`ServeOptions::adapt`). Absent (`None`), serving is byte-identical to the
/// pre-adaptation server: no sinks are attached, no state is accumulated.
#[derive(Clone)]
pub struct AdaptOptions {
    /// Completed requests per app between repartition attempts. Clamped to >= 1.
    pub epoch_requests: usize,
    /// Early-repartition trigger: close the epoch as soon as observed cross-node
    /// bytes exceed `drift_factor` × predicted bytes ×  completed requests
    /// (requires [`Replanner::predicted_bytes_per_request`]). `0.0` disables the
    /// trigger and epochs close on request count alone.
    pub drift_factor: f64,
    /// Minimum completed requests before the drift trigger may fire, so one
    /// unusually chatty request cannot force a repartition on its own.
    pub min_drift_requests: usize,
    /// Admissions per epoch that get the planner's profiler sinks attached
    /// (clamped to >= 1). Per-class weights only feed *relative* hot-method
    /// ratios into the repartition, so profiling a prefix of each epoch's
    /// admissions is as informative as profiling all of them — and the remaining
    /// requests run uninstrumented at full interpreter speed, keeping the
    /// adaptive arm's throughput at parity with the static server.
    pub profile_requests: usize,
    /// The planner consulted at every epoch boundary.
    pub planner: Arc<dyn Replanner>,
}

impl AdaptOptions {
    /// Options with the default epoch length (16 requests) and the drift trigger
    /// disabled.
    pub fn new(planner: Arc<dyn Replanner>) -> Self {
        AdaptOptions {
            epoch_requests: 16,
            drift_factor: 0.0,
            min_drift_requests: 4,
            profile_requests: 4,
            planner,
        }
    }

    /// Sets the epoch length in completed requests.
    pub fn with_epoch(mut self, requests: usize) -> Self {
        self.epoch_requests = requests.max(1);
        self
    }

    /// Sets how many admissions per epoch are profiled.
    pub fn with_profile(mut self, requests: usize) -> Self {
        self.profile_requests = requests.max(1);
        self
    }

    /// Enables the drift trigger: repartition early once observed comm volume
    /// exceeds `factor` × the plan's prediction, after at least `min_requests`
    /// completions.
    pub fn with_drift(mut self, factor: f64, min_requests: usize) -> Self {
        self.drift_factor = factor.max(0.0);
        self.min_drift_requests = min_requests.max(1);
        self
    }
}

impl fmt::Debug for AdaptOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdaptOptions")
            .field("epoch_requests", &self.epoch_requests)
            .field("drift_factor", &self.drift_factor)
            .field("min_drift_requests", &self.min_drift_requests)
            .field("profile_requests", &self.profile_requests)
            .field("planner", &"<dyn Replanner>")
            .finish()
    }
}

/// Append-only arena keeping mid-run placements alive for the rest of the serving
/// run. Admitted interpreters borrow the placed [`ServerApp`]s (programs and
/// layouts) for as long as their request lives, so a swapped-out placement cannot
/// be freed while any request started under it is still in flight — the arena
/// simply never frees until the run ends.
#[derive(Default)]
pub(crate) struct SnapshotArena {
    // The per-slot Box is load-bearing, not indirection for its own sake: `alloc`
    // hands out references that must survive the Vec reallocating.
    #[allow(clippy::vec_box)]
    slots: Mutex<Vec<Box<ServerApp>>>,
}

impl SnapshotArena {
    /// Stores `app` and returns a reference that lives as long as the arena.
    ///
    /// SAFETY rationale for the `unsafe` below: the `ServerApp` is boxed, so its
    /// address is stable across `Vec` reallocation; slots are append-only and
    /// never dropped or replaced before the arena itself drops; and the returned
    /// borrow is tied to `&self`, so it cannot outlive the arena.
    pub(crate) fn alloc(&self, app: ServerApp) -> &ServerApp {
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots.push(Box::new(app));
        let stable: *const ServerApp = &**slots.last().expect("just pushed");
        unsafe { &*stable }
    }
}

/// Per-app accumulator and the currently installed placement (`None` = the seed
/// placement the caller passed to `run_serving`).
struct AppEpoch<'s> {
    current: Option<&'s ServerApp>,
    admitted: usize,
    completed: usize,
    messages: u64,
    bytes: u64,
}

/// The epoch controller of one serving run: owned by `ServeShared` when
/// `ServeOptions::adapt` is set, untouched (and unallocated) otherwise.
pub(crate) struct AdaptState<'s> {
    opts: &'s AdaptOptions,
    arena: &'s SnapshotArena,
    apps: Vec<Mutex<AppEpoch<'s>>>,
    swaps: AtomicUsize,
}

impl<'s> AdaptState<'s> {
    pub(crate) fn new(opts: &'s AdaptOptions, arena: &'s SnapshotArena, apps: usize) -> Self {
        AdaptState {
            opts,
            arena,
            apps: (0..apps)
                .map(|_| {
                    Mutex::new(AppEpoch {
                        current: None,
                        admitted: 0,
                        completed: 0,
                        messages: 0,
                        bytes: 0,
                    })
                })
                .collect(),
            swaps: AtomicUsize::new(0),
        }
    }

    /// The placement requests of `app` are currently admitted under (`None` = the
    /// seed placement).
    pub(crate) fn current(&self, app: usize) -> Option<&'s ServerApp> {
        self.apps[app]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .current
    }

    /// Whether a request of `app` being admitted now should carry profiler sinks:
    /// only the first [`AdaptOptions::profile_requests`] admissions of each epoch
    /// do, so the bulk of traffic runs uninstrumented. Called once per admission
    /// (it advances the epoch's admission counter).
    pub(crate) fn admit_profiled(&self, app: usize) -> bool {
        let mut epoch = self.apps[app].lock().unwrap_or_else(|e| e.into_inner());
        epoch.admitted += 1;
        epoch.admitted <= self.opts.profile_requests.max(1)
    }

    /// The planner's profiler sink for node `rank` of a new request of `app`.
    pub(crate) fn profiler_for(
        &self,
        app: usize,
        rank: usize,
    ) -> Option<(Box<dyn ProfilerSink>, u64)> {
        self.opts.planner.profiler(app, rank)
    }

    /// Placements installed so far (for the run's aggregate report).
    pub(crate) fn swaps(&self) -> usize {
        self.swaps.load(Ordering::SeqCst)
    }

    /// Feeds one completed request's report into the epoch accumulator and, at an
    /// epoch boundary (count or drift), consults the planner. A successful replan
    /// installs the new placement for subsequently admitted requests of `app`.
    ///
    /// The per-app lock is held across the replan on purpose: concurrent
    /// completions of the *same* app queue behind the repartition (their epochs
    /// must not interleave with it), while other apps and all admissions of other
    /// apps proceed untouched.
    pub(crate) fn observe(&self, app: usize, expected_nodes: usize, report: &ExecutionReport) {
        let mut epoch = self.apps[app].lock().unwrap_or_else(|e| e.into_inner());
        epoch.completed += 1;
        epoch.messages += report.total_messages();
        epoch.bytes += report.total_bytes();
        let full = epoch.completed >= self.opts.epoch_requests.max(1);
        let drifted = self.opts.drift_factor > 0.0
            && epoch.completed >= self.opts.min_drift_requests
            && match self.opts.planner.predicted_bytes_per_request(app) {
                Some(predicted) if predicted > 0.0 => {
                    epoch.bytes as f64 > self.opts.drift_factor * predicted * epoch.completed as f64
                }
                _ => false,
            };
        if !full && !drifted {
            return;
        }
        let profile = EpochProfile {
            app,
            requests: epoch.completed,
            messages: epoch.messages,
            bytes: epoch.bytes,
        };
        epoch.admitted = 0;
        epoch.completed = 0;
        epoch.messages = 0;
        epoch.bytes = 0;
        if let Some(next) = self.opts.planner.replan(&profile) {
            assert_eq!(
                next.nodes(),
                expected_nodes,
                "a replanned placement must span the same virtual nodes"
            );
            epoch.current = Some(self.arena.alloc(next));
            self.swaps.fetch_add(1, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NeverReplan;
    impl Replanner for NeverReplan {
        fn replan(&self, _profile: &EpochProfile) -> Option<ServerApp> {
            None
        }
    }

    #[test]
    fn options_builders_clamp_and_configure() {
        let opts = AdaptOptions::new(Arc::new(NeverReplan));
        assert_eq!(opts.epoch_requests, 16);
        assert_eq!(opts.drift_factor, 0.0);
        let opts = opts.with_epoch(0).with_drift(-1.0, 0);
        assert_eq!(opts.epoch_requests, 1, "epoch length clamps to 1");
        assert_eq!(
            opts.drift_factor, 0.0,
            "negative drift factors clamp to off"
        );
        assert_eq!(opts.min_drift_requests, 1);
        let dbg = format!("{:?}", opts.with_drift(1.5, 4));
        assert!(dbg.contains("drift_factor: 1.5"), "{dbg}");
    }

    #[test]
    fn epoch_profile_rates() {
        let p = EpochProfile {
            app: 0,
            requests: 4,
            messages: 8,
            bytes: 1024,
        };
        assert_eq!(p.bytes_per_request(), 256.0);
        let empty = EpochProfile {
            app: 0,
            requests: 0,
            messages: 0,
            bytes: 0,
        };
        assert_eq!(empty.bytes_per_request(), 0.0);
    }
}
