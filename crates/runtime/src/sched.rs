//! The event-driven scheduler core.
//!
//! Every distributed run is driven by one of three schedulers over the same
//! continuation machinery (see [`crate::interp`]):
//!
//! * [`run_inline`] — the cooperative single-threaded scheduler. All virtual nodes
//!   are multiplexed on the calling thread and delivery is **event-driven**: the
//!   transport's shared [`ReadyQueue`] records each packet's destination at send
//!   time, so the scheduler pops a ready rank and drains exactly that node's mailbox
//!   — O(1) per packet, independent of the fabric width (the previous design swept
//!   every node's mailbox per batch, O(nodes) `try_recv` probes per hop).
//! * [`run_pool`] — an opt-in work-stealing pool over the same ready queue: `threads`
//!   workers each keep a local run queue of ready ranks, refill it in batches from
//!   the shared queue (the injector) and steal from siblings when idle. Virtual
//!   times, message counts and results are deterministic — per-node clocks depend
//!   only on that node's packet arrival order, which the transport's FIFO channels
//!   and the synchronous request/response protocol fix regardless of worker
//!   interleaving. The paper's communication style admits little real concurrency
//!   for a single root computation; the pool pays off when several root computations
//!   are in flight and is otherwise a cross-check like [`run_threaded`].
//! * [`run_threaded`] — the original thread-per-node execution, kept as an opt-in
//!   cross-check: its virtual clocks, message counts and results must be identical
//!   to the event-driven schedulers'.
//!
//! All three accept optional per-node profiler sinks ([`NodeProfiler`]): with the
//! call stack stored per [`Continuation`], sampling profilers attach to cooperative
//! and pooled distributed runs with exactly the same per-node attribution as
//! thread-per-node execution.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use autodist_ir::program::Program;

use crate::cluster::{stats_of, ClusterConfig, ExecutionReport, NodeProfiler, NodeStats};
use crate::interp::{
    loss_to_error, Continuation, DistState, ExecError, Interp, ServeOutcome, TaskOutcome,
    TransportStall,
};
use crate::net::{PacketKind, ReadyKey, ReadyQueue};
use crate::services::{ExecutionStarter, MessageExchange, MpiService};
use crate::value::Value;
use crate::wire::Response;

/// What to do with a cooperative task's result once its bottom frame returns.
pub(crate) enum TaskDone {
    /// The Execution Starter's `main` on the launch node: its result ends the run.
    Root,
    /// A serving computation: reply to `to` for request `req_id`. `reply_override`
    /// carries the freshly created object reference for `NEW` requests (the
    /// constructor's return value is discarded, as in the synchronous serve path).
    Reply {
        to: usize,
        req_id: u64,
        reply_override: Option<Value>,
    },
}

/// A cooperative computation: the interpreter-level continuation plus its completion
/// action.
pub(crate) struct CoopTask {
    cont: Continuation,
    done: TaskDone,
}

/// One virtual node of the event-driven schedulers: its interpreter plus every
/// continuation currently parked on an outstanding remote request, keyed by the
/// request id the response will echo.
///
/// The parked set is a plain vector, not a hash map: a node rarely holds more than a
/// handful of parked computations (one per live cross-node recursion level, bounded
/// by the call-depth guard), and the park/resume pair sits on the per-message hot
/// path where two SipHash probes cost more than a short scan.
pub(crate) struct CoopNode<'p> {
    pub(crate) interp: Interp<'p>,
    parked: Vec<(u64, CoopTask)>,
}

impl<'p> CoopNode<'p> {
    /// Wraps `interp` with an empty parked set (used by the serving scheduler, which
    /// builds request-scoped nodes itself).
    pub(crate) fn from_interp(interp: Interp<'p>) -> Self {
        CoopNode {
            interp,
            parked: Vec::new(),
        }
    }
}

impl CoopNode<'_> {
    /// Removes and returns the continuation parked on `req_id`. Scans newest-first:
    /// under synchronous request/response the resumed continuation is almost always
    /// the most recently parked one.
    fn unpark(&mut self, req_id: u64) -> Option<CoopTask> {
        let idx = self.parked.iter().rposition(|(id, _)| *id == req_id)?;
        Some(self.parked.swap_remove(idx).1)
    }

    /// Drives `task` until it parks or completes. Completions either finish the run
    /// (the returned root result) or send the response for the request being served.
    /// Every slice ends by flushing coalesced ready keys: the sends it performed are
    /// published before control returns to the scheduler.
    fn run(&mut self, mut task: CoopTask) -> Option<Result<Value, ExecError>> {
        let outcome = self.interp.run_task(&mut task.cont);
        let res = self.settle(task, outcome);
        self.flush_ready();
        res
    }

    /// Publishes any ready keys this node's endpoint accumulated while coalescing.
    fn flush_ready(&mut self) {
        if let Some(d) = self.interp.dist.as_mut() {
            d.endpoint.flush_coalesced();
        }
    }

    fn settle(&mut self, task: CoopTask, outcome: TaskOutcome) -> Option<Result<Value, ExecError>> {
        match outcome {
            TaskOutcome::Parked { req_id } => {
                self.parked.push((req_id, task));
                None
            }
            TaskOutcome::Done(res) => match task.done {
                TaskDone::Root => Some(res),
                TaskDone::Reply {
                    to,
                    req_id,
                    reply_override,
                } => {
                    let result = res.map(|v| reply_override.unwrap_or(v));
                    self.interp.send_reply(to, req_id, result);
                    None
                }
            },
        }
    }

    /// Delivers the oldest packet in this node's mailbox, if any: a request spawns
    /// (or answers) a serving task, a response resumes the parked continuation.
    /// Returns the root result when the root computation completes. The ready queue
    /// holds one entry per packet (or a counted entry per coalesced batch), so each
    /// popped entry delivers its packets without a trailing empty mailbox probe.
    pub(crate) fn deliver_one(&mut self) -> Option<Result<Value, ExecError>> {
        let res = self.deliver_one_inner();
        self.flush_ready();
        res
    }

    /// Delivers up to `count` packets (a coalesced ready-queue entry covers
    /// several), stopping early on a root result or a dry mailbox.
    pub(crate) fn deliver_many(&mut self, count: u32) -> Option<Result<Value, ExecError>> {
        for _ in 0..count {
            if let Some(res) = self.deliver_one() {
                return Some(res);
            }
        }
        None
    }

    fn deliver_one_inner(&mut self) -> Option<Result<Value, ExecError>> {
        let pkt = self.interp.poll_packet()?;
        match pkt.kind {
            PacketKind::Request => {
                match self.interp.accept_request(pkt.from, pkt.req_id, pkt.data) {
                    ServeOutcome::Handled => None,
                    ServeOutcome::Spawned {
                        task,
                        reply_override,
                    } => self.run(CoopTask {
                        cont: task,
                        done: TaskDone::Reply {
                            to: pkt.from,
                            req_id: pkt.req_id,
                            reply_override,
                        },
                    }),
                }
            }
            PacketKind::Response => {
                // The response for a parked continuation: resume it.
                let mut task = self.unpark(pkt.req_id)?;
                let mut data = pkt.data;
                let decoded = Response::decode(&mut data);
                // The frame is fully read: recycle its storage through the pool.
                if let Some(d) = self.interp.dist.as_mut() {
                    d.endpoint.reclaim(data);
                }
                let resp = match decoded {
                    Ok(Response::Value(v)) => Ok(v),
                    Ok(Response::Error(e)) => Err(e),
                    Err(e) => {
                        // A corrupt response frame dooms the computation typed,
                        // like any other transport fault.
                        return self.settle(task, TaskOutcome::Done(Err(ExecError::Wire(e))));
                    }
                };
                let outcome = self.interp.resume_task(&mut task.cont, resp);
                self.settle(task, outcome)
            }
        }
    }
}

/// What the delivery-deadline recovery decided about a quiesced run.
pub(crate) enum Recovery {
    /// The run is doomed: finish with this typed error.
    Fail(ExecError),
    /// Sequence gaps were repaired and buffered packets released (with fresh ready
    /// keys): resume delivering.
    Repaired,
}

/// The **virtual-time delivery deadline**, shared by the event-driven schedulers.
///
/// An empty ready queue before the root completes is the cooperative protocol's
/// quiescence point: under fault-free execution exactly one logical control flow is
/// live at any moment, so quiescence used to be an unconditional scheduler bug.
/// With a fault plan it is the moment every virtual clock has advanced past any
/// packet still owed — the deadline. In order:
///
/// 1. a recorded packet loss → the typed error ([`ExecError::MessageTimeout`] /
///    [`ExecError::NodeDown`]); under the synchronous request/response protocol a
///    single lost packet dooms the computation;
/// 2. a sequence gap on some rank (a reorder whose partner is still owed) → repair
///    it and resume;
/// 3. neither → a typed [`ExecError::Transport`] diagnosis naming which ranks hold
///    undeliverable traffic and which continuations are parked on which requests —
///    a genuine deadlock reports its shape instead of tripping the CI watchdog.
pub(crate) fn recover_or_diagnose(mut nodes: Vec<&mut CoopNode<'_>>) -> Recovery {
    let fault_state = nodes
        .first()
        .and_then(|n| n.interp.dist.as_ref())
        .and_then(|d| d.endpoint.fault_state());
    if let Some(state) = &fault_state {
        if let Some(loss) = state.first_loss() {
            return Recovery::Fail(loss_to_error(loss));
        }
    }
    let mut released = 0;
    for node in nodes.iter_mut() {
        if let Some(d) = node.interp.dist.as_mut() {
            released += d.endpoint.repair_gaps();
            // The repair publishes the released packets' ready keys through the
            // coalescing accumulator, and quiescence means no delivery slice is
            // coming to flush it — flush here or the repair is invisible.
            d.endpoint.flush_coalesced();
        }
    }
    if released > 0 {
        return Recovery::Repaired;
    }
    let mut stall = TransportStall::default();
    for node in nodes.iter() {
        let Some(d) = node.interp.dist.as_ref() else {
            continue;
        };
        let rank = d.endpoint.rank;
        if d.endpoint.has_sequence_gap() {
            stall.gapped.push(rank);
        }
        for (req_id, _) in &node.parked {
            stall.parked.push((rank, *req_id));
        }
    }
    Recovery::Fail(ExecError::Transport(stall))
}

/// Builds the per-rank cooperative nodes, attaching any per-node profiler sinks.
fn build_nodes<'p>(
    programs: &'p [Program],
    mpi: &mut MpiService,
    mut profilers: Vec<Option<NodeProfiler>>,
    no_coalesce: bool,
    no_buffer_pool: bool,
) -> Vec<CoopNode<'p>> {
    programs
        .iter()
        .enumerate()
        .map(|(rank, program)| {
            let mut dist = DistState::new(mpi.endpoint(rank)).with_coop();
            if no_coalesce {
                dist.endpoint.set_coalescing(false);
            }
            if no_buffer_pool {
                dist.endpoint.set_buffer_pool(false);
            }
            let mut interp = Interp::new(program).with_dist(dist);
            if let Some(p) = profilers.get_mut(rank).and_then(Option::take) {
                interp = interp.with_profiler(p.sink, p.sample_interval);
            }
            CoopNode {
                interp,
                parked: Vec::new(),
            }
        })
        .collect()
}

/// The Execution Starter: launches `main` as the root continuation on the launch
/// node. Returns the root result if it completed without ever parking.
pub(crate) fn seed_root(node: &mut CoopNode<'_>) -> Option<Result<Value, ExecError>> {
    match node.interp.program.entry {
        None => Some(Err(ExecError::NoEntry)),
        Some(entry) => match node.interp.task_for(entry, Vec::new()) {
            None => Some(Ok(Value::Null)),
            Some(cont) => node.run(CoopTask {
                cont,
                done: TaskDone::Root,
            }),
        },
    }
}

/// Assembles the report from per-node stats. The distributed execution ends when the
/// launch node finishes `main`; its clock has already absorbed every synchronous
/// round trip (the communication style is request/response), so node 0's final clock
/// is the execution time the paper measures. This is the single statement of that
/// rule, shared by every scheduler.
pub(crate) fn assemble_report(
    per_node: Vec<NodeStats>,
    final_statics: BTreeMap<String, Value>,
    error: Option<ExecError>,
    wall: Duration,
) -> ExecutionReport {
    let virtual_time_us = per_node.first().map(|s| s.clock_us).unwrap_or(0.0);
    ExecutionReport {
        virtual_time_us,
        wall_time_ms: wall.as_secs_f64() * 1e3,
        per_node,
        final_statics,
        error,
        faults: None,
    }
}

/// Shared epilogue of the event-driven schedulers: snapshot the launch node, deliver
/// the shutdown broadcast (bookkeeping, not part of the measured execution — it only
/// advances each node's clock to the shutdown's arrival, exactly like the threaded
/// serve loop does before exiting) and assemble the report.
fn finish_coop(
    nodes: &mut [CoopNode<'_>],
    root: Result<Value, ExecError>,
    start: Instant,
) -> ExecutionReport {
    let error = root.err();
    let stats0 = stats_of(&nodes[0].interp, 0);
    let final_statics = nodes[0].interp.statics_snapshot();
    MessageExchange::broadcast_shutdown(&mut nodes[0].interp);
    for node in nodes.iter_mut().skip(1) {
        while let Some(pkt) = node.interp.poll_packet() {
            if pkt.kind == PacketKind::Request {
                let _ = node.interp.accept_request(pkt.from, pkt.req_id, pkt.data);
            }
        }
    }
    let wall = start.elapsed();
    let mut per_node = vec![stats0];
    for (rank, node) in nodes.iter().enumerate().skip(1) {
        per_node.push(stats_of(&node.interp, rank));
    }
    let faults = nodes[0]
        .interp
        .dist
        .as_ref()
        .and_then(|d| d.endpoint.fault_state())
        .map(|s| s.summary());
    let mut report = assemble_report(per_node, final_statics, error, wall);
    report.faults = faults;
    report
}

/// Cooperative single-threaded distributed execution (see
/// [`crate::cluster::Schedule::Inline`]): the continuation-based scheduler with an
/// explicit run queue. All virtual nodes run on the calling thread; the
/// explicit-stack machine never recurses, so no oversized stack is needed and a node
/// can serve re-entrant callbacks while its own computation is parked.
pub(crate) fn run_inline(
    programs: &[Program],
    config: &ClusterConfig,
    profilers: Vec<Option<NodeProfiler>>,
) -> ExecutionReport {
    let start = Instant::now();
    let mut mpi = MpiService::init_with_faults(
        programs.len(),
        config.network.clone(),
        config.faults.clone(),
    );
    let ready = mpi.ready_queue();
    let mut nodes = build_nodes(
        programs,
        &mut mpi,
        profilers,
        config.no_coalesce,
        config.no_buffer_pool,
    );

    let mut root_result = seed_root(&mut nodes[0]);

    // The scheduler proper: pop the next ready key off the transport's queue and
    // deliver that node's oldest packet — resuming a parked continuation (response)
    // or spawning a serving task (request) — until the root computation completes.
    // Single-root runs have exactly one root (0), so the key's root half is ignored.
    // An empty queue before the root completes is the virtual-time delivery
    // deadline: the recovery either repairs a sequence gap and resumes, or ends the
    // run with a typed error (lost packet, dead node, or a stall diagnosis).
    while root_result.is_none() {
        match ready.pop() {
            Some(((_root, rank), count)) => root_result = nodes[rank as usize].deliver_many(count),
            None => match recover_or_diagnose(nodes.iter_mut().collect()) {
                Recovery::Repaired => {}
                Recovery::Fail(e) => root_result = Some(Err(e)),
            },
        }
    }

    finish_coop(&mut nodes, root_result.expect("root completed"), start)
}

/// The shared state of one work-stealing pool run.
struct PoolShared<'s, 'p> {
    /// Every virtual node, lockable by any worker (per-node processing serializes on
    /// the node's mutex; the transport channel keeps its packet order FIFO).
    nodes: &'s [Mutex<CoopNode<'p>>],
    /// The global injector: the transport's ready queue.
    ready: &'s ReadyQueue,
    /// Per-worker local run queues of counted ready entries (stolen from the back).
    locals: Vec<Mutex<VecDeque<(ReadyKey, u32)>>>,
    /// The root computation's result, set exactly once.
    root: Mutex<Option<Result<Value, ExecError>>>,
    /// Set once `root` is; checked by every worker iteration.
    done: AtomicBool,
    /// Workers currently claiming or processing work. Incremented *before* looking
    /// for work so a claimed-but-invisible rank is always covered by a non-zero
    /// count.
    active: AtomicUsize,
    /// Total ranks processed; incremented (while still active) after every claimed
    /// delivery. The stall detector requires this to hold still across several
    /// consecutive idle checks, which closes the non-atomic-snapshot race between
    /// reading `active` and scanning the queues.
    deliveries: AtomicUsize,
}

impl PoolShared<'_, '_> {
    /// Records the root result (first writer wins) and wakes every idle worker.
    fn finish(&self, res: Result<Value, ExecError>) {
        let mut root = self.root.lock().unwrap_or_else(|e| e.into_inner());
        if root.is_none() {
            *root = Some(res);
        }
        drop(root);
        self.done.store(true, Ordering::SeqCst);
        self.ready.notify_all();
    }

    /// `true` when neither the injector nor any worker's local queue holds work.
    fn queues_idle(&self) -> bool {
        self.ready.is_empty()
            && self
                .locals
                .iter()
                .all(|l| l.lock().unwrap_or_else(|e| e.into_inner()).is_empty())
    }
}

/// One pool worker: local queue → injector batch → steal from a sibling; park on the
/// ready queue when everything is empty.
fn pool_worker(shared: &PoolShared<'_, '_>, id: usize) {
    /// Ranks moved from the injector into the local queue per refill.
    const BATCH: usize = 4;
    /// Consecutive quiet idle checks before a stall is declared (see below).
    const STALL_STRIKES: u32 = 3;
    let idle_wait = Duration::from_millis(2);
    let mut strikes = 0u32;
    let mut last_epoch = None;
    while !shared.done.load(Ordering::SeqCst) {
        shared.active.fetch_add(1, Ordering::SeqCst);
        let mut key = shared.locals[id]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front();
        if key.is_none() {
            let batch = shared.ready.pop_batch(BATCH);
            let mut it = batch.into_iter();
            key = it.next();
            shared.locals[id]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend(it);
        }
        if key.is_none() {
            for victim in 0..shared.locals.len() {
                if victim == id {
                    continue;
                }
                key = shared.locals[victim]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop_back();
                if key.is_some() {
                    break;
                }
            }
        }
        match key {
            Some(((_root, r), count)) => {
                let completed = shared.nodes[r as usize]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .deliver_many(count);
                // Finish and bump the delivery epoch before going inactive so the
                // stall detector below can never race a completed root or mistake
                // this delivery for quiescence.
                if let Some(res) = completed {
                    shared.finish(res);
                }
                shared.deliveries.fetch_add(1, Ordering::SeqCst);
                shared.active.fetch_sub(1, Ordering::SeqCst);
                strikes = 0;
            }
            None => {
                shared.active.fetch_sub(1, Ordering::SeqCst);
                if shared.ready.wait_for_ready(idle_wait) {
                    strikes = 0;
                    continue;
                }
                // Stall detection. A single (active == 0 && queues idle) snapshot is
                // not atomic: a sibling can move a rank from a queue into its claim
                // between the two reads. But every claim raises `active` *before*
                // removing the rank, and every processed claim bumps `deliveries`
                // before lowering `active` — so across several consecutive quiet
                // checks, live work must either show up in a queue, keep `active`
                // non-zero, or advance the delivery epoch. Only a genuine stall
                // (a scheduler bug: one logical control flow always has a
                // deliverable message until the root completes) stays quiet on all
                // three for STALL_STRIKES checks in a row.
                let epoch = shared.deliveries.load(Ordering::SeqCst);
                let quiet = !shared.done.load(Ordering::SeqCst)
                    && shared.active.load(Ordering::SeqCst) == 0
                    && shared.queues_idle()
                    && last_epoch == Some(epoch);
                last_epoch = Some(epoch);
                strikes = if quiet { strikes + 1 } else { 0 };
                if strikes >= STALL_STRIKES {
                    // The pool's delivery deadline: every worker idle and every
                    // queue empty across STALL_STRIKES checks. `active == 0` held,
                    // so locking the full node set here cannot deadlock a working
                    // sibling — at worst a freshly woken one briefly waits.
                    let mut guards: Vec<_> = shared
                        .nodes
                        .iter()
                        .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()))
                        .collect();
                    match recover_or_diagnose(guards.iter_mut().map(|g| &mut **g).collect()) {
                        Recovery::Repaired => strikes = 0,
                        Recovery::Fail(e) => shared.finish(Err(e)),
                    }
                }
            }
        }
    }
}

/// Work-stealing pool execution (see [`crate::cluster::Schedule::Pool`]): `threads`
/// workers over the shared ready queue and per-worker run queues of parked
/// continuations' home ranks.
pub(crate) fn run_pool(
    programs: &[Program],
    config: &ClusterConfig,
    profilers: Vec<Option<NodeProfiler>>,
    threads: usize,
) -> ExecutionReport {
    let threads = threads.max(1);
    let start = Instant::now();
    let mut mpi = MpiService::init_with_faults(
        programs.len(),
        config.network.clone(),
        config.faults.clone(),
    );
    let ready = mpi.ready_queue();
    let mut plain_nodes = build_nodes(
        programs,
        &mut mpi,
        profilers,
        config.no_coalesce,
        config.no_buffer_pool,
    );

    // Seed the root on the calling thread before any worker runs.
    let root_seed = seed_root(&mut plain_nodes[0]);
    let seeded_done = root_seed.is_some();
    let nodes: Vec<Mutex<CoopNode<'_>>> = plain_nodes.into_iter().map(Mutex::new).collect();
    let shared = PoolShared {
        nodes: &nodes,
        ready: &ready,
        locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        root: Mutex::new(root_seed),
        done: AtomicBool::new(seeded_done),
        active: AtomicUsize::new(0),
        deliveries: AtomicUsize::new(0),
    };
    if !seeded_done {
        std::thread::scope(|scope| {
            for id in 0..threads {
                let shared = &shared;
                std::thread::Builder::new()
                    .name(format!("pool-worker-{id}"))
                    .spawn_scoped(scope, move || pool_worker(shared, id))
                    .expect("spawn pool worker");
            }
        });
    }

    let root = shared
        .root
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .expect("pool run completed");
    let mut nodes: Vec<CoopNode<'_>> = nodes
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .collect();
    finish_coop(&mut nodes, root, start)
}

/// Thread-per-node distributed execution (see [`crate::cluster::Schedule::Threaded`]).
pub(crate) fn run_threaded(
    programs: &[Program],
    config: &ClusterConfig,
    mut profilers: Vec<Option<NodeProfiler>>,
) -> ExecutionReport {
    let nodes = programs.len();
    let start = Instant::now();
    let mut mpi =
        MpiService::init_with_faults(nodes, config.network.clone(), config.faults.clone());
    let fault_state = mpi.fault_state();

    let mut endpoints: Vec<_> = (0..nodes).map(|r| Some(mpi.endpoint(r))).collect();

    let results: Vec<(NodeStats, BTreeMap<String, Value>, Option<ExecError>)> =
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (rank, program) in programs.iter().enumerate() {
                let mut endpoint = endpoints[rank].take().expect("endpoint");
                // Thread-per-node execution blocks on its mailbox; ready-queue
                // tracking would only grow the queue and contend its lock.
                endpoint.untrack_ready();
                let profiler = profilers.get_mut(rank).and_then(Option::take);
                let builder = std::thread::Builder::new()
                    .name(format!("node-{rank}"))
                    .stack_size(32 * 1024 * 1024);
                let handle = builder
                    .spawn_scoped(scope, move || {
                        let mut interp = Interp::new(program).with_dist(DistState::new(endpoint));
                        if let Some(p) = profiler {
                            interp = interp.with_profiler(p.sink, p.sample_interval);
                        }
                        let mut error = None;
                        let stats;
                        if rank == 0 {
                            if let Err(e) = ExecutionStarter::start(&mut interp) {
                                error = Some(e);
                            }
                            // Execution ends when main returns on the launch node; the
                            // shutdown broadcast is bookkeeping and not part of the
                            // measured execution.
                            stats = stats_of(&interp, rank);
                            MessageExchange::broadcast_shutdown(&mut interp);
                        } else {
                            MessageExchange::serve(&mut interp);
                            stats = stats_of(&interp, rank);
                        }
                        (stats, interp.statics_snapshot(), error)
                    })
                    .expect("spawn node thread");
                handles.push(handle);
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("node thread panicked"))
                .collect()
        });

    let wall = start.elapsed();
    let error = results.iter().find_map(|(_, _, e)| e.clone());
    let final_statics = results
        .first()
        .map(|(_, s, _)| s.clone())
        .unwrap_or_default();
    let mut report = assemble_report(
        results.into_iter().map(|(s, _, _)| s).collect(),
        final_statics,
        error,
        wall,
    );
    report.faults = fault_state.map(|s| s.summary());
    report
}
